"""Export serving/sharding benchmark smoke timings as one JSON artifact.

CI runs this after the test lanes and uploads the result
(``BENCH_serving.json``) as a workflow artifact, so every commit appends a
point to the performance trajectory without anyone re-running benchmarks by
hand.  The measurements are the *smoke* versions of
``benchmarks/bench_serving.py`` and ``benchmarks/bench_sharding.py``: small
enough for a CI runner, but shaped like the real benchmarks (throughput,
latency percentiles, flush-reason counts, sharded-vs-serial timings).

Usage::

    PYTHONPATH=src python benchmarks/export_json.py --output BENCH_serving.json
    PYTHONPATH=src python benchmarks/export_json.py --requests 8   # even faster

Numbers are wall-clock measurements on whatever machine runs them — compare
trends across runs of the *same* runner class, not absolute values across
machines.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from datetime import datetime, timezone

import numpy as np

from repro.config import small_test_chip
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.nn import build_lenet5
from repro.serve import (
    AsyncServeHTTPServer,
    InferenceServer,
    LoadGenerator,
    ModelDefinition,
    ModelRegistry,
    ServeHTTPServer,
)
from repro.serve.http import encode_array_b64

#: The benchmark scenario: LeNet on a dual-core 32x32 chip.
_CHIP = dict(rows=32, columns=32, num_cores=2)


def _workload(num_images: int):
    network = build_lenet5()
    weights = generate_random_weights(network, seed=0, scale=0.3)
    config = small_test_chip(**_CHIP)
    images = np.random.default_rng(1).uniform(
        0.0, 1.0, (num_images,) + network.input_shape.as_tuple()
    )
    return network, weights, config, images


def _serve_burst(network, weights, config, images, max_batch: int) -> dict:
    """Serve one all-at-once burst; returns throughput + SLO telemetry."""
    server = InferenceServer(
        network,
        weights,
        config,
        max_batch=max_batch,
        max_wait_s=0.002 if max_batch > 1 else 0.0,
        queue_capacity=max(len(images), max_batch),
    )
    with server:
        start = time.perf_counter()
        outputs = server.serve_batch(images)
        elapsed = time.perf_counter() - start
        telemetry = server.telemetry.snapshot()
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    return {
        "max_batch": max_batch,
        "requests": int(len(images)),
        "throughput_rps": len(images) / elapsed,
        "latency_p50_ms": telemetry["latency_p50_s"] * 1e3,
        "latency_p95_ms": telemetry["latency_p95_s"] * 1e3,
        "latency_p99_ms": telemetry["latency_p99_s"] * 1e3,
        "mean_batch_size": telemetry["mean_batch_size"],
        "flush_reasons": telemetry["flush_reasons"],
        "bitwise_match_vs_run_batch": bool(np.array_equal(outputs, direct)),
    }


def _faulted_burst(network, weights, config, images) -> dict:
    """Serve a burst under an injected crash; returns recovery counters.

    The robustness trajectory: a ``crash:at=2`` rule kills a replica on the
    second dispatch (deterministic at any ``--requests`` size), supervision
    restarts it and re-executes the failed batch, and the burst must still
    come back complete and bitwise-correct.  The exported counters
    (restarts, recovered batches, retry histogram) make a supervision
    regression visible in the artifact diff.
    """
    registry = ModelRegistry(
        [
            ModelDefinition(
                name=network.name,
                network=network,
                weights=dict(weights),
                config=config,
                executor="thread:2",
                max_batch=2,
                max_wait_s=0.002,
                queue_capacity=max(len(images), 2),
                faults=["crash:at=2"],
                max_attempts=3,
                backoff_base_s=0.0,
            )
        ]
    )
    server = InferenceServer(registry=registry)
    with server:
        start = time.perf_counter()
        outputs = server.serve_batch(images)
        elapsed = time.perf_counter() - start
        stats = server.stats()
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    faults = stats["pool"]["faults"]
    return {
        "injected": faults["injection"]["injected"],
        "replica_restarts": faults["replica_restarts"],
        "batches_recovered": faults["batches_recovered"],
        "batches_failed": faults["batches_failed"],
        "retry_histogram": faults["retry_histogram"],
        "requests_failed": stats["telemetry"]["requests_failed"],
        "throughput_rps": len(images) / elapsed,
        "bitwise_match_vs_run_batch": bool(np.array_equal(outputs, direct)),
    }


def _traced_burst(network, weights, config, images) -> dict:
    """Serve a burst with full tracing; returns the per-stage mean breakdown.

    The observability trajectory: mean milliseconds per pipeline stage
    (admit → … → deliver, from the request traces) plus the tracer's own
    bookkeeping, so a regression that shifts time between stages — or starts
    dropping traces — shows up in the artifact diff even when end-to-end
    throughput still looks fine.
    """
    server = InferenceServer(
        network,
        weights,
        config,
        max_batch=8,
        max_wait_s=0.002,
        queue_capacity=max(len(images), 8),
    )
    with server:
        start = time.perf_counter()
        server.serve_batch(images)
        elapsed = time.perf_counter() - start
    # Read after the graceful stop: the deliver span finishes just *after*
    # the response future resolves, so an in-flight snapshot can undercount.
    telemetry = server.telemetry.snapshot()
    tracer = server.tracer.snapshot()
    breakdown = telemetry["stage_breakdown"]
    return {
        "throughput_rps": len(images) / elapsed,
        "traces_finished": tracer["finished"],
        "traces_dropped": tracer["dropped"],
        "stage_mean_ms": {
            name: stats["mean_s"] * 1e3 for name, stats in breakdown.items()
        },
    }


def _ipc_burst(network, weights, config, images) -> dict:
    """Pickle-vs-shm transport on a ``process:2`` pool (bench_serving smoke).

    The zero-copy trajectory: the identical closed-loop run is served over
    both tensor transports, and the artifact records throughput, tail
    latency, the bytes the arena kept off the pickle pipe, and the resulting
    speedup/p99 delta — so a regression that silently re-introduces
    serialization on the process dispatch path shows up in the artifact diff.
    The warm-up burst (replica fork + PCM tile programming) runs before the
    measurement so both modes are compared on steady-state dispatches only.
    """
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    modes: dict = {}
    for mode in ("pickle", "shm"):
        server = InferenceServer(
            network,
            weights,
            config,
            executor="process:2",
            ipc=mode,
            max_batch=8,
            max_wait_s=0.002,
            queue_capacity=max(len(images), 8),
        )
        with server:
            server.serve_batch(images)  # warm: fork replicas, program tiles
            report = LoadGenerator(server).run_closed_loop(images, concurrency=4)
            ipc_stats = server.stats()["pool"]["ipc"]
        modes[mode] = {
            "throughput_rps": report.achieved_rps,
            "latency_p50_ms": report.client_latency["latency_p50_s"] * 1e3,
            "latency_p99_ms": report.client_latency["latency_p99_s"] * 1e3,
            "copy_bytes_avoided": int(ipc_stats.get("copy_bytes_avoided", 0)),
            "pickle_fallbacks": int(ipc_stats.get("pickle_fallbacks", 0)),
            "bitwise_match_vs_run_batch": bool(np.array_equal(report.outputs, direct)),
        }
    modes["throughput_speedup_shm"] = (
        modes["shm"]["throughput_rps"] / modes["pickle"]["throughput_rps"]
    )
    modes["p99_delta_ms"] = (
        modes["pickle"]["latency_p99_ms"] - modes["shm"]["latency_p99_ms"]
    )
    return modes


#: Concurrent keep-alive clients per front-end for the CI-sized scaling sweep
#: (the full 100/500/2000 comparison lives in ``bench_serving.py``).
_CONN_COUNTS = (50, 200, 500)


async def _keepalive_wave(url: str, bodies, expected_b64, count: int) -> dict:
    """``count`` concurrent keep-alive clients: one infer + one healthz each."""
    host, port = url.split("//", 1)[1].rsplit(":", 1)
    dial_gate = asyncio.Semaphore(64)  # spare the listen backlog
    connected = 0
    all_connected = asyncio.Event()
    go = asyncio.Event()
    mismatches = 0

    async def read_response(reader):
        status = (await reader.readline()).split(b" ")[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.lower() == "content-length":
                length = int(value.strip())
        return status, await reader.readexactly(length)

    async def client(index: int) -> None:
        nonlocal connected, mismatches
        async with dial_gate:
            for attempt in range(20):
                try:
                    reader, writer = await asyncio.open_connection(host, int(port))
                    break
                except OSError:
                    await asyncio.sleep(0.05 * (attempt + 1))
            else:
                raise OSError(f"client {index}: could not connect to {url}")
        connected += 1
        if connected == count:
            all_connected.set()
        await go.wait()
        try:
            body = bodies[index % len(bodies)]
            writer.write(
                b"POST /v1/infer HTTP/1.1\r\nHost: bench\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            await writer.drain()
            status, payload = await read_response(reader)
            if status != b"200" or (
                json.loads(payload).get("output_npy_b64")
                != expected_b64[index % len(expected_b64)]
            ):
                mismatches += 1
            writer.write(b"GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n")
            await writer.drain()
            status, _ = await read_response(reader)
            if status != b"200":
                mismatches += 1
        finally:
            writer.close()

    tasks = [asyncio.create_task(client(i)) for i in range(count)]
    try:
        await asyncio.wait_for(all_connected.wait(), timeout=60.0)
        start = time.perf_counter()
        go.set()
        await asyncio.wait_for(asyncio.gather(*tasks), timeout=120.0)
        elapsed = time.perf_counter() - start
    except BaseException:
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        raise
    return {
        "connections": count,
        "all_ok_bitwise": mismatches == 0,
        "serve_s": elapsed,
        "throughput_rps": count / elapsed,
    }


def _conn_scaling(network, weights, config, images) -> dict:
    """Threaded vs asyncio front-end under concurrent keep-alive clients.

    The connection-scaling trajectory: every client holds one keep-alive
    connection, sends one single-image infer (checked bitwise against a
    direct ``run_batch`` through the base64 ``.npy`` encoding) plus one
    healthz on the same socket.  A front-end that stops answering at a count
    records an ``error`` entry instead of silently shrinking the sweep.
    """
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    bodies = [
        json.dumps({"image_npy_b64": encode_array_b64(image)}).encode("ascii")
        for image in images
    ]
    expected = [encode_array_b64(row) for row in direct]
    out: dict = {}
    for label, front_cls in (("threaded", ServeHTTPServer), ("async", AsyncServeHTTPServer)):
        points = []
        server = InferenceServer(
            network,
            weights,
            config,
            executor="thread:2",
            max_batch=32,
            max_wait_s=0.002,
            queue_capacity=2 * max(_CONN_COUNTS),
        )
        with server:
            server.serve_batch(images)  # warm: program tiles before timing
            with front_cls(server, port=0) as front:
                for count in _CONN_COUNTS:
                    try:
                        points.append(
                            asyncio.run(_keepalive_wave(front.url, bodies, expected, count))
                        )
                    except (OSError, asyncio.TimeoutError) as error:
                        points.append(
                            {
                                "connections": count,
                                "all_ok_bitwise": False,
                                "error": f"{type(error).__name__}: {error}",
                            }
                        )
                        break  # larger counts would only time out again
        out[label] = points
    return out


def _sharding_timings(network, weights, config, images) -> dict:
    """Warm-batch serial vs thread-sharded timings (bench_sharding smoke)."""
    timings = {}
    reference = None
    for label, execution in (("serial", "serial"), ("thread:2", 2)):
        engine = FunctionalInferenceEngine(
            network, weights, config, execution=execution
        )
        engine.run_batch(images)  # cold batch: tile programming
        start = time.perf_counter()
        outputs = engine.run_batch(images)
        timings[label] = {"warm_batch_s": time.perf_counter() - start}
        if reference is None:
            reference = outputs
        else:
            timings[label]["bitwise_match_vs_serial"] = bool(
                np.array_equal(outputs, reference)
            )
    timings["speedup_thread_vs_serial"] = (
        timings["serial"]["warm_batch_s"] / timings["thread:2"]["warm_batch_s"]
    )
    return timings


def export(num_images: int) -> dict:
    network, weights, config, images = _workload(num_images)
    serving = {
        "batch_1": _serve_burst(network, weights, config, images, max_batch=1),
        "dynamic_batching": _serve_burst(network, weights, config, images, max_batch=8),
    }
    serving["batching_speedup"] = (
        serving["dynamic_batching"]["throughput_rps"]
        / serving["batch_1"]["throughput_rps"]
    )
    return {
        "meta": {
            "generated_at": datetime.now(timezone.utc).isoformat(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "workload": "lenet5",
            "chip": _CHIP,
        },
        "serving": serving,
        "robustness": _faulted_burst(network, weights, config, images),
        "observability": _traced_burst(network, weights, config, images),
        "sharding": _sharding_timings(network, weights, config, images),
        "ipc": _ipc_burst(network, weights, config, images),
        "async_conn_scaling": _conn_scaling(network, weights, config, images),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_serving.json",
        help="where to write the JSON artifact (default: BENCH_serving.json)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=16,
        help="burst size per serving measurement (default 16)",
    )
    args = parser.parse_args(argv)
    if args.requests < 1:
        parser.error(f"--requests must be >= 1, got {args.requests}")
    payload = export(args.requests)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    serving = payload["serving"]
    robustness = payload["robustness"]
    ipc = payload["ipc"]
    print(
        f"wrote {args.output}: dynamic batching "
        f"{serving['dynamic_batching']['throughput_rps']:.1f} rps "
        f"({serving['batching_speedup']:.2f}x vs batch-1), "
        f"thread sharding {payload['sharding']['speedup_thread_vs_serial']:.2f}x, "
        f"chaos burst recovered {robustness['batches_recovered']} batches "
        f"over {robustness['replica_restarts']} restarts, "
        f"shm ipc {ipc['throughput_speedup_shm']:.2f}x vs pickle "
        f"(p99 {ipc['p99_delta_ms']:+.2f} ms)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
