"""E6 — Fig. 8: power and area breakdown of the optimised accelerator.

Paper shape: at the 128×128 dual-core design point the chip power is
dominated by DRAM accesses and the chip area is dominated by the SRAM blocks.
"""

from __future__ import annotations

import json

from repro.analysis.fig8_breakdown import generate_fig8_breakdown
from repro.core.report import format_breakdown


def test_fig8_power_and_area_breakdown(benchmark, resnet50, optimal_config, framework, results_dir):
    data = benchmark.pedantic(
        lambda: generate_fig8_breakdown(
            network=resnet50, config=optimal_config, framework=framework
        ),
        rounds=1,
        iterations=1,
    )

    (results_dir / "fig8_breakdown.json").write_text(json.dumps(data, indent=2, default=float))
    print()
    print(f"totals: {data['totals']}")
    print("\nPower breakdown (W):")
    print(format_breakdown(data["power_w"], "W"))
    print("\nArea breakdown (mm^2):")
    print(format_breakdown(data["area_mm2"], "mm^2"))

    power = data["power_w"]
    area = data["area_mm2"]
    totals = data["totals"]

    # DRAM is the largest power component and a sizeable fraction of the total.
    assert max(power, key=power.get) == "dram"
    assert power["dram"] > 0.3 * totals["power_w"]
    # SRAM is the largest area component and dominates the chip.
    assert max(area, key=area.get) == "sram"
    assert area["sram"] > 0.5 * totals["area_mm2"]
    # Total power / area in the paper's ballpark (30 W, 121 mm^2) within ~2x.
    assert 10 < totals["power_w"] < 60
    assert 60 < totals["area_mm2"] < 250
    # Grouped views sum to the same totals.
    assert abs(sum(data["power_grouped_w"].values()) - totals["power_w"]) < 1e-6
    assert abs(sum(data["area_grouped_mm2"].values()) - totals["area_mm2"]) < 1e-6
