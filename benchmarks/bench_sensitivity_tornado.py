"""Extension — tornado sensitivity of the optimal design point's IPS/W.

Not a figure of the paper, but a direct consequence of its Fig. 8 claim: if
DRAM accesses dominate power, then IPS/W must be most sensitive to the DRAM
energy-per-bit assumption, with the converter and photonic parameters far
behind.  The benchmark quantifies that ordering (each device constant halved
and doubled, one at a time).
"""

from __future__ import annotations

from repro.analysis import save_rows, sensitivity_rows
from repro.core.report import format_table

PARAMETERS = (
    "dram_energy_per_bit_j",
    "sram_energy_per_bit_j",
    "adc_power_w",
    "tia_power_w",
    "odac_driver_energy_per_sample_j",
    "serdes_energy_per_bit_j",
    "mmi_crossing_loss_db",
    "receiver_sensitivity_w",
    "laser_wall_plug_efficiency",
    "pcm_programming_energy_j",
)


def test_ipsw_sensitivity_tornado(benchmark, resnet50, optimal_config, framework, results_dir):
    rows = benchmark.pedantic(
        lambda: sensitivity_rows(
            resnet50, optimal_config, metric="ips_per_watt", parameters=PARAMETERS,
            framework=framework,
        ),
        rounds=1,
        iterations=1,
    )

    save_rows(rows, results_dir / "sensitivity_tornado.csv")
    print()
    print(format_table(
        ["parameter", "IPS/W @ 0.5x", "IPS/W @ 2x", "relative swing"],
        [
            [r["parameter"], f"{r['metric_at_low']:.0f}", f"{r['metric_at_high']:.0f}",
             f"{r['relative_swing'] * 100:.1f} %"]
            for r in rows
        ],
    ))

    order = [r["parameter"] for r in rows]
    swings = {r["parameter"]: r["relative_swing"] for r in rows}
    # DRAM energy is the single most influential constant (Fig. 8 corollary).
    assert order[0] == "dram_energy_per_bit_j"
    assert swings["dram_energy_per_bit_j"] > 0.3
    # Photonic loss / laser constants barely matter at the 128x128 point.
    assert swings["mmi_crossing_loss_db"] < 0.1
    assert swings["pcm_programming_energy_j"] < swings["dram_energy_per_bit_j"]
