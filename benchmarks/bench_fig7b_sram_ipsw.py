"""E4 — Fig. 7b: IPS/W vs input-SRAM size for several batch sizes.

Paper shape: for every batch size there is a critical input-SRAM size — the
capacity that holds the batched input working set — beyond which adding SRAM
does not improve IPS/W; the critical size grows with the batch size.
"""

from __future__ import annotations

from repro.analysis import save_rows
from repro.analysis.fig7_sram_batch import critical_sram_size_mb, generate_fig7b_sram_ipsw
from repro.core.report import format_table

SRAM_SIZES_MB = (1.0, 2.0, 4.0, 8.0, 16.0, 26.3, 48.0, 64.0)
BATCHES = (8, 16, 32, 64)


def test_fig7b_ipsw_vs_input_sram(benchmark, resnet50, sweep_config, framework, results_dir):
    rows = benchmark.pedantic(
        lambda: generate_fig7b_sram_ipsw(
            network=resnet50,
            base_config=sweep_config,
            input_sram_mb_values=SRAM_SIZES_MB,
            batch_sizes=BATCHES,
            framework=framework,
        ),
        rounds=1,
        iterations=1,
    )

    save_rows(rows, results_dir / "fig7b_sram_ipsw.csv")
    print()
    print(format_table(
        ["batch", "input SRAM (MB)", "IPS/W", "DRAM power (W)"],
        [
            [int(r["batch_size"]), f"{r['input_sram_mb']:.1f}", f"{r['ips_per_watt']:.0f}",
             f"{r['dram_power_w']:.2f}"]
            for r in rows
        ],
    ))

    criticals = {batch: critical_sram_size_mb(rows, batch) for batch in BATCHES}
    print(f"critical input-SRAM size per batch (MB): {criticals}")

    # The critical SRAM size grows with the batch size.
    assert criticals[8] <= criticals[16] <= criticals[32] <= criticals[64]
    assert criticals[64] > criticals[8]

    # Beyond the critical size, more SRAM gives (essentially) no IPS/W benefit.
    for batch in BATCHES:
        batch_rows = [r for r in rows if r["batch_size"] == float(batch)]
        beyond = [r["ips_per_watt"] for r in batch_rows if r["input_sram_mb"] >= criticals[batch]]
        assert max(beyond) / min(beyond) < 1.05

    # Starving the input SRAM hurts the large-batch configuration the most.
    def efficiency(batch, sram):
        return next(
            r["ips_per_watt"]
            for r in rows
            if r["batch_size"] == float(batch) and r["input_sram_mb"] == float(sram)
        )

    assert efficiency(64, 64.0) / efficiency(64, 1.0) > efficiency(8, 64.0) / efficiency(8, 1.0)
