"""Ablation — co-packaged HBM vs PCIe-attached DRAM.

The paper argues (Section II/IV) that reaching DRAM through a PCIe switch, as
in prior electro-photonic proposals, costs ~15 pJ/bit instead of the 3.9
pJ/bit of a co-packaged HBM stack and would erase much of the accelerator's
efficiency advantage.  This ablation quantifies that claim on the optimised
design point.
"""

from __future__ import annotations

from repro.analysis import save_rows
from repro.core.report import format_table


def test_hbm_vs_pcie_dram(benchmark, resnet50, optimal_config, framework, results_dir):
    def run():
        rows = []
        for kind in ("hbm", "pcie"):
            metrics = framework.evaluate(optimal_config.with_updates(dram_kind=kind))
            rows.append(
                {
                    "dram": kind,
                    "ips": metrics.inferences_per_second,
                    "power_w": metrics.power_w,
                    "ips_per_watt": metrics.ips_per_watt,
                    "dram_power_w": metrics.power_breakdown.component("dram"),
                    "dram_fraction": metrics.power_breakdown.component("dram") / metrics.power_w,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_rows(rows, results_dir / "ablation_dram.csv")
    print()
    print(format_table(
        ["DRAM", "IPS", "power (W)", "IPS/W", "DRAM power (W)", "DRAM share"],
        [
            [r["dram"].upper(), f"{r['ips']:.0f}", f"{r['power_w']:.1f}", f"{r['ips_per_watt']:.0f}",
             f"{r['dram_power_w']:.1f}", f"{r['dram_fraction'] * 100:.0f} %"]
            for r in rows
        ],
    ))

    hbm, pcie = rows
    # Same throughput (DRAM energy does not change the dataflow) ...
    assert abs(hbm["ips"] - pcie["ips"]) / hbm["ips"] < 0.05
    # ... but the PCIe path multiplies DRAM power by ~15/3.9 and wrecks IPS/W.
    assert pcie["dram_power_w"] > 3.0 * hbm["dram_power_w"]
    assert hbm["ips_per_watt"] > 2.0 * pcie["ips_per_watt"]
    # With PCIe DRAM the A100's 15x power advantage would shrink to a few x.
    assert pcie["power_w"] > 2.0 * hbm["power_w"]
