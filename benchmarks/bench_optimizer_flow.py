"""E10 — Section VI-B: the three-step optimization flow.

Paper outcome: smallest sufficient batch = 32, input SRAM = 26.3 MB, array
size = 128×128 (largest array among the IPS/W near-ties), dual core.  The
benchmark runs the same flow with the reproduction's models and checks it
lands on a large array with a moderate batch and an IPS/W at least as good as
the paper's default 32×32 starting point.
"""

from __future__ import annotations

import json

from repro.config import default_sweep_chip
from repro.core.optimizer import DesignOptimizer
from repro.core.report import format_table


def test_optimization_flow(benchmark, resnet50, framework, results_dir):
    optimizer = DesignOptimizer(resnet50, default_sweep_chip(), area_cap_mm2=160.0)

    result = benchmark.pedantic(
        lambda: optimizer.optimize(
            batch_candidates=(1, 2, 4, 8, 16, 32, 64),
            array_candidates=(32, 64, 128, 256),
            sram_candidates_mb=(4.0, 8.0, 16.0, 26.3, 32.0),
        ),
        rounds=1,
        iterations=1,
    )

    summary = result.summary()
    (results_dir / "optimizer_flow.json").write_text(json.dumps(summary, indent=2))
    print()
    print("chosen design point:")
    for key, value in summary.items():
        print(f"  {key:<16s} {value}")
    print("\ntop array candidates by IPS/W:")
    print(format_table(
        ["rows", "cols", "IPS", "IPS/W", "feasible"],
        [
            [int(r["rows"]), int(r["columns"]), f"{r['ips']:.0f}", f"{r['ips_per_watt']:.0f}",
             "yes" if r["feasible"] else "no"]
            for r in result.array_candidates[:8]
        ],
    ))
    print("(paper's chosen point: 128x128, batch 32, 26.3 MB input SRAM, dual core)")

    baseline = framework.evaluate(default_sweep_chip())

    # The flow lands on a large array (the paper picks 128x128) ...
    assert result.chosen_rows * result.chosen_columns >= 64 * 64
    # ... with a moderate batch size (paper: 32) ...
    assert 8 <= result.chosen_batch_size <= 64
    # ... a feasible link budget and dual-core operation ...
    assert result.metrics.feasible
    assert result.config.is_dual_core
    # ... within the area cap, and clearly better IPS/W than the 32x32 default.
    assert result.metrics.area_mm2 <= 160.0
    assert result.metrics.ips_per_watt > baseline.ips_per_watt
