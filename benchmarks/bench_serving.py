"""Online-serving benchmarks: dynamic micro-batching vs batch-1 serving.

The paper's Fig. 7 batch analysis is an *offline* argument that batching
amortises PCM tile programming and per-dispatch overhead; this benchmark
makes the same argument *online*.  The identical burst of requests is served
twice through :class:`~repro.serve.InferenceServer` — once with the
micro-batcher disabled (``max_batch=1``) and once with dynamic batching
(``max_batch=8``) — and dynamic batching must win on throughput while
staying bitwise identical to a direct ``run_batch`` of the same images.
"""

from __future__ import annotations

import csv
import time

import numpy as np

from repro.config import small_test_chip
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.nn import build_lenet5
from repro.serve import InferenceServer, LoadGenerator, poisson_arrivals

#: Serving scenario: LeNet on a dual-core 32x32 chip, one 16-request burst.
_CHIP = dict(rows=32, columns=32, num_cores=2)
_REQUESTS = 16


def _workload():
    network = build_lenet5()
    weights = generate_random_weights(network, seed=0, scale=0.3)
    config = small_test_chip(**_CHIP)
    images = np.random.default_rng(1).uniform(
        0.0, 1.0, (_REQUESTS,) + network.input_shape.as_tuple()
    )
    return network, weights, config, images


def _serve_burst(network, weights, config, images, max_batch):
    """Serve one all-at-once burst; returns (outputs, rps, telemetry)."""
    server = InferenceServer(
        network,
        weights,
        config,
        max_batch=max_batch,
        max_wait_s=0.002 if max_batch > 1 else 0.0,
        queue_capacity=max(_REQUESTS, max_batch),
    )
    with server:
        start = time.perf_counter()
        outputs = server.serve_batch(images)
        elapsed = time.perf_counter() - start
        telemetry = server.telemetry.snapshot()
    return outputs, len(images) / elapsed, telemetry


def test_dynamic_batching_beats_batch1_serving(results_dir):
    """Acceptance: micro-batching must out-serve batch-size-1 serving."""
    network, weights, config, images = _workload()
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)

    single_out, single_rps, single_tel = _serve_burst(
        network, weights, config, images, max_batch=1
    )
    batched_out, batched_rps, batched_tel = _serve_burst(
        network, weights, config, images, max_batch=8
    )

    # Serving must not change a single bit, batched or not.
    assert np.array_equal(single_out, direct)
    assert np.array_equal(batched_out, direct)

    # The batcher really formed multi-request batches...
    assert max(batched_tel["batch_size_histogram"]) > 1
    assert single_tel["batch_size_histogram"] == {1: _REQUESTS}
    # ...and they pay off: fewer dispatch chains -> higher throughput.
    assert batched_rps > single_rps * 1.2

    with open(results_dir / "serving_batching.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["policy", "throughput_rps", "p50_ms", "p99_ms", "mean_batch_size"]
        )
        for policy, rps, tel in (
            ("batch-1", single_rps, single_tel),
            ("dynamic max_batch=8", batched_rps, batched_tel),
        ):
            writer.writerow(
                [
                    policy,
                    f"{rps:.1f}",
                    f"{tel['latency_p50_s'] * 1e3:.2f}",
                    f"{tel['latency_p99_s'] * 1e3:.2f}",
                    f"{tel['mean_batch_size']:.2f}",
                ]
            )
    print(
        f"serving throughput: batch-1 {single_rps:.1f} rps -> dynamic batching "
        f"{batched_rps:.1f} rps ({batched_rps / single_rps:.2f}x, mean batch "
        f"{batched_tel['mean_batch_size']:.1f})"
    )


def test_open_loop_poisson_slo_report(results_dir):
    """Open-loop Poisson run: SLO telemetry is complete and self-consistent."""
    network, weights, config, images = _workload()
    with InferenceServer(
        network, weights, config, executor="thread:2", max_batch=4, max_wait_s=0.002
    ) as server:
        report = LoadGenerator(server).run_open_loop(
            images, poisson_arrivals(800.0, _REQUESTS, seed=2)
        )
    telemetry = report.server["telemetry"]
    assert telemetry["requests_completed"] == _REQUESTS
    assert telemetry["throughput_rps"] > 0
    assert telemetry["latency_p99_s"] >= telemetry["latency_p50_s"] > 0
    assert sum(
        size * count for size, count in telemetry["batch_size_histogram"].items()
    ) == _REQUESTS
    print(
        f"open-loop poisson: {report.achieved_rps:.1f} rps, server p50 "
        f"{telemetry['latency_p50_s'] * 1e3:.2f} ms, p99 "
        f"{telemetry['latency_p99_s'] * 1e3:.2f} ms, mean batch "
        f"{telemetry['mean_batch_size']:.2f}"
    )
