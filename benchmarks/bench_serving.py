"""Online-serving benchmarks: batching policies under load.

The paper's Fig. 7 batch analysis is an *offline* argument that batching
amortises PCM tile programming and per-dispatch overhead; these benchmarks
make the same argument *online*:

* the identical burst of requests is served with the micro-batcher disabled
  (``max_batch=1``) and with dynamic batching (``max_batch=8``) — dynamic
  batching must win on throughput while staying bitwise identical to a
  direct ``run_batch`` of the same images;
* the same bursty arrival trace is served under the static ``fixed`` flush
  policy and the deadline/SLO-aware ``adaptive`` policy — the adaptive
  policy must meet a latency deadline the fixed policy (tuned for
  throughput, oblivious to deadlines) misses, or match its throughput
  within 5% when both meet it;
* the identical burst is served with per-request tracing off and on at the
  default sampling rate — tracing must stay within 5% of the untraced
  throughput, so observability is safe to leave enabled in production;
* the identical burst is served over a ``process:2`` pool with the default
  pickle transport and with the ``--ipc shm`` zero-copy shared-memory arena —
  the arena must stay bitwise identical to a direct ``run_batch`` and must
  not cost throughput (it strictly removes per-dispatch serialization work;
  on this compute-dominated simulation workload the win is modest, which is
  exactly what the recorded delta documents);
* the same keep-alive request wave is driven at 100 / 500 / 2000 concurrent
  connections against the legacy thread-per-connection front-end and the
  asyncio front-end — the async front-end must answer every client at every
  count with bitwise-identical outputs (the threaded one is measured for
  the comparison, not held to the 2000-connection bar).
"""

from __future__ import annotations

import asyncio
import csv
import json
import resource
import time

import numpy as np

from repro.config import small_test_chip
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.nn import build_lenet5
from repro.serve import (
    AsyncServeHTTPServer,
    InferenceServer,
    LoadGenerator,
    ServeHTTPServer,
    bursty_arrivals,
    poisson_arrivals,
)
from repro.serve.http import encode_array_b64

#: Serving scenario: LeNet on a dual-core 32x32 chip, one 16-request burst.
_CHIP = dict(rows=32, columns=32, num_cores=2)
_REQUESTS = 16


def _workload():
    network = build_lenet5()
    weights = generate_random_weights(network, seed=0, scale=0.3)
    config = small_test_chip(**_CHIP)
    images = np.random.default_rng(1).uniform(
        0.0, 1.0, (_REQUESTS,) + network.input_shape.as_tuple()
    )
    return network, weights, config, images


def _serve_burst(network, weights, config, images, max_batch):
    """Serve one all-at-once burst; returns (outputs, rps, telemetry)."""
    server = InferenceServer(
        network,
        weights,
        config,
        max_batch=max_batch,
        max_wait_s=0.002 if max_batch > 1 else 0.0,
        queue_capacity=max(_REQUESTS, max_batch),
    )
    with server:
        start = time.perf_counter()
        outputs = server.serve_batch(images)
        elapsed = time.perf_counter() - start
        telemetry = server.telemetry.snapshot()
    return outputs, len(images) / elapsed, telemetry


def test_dynamic_batching_beats_batch1_serving(results_dir):
    """Acceptance: micro-batching must out-serve batch-size-1 serving."""
    network, weights, config, images = _workload()
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)

    single_out, single_rps, single_tel = _serve_burst(
        network, weights, config, images, max_batch=1
    )
    batched_out, batched_rps, batched_tel = _serve_burst(
        network, weights, config, images, max_batch=8
    )

    # Serving must not change a single bit, batched or not.
    assert np.array_equal(single_out, direct)
    assert np.array_equal(batched_out, direct)

    # The batcher really formed multi-request batches...
    assert max(batched_tel["batch_size_histogram"]) > 1
    assert single_tel["batch_size_histogram"] == {1: _REQUESTS}
    # ...and they pay off: fewer dispatch chains -> higher throughput.
    assert batched_rps > single_rps * 1.2

    with open(results_dir / "serving_batching.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["policy", "throughput_rps", "p50_ms", "p99_ms", "mean_batch_size"]
        )
        for policy, rps, tel in (
            ("batch-1", single_rps, single_tel),
            ("dynamic max_batch=8", batched_rps, batched_tel),
        ):
            writer.writerow(
                [
                    policy,
                    f"{rps:.1f}",
                    f"{tel['latency_p50_s'] * 1e3:.2f}",
                    f"{tel['latency_p99_s'] * 1e3:.2f}",
                    f"{tel['mean_batch_size']:.2f}",
                ]
            )
    print(
        f"serving throughput: batch-1 {single_rps:.1f} rps -> dynamic batching "
        f"{batched_rps:.1f} rps ({batched_rps / single_rps:.2f}x, mean batch "
        f"{batched_tel['mean_batch_size']:.1f})"
    )


def test_adaptive_policy_meets_deadline_fixed_misses(results_dir):
    """Acceptance: SLO-aware flushing beats a deadline the fixed policy blows.

    The fixed policy is configured the way a throughput-first operator would
    (large ``max_batch``, generous ``max_wait``) — on a bursty trace whose
    bursts never fill the batch, every batch waits out the full timer and the
    250 ms deadline is blown.  The adaptive policy is told the deadline and
    nothing else; it must meet it (after one calibration pass) or, if the
    fixed policy happens to meet it too, stay within 5% of its throughput.
    """
    network, weights, config, images = _workload()
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    slo_s = 0.25
    arrivals = bursty_arrivals(
        400.0, _REQUESTS, seed=3, burst_length=8, burst_factor=10.0
    )

    def run(**policy_kwargs):
        server = InferenceServer(
            network, weights, config, queue_capacity=64, **policy_kwargs
        )
        with server:
            generator = LoadGenerator(server)
            generator.run_open_loop(images, arrivals)  # warm + calibrate
            return generator.run_open_loop(images, arrivals)  # measured

    fixed = run(max_batch=32, max_wait_s=0.6)
    adaptive = run(policy="adaptive", slo_s=slo_s, max_batch=32)

    # Policy choice must never change a bit.
    assert np.array_equal(fixed.outputs, direct)
    assert np.array_equal(adaptive.outputs, direct)

    fixed_p95 = fixed.client_latency["latency_p95_s"]
    adaptive_p95 = adaptive.client_latency["latency_p95_s"]
    assert adaptive_p95 <= slo_s, (
        f"adaptive policy blew the {slo_s * 1e3:.0f} ms deadline: "
        f"p95 {adaptive_p95 * 1e3:.1f} ms"
    )
    assert fixed_p95 > slo_s or adaptive.achieved_rps >= 0.95 * fixed.achieved_rps
    # the adaptive policy still batches (it is not degenerating to batch-1)
    assert adaptive.server["telemetry"]["mean_batch_size"] > 1

    with open(results_dir / "serving_policies.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["policy", "p95_ms", "slo_ms", "meets_slo", "throughput_rps", "mean_batch_size"]
        )
        for name, report, p95 in (
            ("fixed max_wait=600ms", fixed, fixed_p95),
            (f"adaptive slo={slo_s * 1e3:.0f}ms", adaptive, adaptive_p95),
        ):
            writer.writerow(
                [
                    name,
                    f"{p95 * 1e3:.1f}",
                    f"{slo_s * 1e3:.0f}",
                    p95 <= slo_s,
                    f"{report.achieved_rps:.1f}",
                    f"{report.server['telemetry']['mean_batch_size']:.2f}",
                ]
            )
    print(
        f"bursty arrivals vs {slo_s * 1e3:.0f} ms SLO: fixed p95 "
        f"{fixed_p95 * 1e3:.1f} ms ({fixed.achieved_rps:.1f} rps) -> adaptive p95 "
        f"{adaptive_p95 * 1e3:.1f} ms ({adaptive.achieved_rps:.1f} rps)"
    )


def test_tracing_overhead_under_five_percent(results_dir):
    """Acceptance: default-sampling tracing costs <5% of serving throughput."""
    network, weights, config, images = _workload()
    # A 4x-replicated burst: long enough (~300 ms) that the 2 ms flush-timer
    # jitter and scheduler noise stay well under the 5% assertion margin.
    flood = np.concatenate([images] * 4)
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(flood)

    def burst_rps(tracing):
        """One burst's throughput on a fresh server."""
        server = InferenceServer(
            network,
            weights,
            config,
            max_batch=8,
            max_wait_s=0.002,
            queue_capacity=len(flood),
            tracing=tracing,
        )
        with server:
            start = time.perf_counter()
            outputs = server.serve_batch(flood)
            elapsed = time.perf_counter() - start
        assert np.array_equal(outputs, direct)  # tracing never moves a bit
        return len(flood) / elapsed

    def measure():
        """Interleave the two configurations so machine-load drift during
        the benchmark biases both sides equally; best-of filters scheduler
        noise."""
        untraced = traced = 0.0
        for _ in range(5):
            untraced = max(untraced, burst_rps(False))
            traced = max(traced, burst_rps(True))
        return untraced, traced

    # One re-measure before failing: a shared CI runner can stall either
    # side by more than the 5% budget; a *real* tracing regression exceeds
    # it in both measurements.
    for attempt in range(2):
        untraced_rps, traced_rps = measure()
        if traced_rps >= 0.95 * untraced_rps:
            break
    overhead = 1.0 - traced_rps / untraced_rps

    assert traced_rps >= 0.95 * untraced_rps, (
        f"tracing overhead {overhead * 1e2:.1f}% exceeds the 5% budget: "
        f"{untraced_rps:.1f} rps untraced -> {traced_rps:.1f} rps traced"
    )

    with open(results_dir / "serving_tracing.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["tracing", "throughput_rps"])
        writer.writerow(["off", f"{untraced_rps:.1f}"])
        writer.writerow(["on (sample=1.0)", f"{traced_rps:.1f}"])
    print(
        f"tracing overhead: {untraced_rps:.1f} rps untraced -> {traced_rps:.1f} "
        f"rps traced ({overhead * 1e2:+.1f}%)"
    )


def test_shm_ipc_serves_bitwise_without_costing_throughput(results_dir):
    """Acceptance: zero-copy IPC is bitwise-identical and at least as fast.

    The shm transport strictly removes work (tensor pickling) from the
    ``process:N`` dispatch path, so after the replicas are warm it must serve
    the identical burst no slower than the pickle transport — modulo
    scheduler noise, hence the 15% tolerance — while the outputs stay bitwise
    equal to a direct ``run_batch`` and every dispatch really takes the
    arena (zero pickle fallbacks).
    """
    network, weights, config, images = _workload()
    flood = np.concatenate([images] * 2)
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(flood)

    def burst_rps(ipc):
        server = InferenceServer(
            network,
            weights,
            config,
            executor="process:2",
            ipc=ipc,
            max_batch=8,
            max_wait_s=0.002,
            queue_capacity=len(flood),
        )
        with server:
            server.serve_batch(flood)  # warm: fork replicas, program tiles
            best = 0.0
            for _ in range(3):
                start = time.perf_counter()
                outputs = server.serve_batch(flood)
                best = max(best, len(flood) / (time.perf_counter() - start))
            ipc_stats = server.stats()["pool"]["ipc"]
        assert np.array_equal(outputs, direct)  # transport never moves a bit
        return best, ipc_stats

    pickle_rps, pickle_stats = burst_rps("pickle")
    shm_rps, shm_stats = burst_rps("shm")

    assert not pickle_stats["zero_copy_active"]
    assert shm_stats["zero_copy_active"]
    assert shm_stats["copy_bytes_avoided"] > 0
    assert shm_stats["pickle_fallbacks"] == 0
    assert shm_stats["slots_in_use"] == 0
    assert shm_rps >= 0.85 * pickle_rps, (
        f"zero-copy transport lost throughput: {pickle_rps:.1f} rps pickle "
        f"-> {shm_rps:.1f} rps shm"
    )

    with open(results_dir / "serving_ipc.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["ipc", "throughput_rps", "copy_bytes_avoided"])
        writer.writerow(["pickle", f"{pickle_rps:.1f}", 0])
        writer.writerow(["shm", f"{shm_rps:.1f}", shm_stats["copy_bytes_avoided"]])
    print(
        f"process:2 transport: pickle {pickle_rps:.1f} rps -> shm {shm_rps:.1f} "
        f"rps ({shm_rps / pickle_rps:.2f}x, "
        f"{shm_stats['copy_bytes_avoided'] / 1024:.0f} KiB kept off the pipe)"
    )


#: Concurrent keep-alive client counts for the front-end scaling comparison.
_CONN_COUNTS = (100, 500, 2000)
#: fds per in-process client connection: the client socket + the accepted one.
_FDS_PER_CONN = 2


def _usable_connections(requested: int) -> int:
    """Clamp a client count to what RLIMIT_NOFILE can hold (with headroom)."""
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < hard:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (hard, hard))
            soft = hard
        except (ValueError, OSError):
            pass
    return min(requested, max(1, (soft - 256) // _FDS_PER_CONN))


async def _drive_keepalive_wave(url: str, request_bodies, expected_b64, count: int):
    """``count`` concurrent keep-alive clients, one infer + one healthz each.

    Every client dials, parks until *all* clients are connected (so the
    measured window really holds ``count`` simultaneous keep-alive
    connections), then sends one ``POST /v1/infer`` followed by one
    ``GET /healthz`` on the same connection.  Returns
    ``(connect_s, serve_s, mismatches)``.
    """
    host, port = url.split("//", 1)[1].rsplit(":", 1)
    dial_gate = asyncio.Semaphore(64)  # spare the listen backlog, keep conns open
    connected = 0
    all_connected = asyncio.Event()
    go = asyncio.Event()
    dial_failure = None
    mismatches = 0

    async def read_response(reader):
        status = (await reader.readline()).split(b" ")[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.lower() == "content-length":
                length = int(value.strip())
        return status, await reader.readexactly(length)

    async def client(index: int) -> None:
        nonlocal connected, dial_failure, mismatches
        async with dial_gate:
            for attempt in range(20):  # the accept backlog is finite: retry dials
                try:
                    reader, writer = await asyncio.open_connection(host, int(port))
                    break
                except OSError:
                    await asyncio.sleep(0.05 * (attempt + 1))
            else:
                # Fail the whole wave immediately instead of letting the
                # all-connected barrier time out.
                dial_failure = OSError(f"client {index}: could not connect to {url}")
                all_connected.set()
                raise dial_failure
        connected += 1
        if connected == count:
            all_connected.set()
        await go.wait()
        try:
            body = request_bodies[index % len(request_bodies)]
            writer.write(
                b"POST /v1/infer HTTP/1.1\r\nHost: bench\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            await writer.drain()
            status, payload = await read_response(reader)
            answer = json.loads(payload)
            if status != b"200" or (
                answer.get("output_npy_b64") != expected_b64[index % len(expected_b64)]
            ):
                mismatches += 1
            # Second request on the same socket: keep-alive actually reused.
            writer.write(b"GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n")
            await writer.drain()
            status, _ = await read_response(reader)
            if status != b"200":
                mismatches += 1
        finally:
            writer.close()

    tasks = [asyncio.create_task(client(i)) for i in range(count)]
    dial_start = time.perf_counter()
    try:
        await asyncio.wait_for(all_connected.wait(), timeout=120.0)
        if dial_failure is not None:
            raise dial_failure
        connect_s = time.perf_counter() - dial_start
        serve_start = time.perf_counter()
        go.set()
        await asyncio.wait_for(asyncio.gather(*tasks), timeout=300.0)
    except BaseException:
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        raise
    return connect_s, time.perf_counter() - serve_start, mismatches


def test_async_frontend_scales_keepalive_connections(results_dir):
    """Acceptance: the asyncio front-end holds 100/500/2000 keep-alive clients.

    Each client performs one single-image infer (checked bitwise against a
    direct ``run_batch`` via the base64 ``.npy`` wire encoding — string
    equality of the payload is byte equality of the tensor) plus one healthz
    on the same connection.  The async front-end must answer every client at
    every count; the threaded front-end is measured alongside for the
    comparison table and only held to the smallest count, since one thread
    per connection is exactly the scaling wall the async front-end removes.
    """
    network, weights, config, images = _workload()
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    request_bodies = [
        json.dumps({"image_npy_b64": encode_array_b64(image)}).encode("ascii")
        for image in images
    ]
    expected_b64 = [encode_array_b64(row) for row in direct]

    rows = []
    for label, front_cls in (("threaded", ServeHTTPServer), ("async", AsyncServeHTTPServer)):
        server = InferenceServer(
            network,
            weights,
            config,
            executor="thread:2",
            max_batch=32,
            max_wait_s=0.002,
            queue_capacity=2 * max(_CONN_COUNTS),
        )
        with server:
            server.serve_batch(images)  # warm: program tiles before timing
            with front_cls(server, port=0) as front:
                failed_at = None
                for requested in _CONN_COUNTS:
                    count = _usable_connections(requested)
                    if failed_at is not None:
                        rows.append(
                            dict(
                                frontend=label,
                                requested=requested,
                                connections=count,
                                ok=False,
                                connect_s=float("nan"),
                                serve_s=float("nan"),
                                rps=0.0,
                                error=f"skipped: failed at {failed_at} connections",
                            )
                        )
                        continue
                    try:
                        connect_s, serve_s, mismatches = asyncio.run(
                            _drive_keepalive_wave(
                                front.url, request_bodies, expected_b64, count
                            )
                        )
                        rows.append(
                            dict(
                                frontend=label,
                                requested=requested,
                                connections=count,
                                ok=mismatches == 0,
                                connect_s=connect_s,
                                serve_s=serve_s,
                                rps=count / serve_s,
                            )
                        )
                    except (OSError, asyncio.TimeoutError) as error:
                        failed_at = count
                        rows.append(
                            dict(
                                frontend=label,
                                requested=requested,
                                connections=count,
                                ok=False,
                                connect_s=float("nan"),
                                serve_s=float("nan"),
                                rps=0.0,
                                error=f"{type(error).__name__}: {error}",
                            )
                        )

    with open(results_dir / "serving_conn_scaling.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["frontend", "connections", "all_ok_bitwise", "connect_s", "serve_s", "rps"]
        )
        for row in rows:
            writer.writerow(
                [
                    row["frontend"],
                    row["connections"],
                    row["ok"],
                    f"{row['connect_s']:.2f}",
                    f"{row['serve_s']:.2f}",
                    f"{row['rps']:.1f}",
                ]
            )

    by_key = {(row["frontend"], row["requested"]): row for row in rows}
    # The async front-end must clear every count it was actually able to
    # dial (fd-limit clamping only ever lowers the count), including the
    # >=500 acceptance bar, with zero non-200s and zero bitwise mismatches.
    for requested in _CONN_COUNTS:
        row = by_key[("async", requested)]
        assert row["ok"], f"async front-end failed at {row['connections']} conns: {row}"
    # The threaded front-end is only held to the baseline count.
    assert by_key[("threaded", _CONN_COUNTS[0])]["ok"]
    for row in rows:
        print(
            f"conn scaling [{row['frontend']:>8}] {row['connections']:>5} clients: "
            + (
                f"connect {row['connect_s']:.2f}s, serve {row['serve_s']:.2f}s "
                f"({row['rps']:.0f} req/s, bitwise {'ok' if row['ok'] else 'FAIL'})"
                if row["rps"]
                else f"failed ({row.get('error', 'mismatches')})"
            )
        )


def test_open_loop_poisson_slo_report(results_dir):
    """Open-loop Poisson run: SLO telemetry is complete and self-consistent."""
    network, weights, config, images = _workload()
    with InferenceServer(
        network, weights, config, executor="thread:2", max_batch=4, max_wait_s=0.002
    ) as server:
        report = LoadGenerator(server).run_open_loop(
            images, poisson_arrivals(800.0, _REQUESTS, seed=2)
        )
    telemetry = report.server["telemetry"]
    assert telemetry["requests_completed"] == _REQUESTS
    assert telemetry["throughput_rps"] > 0
    assert telemetry["latency_p99_s"] >= telemetry["latency_p50_s"] > 0
    assert sum(
        size * count for size, count in telemetry["batch_size_histogram"].items()
    ) == _REQUESTS
    print(
        f"open-loop poisson: {report.achieved_rps:.1f} rps, server p50 "
        f"{telemetry['latency_p50_s'] * 1e3:.2f} ms, p99 "
        f"{telemetry['latency_p99_s'] * 1e3:.2f} ms, mean batch "
        f"{telemetry['mean_batch_size']:.2f}"
    )
