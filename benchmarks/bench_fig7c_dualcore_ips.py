"""E5 — Fig. 7c: IPS vs batch size for single- and dual-core chips.

Paper shape: the dual core hides the PCM programming latency, so its IPS is
high even at small batch sizes, while the single core needs a large batch to
amortise programming; the two curves converge at large batches.
"""

from __future__ import annotations

from repro.analysis import save_rows
from repro.analysis.fig7_sram_batch import generate_fig7c_dual_core_ips
from repro.core.report import format_table

BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)


def test_fig7c_dual_core_ips_vs_batch(benchmark, resnet50, sweep_config, framework, results_dir):
    rows = benchmark.pedantic(
        lambda: generate_fig7c_dual_core_ips(
            network=resnet50, base_config=sweep_config, batch_sizes=BATCHES, framework=framework
        ),
        rounds=1,
        iterations=1,
    )

    save_rows(rows, results_dir / "fig7c_dualcore_ips.csv")
    by_key = {(int(r["num_cores"]), int(r["batch_size"])): r for r in rows}
    print()
    print(format_table(
        ["batch", "1-core IPS", "2-core IPS", "dual-core gain"],
        [
            [batch, f"{by_key[(1, batch)]['ips']:.0f}", f"{by_key[(2, batch)]['ips']:.0f}",
             f"{by_key[(2, batch)]['ips'] / by_key[(1, batch)]['ips']:.2f}x"]
            for batch in BATCHES
        ],
    ))

    gains = {batch: by_key[(2, batch)]["ips"] / by_key[(1, batch)]["ips"] for batch in BATCHES}
    # Dual core never hurts and helps most at small batch sizes.
    assert all(gain >= 1.0 - 1e-9 for gain in gains.values())
    assert gains[1] > gains[32] > gains[128] * 0.999
    assert gains[1] > 1.3
    assert gains[128] < 1.15
    # Both curves increase with batch size (programming amortisation).
    for cores in (1, 2):
        ips_curve = [by_key[(cores, batch)]["ips"] for batch in BATCHES]
        assert all(b >= a - 1e-9 for a, b in zip(ips_curve, ips_curve[1:]))
    # IPS/W is essentially core-count independent (Section VI-A.1).
    for batch in (8, 32, 128):
        ratio = by_key[(2, batch)]["ips_per_watt"] / by_key[(1, batch)]["ips_per_watt"]
        assert 0.85 < ratio < 1.15
