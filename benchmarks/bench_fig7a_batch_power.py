"""E3 — Fig. 7a: chip power vs batch size (32×32 default chip).

Paper shape: total power rises with batch size and the DRAM component rises
steeply between batch 32 and 64, because the batched input working set stops
fitting the 26.3 MB input SRAM and must be re-fetched from DRAM on every
array reprogramming.
"""

from __future__ import annotations

from repro.analysis import save_rows
from repro.analysis.fig7_sram_batch import generate_fig7a_batch_power
from repro.core.report import format_table

BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def test_fig7a_power_vs_batch_size(benchmark, resnet50, sweep_config, framework, results_dir):
    rows = benchmark.pedantic(
        lambda: generate_fig7a_batch_power(
            network=resnet50, base_config=sweep_config, batch_sizes=BATCHES, framework=framework
        ),
        rounds=1,
        iterations=1,
    )

    save_rows(rows, results_dir / "fig7a_batch_power.csv")
    print()
    print(format_table(
        ["batch", "power (W)", "DRAM (W)", "SRAM (W)", "IPS", "IPS/W"],
        [
            [int(r["batch_size"]), f"{r['power_w']:.2f}", f"{r['dram_power_w']:.2f}",
             f"{r['sram_power_w']:.2f}", f"{r['ips']:.0f}", f"{r['ips_per_watt']:.0f}"]
            for r in rows
        ],
    ))

    dram = {int(r["batch_size"]): r["dram_power_w"] for r in rows}
    power = {int(r["batch_size"]): r["power_w"] for r in rows}
    efficiency = {int(r["batch_size"]): r["ips_per_watt"] for r in rows}

    # DRAM power grows monotonically with batch size ...
    assert dram[256] > dram[64] > dram[32] > dram[8]
    # ... and its growth accelerates once the input working set stops fitting
    # the input SRAM (the knee between batch 32 and 64 in the paper).
    assert dram[64] / dram[32] > dram[32] / dram[16]
    assert dram[64] / dram[32] > 1.2
    # Total power follows the same monotone trend.
    assert power[256] > power[32] > power[1]
    # Batch 32 is the IPS/W sweet spot the paper selects.
    assert max(efficiency, key=efficiency.get) == 32
