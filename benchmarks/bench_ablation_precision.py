"""Ablation — arithmetic precision (INT4 / INT6 / INT8).

The paper fixes INT6 end to end.  This ablation quantifies both sides of that
choice: the system-level cost of wider words (SerDes, SRAM and DRAM traffic
scale with the word width) and the functional accuracy of the analog
crossbar at each precision (signed GEMM vs exact linear algebra).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import save_rows
from repro.core.report import format_table
from repro.crossbar import SignedCrossbarEngine

BIT_WIDTHS = (4, 6, 8)


def _functional_error(bits: int) -> float:
    """Median relative error of a signed 64x32 GEMM at the given precision."""
    rng = np.random.default_rng(123)
    weights = rng.normal(0, 1, (64, 32))
    inputs = rng.uniform(0, 1, (16, 64))
    technology = None
    from repro.config import TechnologyConfig

    technology = TechnologyConfig(
        weight_bits=bits, activation_bits=bits, output_bits=bits, pcm_levels=1 << bits
    )
    engine = SignedCrossbarEngine(64, 32, technology=technology)
    engine.program(weights)
    optical = engine.matmul(inputs)
    exact = inputs @ weights
    return float(np.median(np.abs(optical - exact)) / np.median(np.abs(exact)))


def test_precision_ablation(benchmark, resnet50, optimal_config, framework, results_dir):
    def run():
        rows = []
        for bits in BIT_WIDTHS:
            technology = optimal_config.technology.with_updates(
                weight_bits=bits, activation_bits=bits, output_bits=bits
            )
            metrics = framework.evaluate(optimal_config.with_updates(technology=technology))
            rows.append(
                {
                    "bits": bits,
                    "ips": metrics.inferences_per_second,
                    "power_w": metrics.power_w,
                    "ips_per_watt": metrics.ips_per_watt,
                    "dram_power_w": metrics.power_breakdown.component("dram"),
                    "functional_relative_error": _functional_error(bits),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_rows(rows, results_dir / "ablation_precision.csv")
    print()
    print(format_table(
        ["bits", "IPS", "power (W)", "IPS/W", "DRAM (W)", "median func. error"],
        [
            [r["bits"], f"{r['ips']:.0f}", f"{r['power_w']:.1f}", f"{r['ips_per_watt']:.0f}",
             f"{r['dram_power_w']:.1f}", f"{r['functional_relative_error'] * 100:.1f} %"]
            for r in rows
        ],
    ))

    by_bits = {r["bits"]: r for r in rows}
    # Wider words cost power (memory + SerDes traffic scales with word width).
    assert by_bits[8]["power_w"] > by_bits[6]["power_w"] > by_bits[4]["power_w"]
    assert by_bits[4]["ips_per_watt"] > by_bits[6]["ips_per_watt"] > by_bits[8]["ips_per_watt"]
    # Narrower words cost accuracy; INT6 keeps the functional error in the
    # few-percent range the paper's accuracy citations require.
    assert (
        by_bits[4]["functional_relative_error"]
        > by_bits[6]["functional_relative_error"]
        > by_bits[8]["functional_relative_error"]
    )
    assert by_bits[6]["functional_relative_error"] < 0.1
