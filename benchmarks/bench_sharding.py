"""Multi-core sharding benchmarks of the functional GEMM datapath.

These guard the `repro.core.sharding` subsystem: sharded execution must stay
bitwise identical to serial execution, split the tile load evenly across the
chip's crossbar cores, and agree with the analytical dual-core schedule
(:class:`~repro.crossbar.dual_core.DualCoreCrossbar`) on the resulting
speed-up.

Scaling is asserted on the *modelled* chip timeline (per-core busy times and
the event-driven dual-core makespan): the crossbar cores being sharded are
photonic cores of the modelled chip, so their concurrency is real regardless
of how many host CPUs the benchmark machine has.  Host wall-clock is measured
too, but only to bound the worker-pool overhead (CI machines may expose a
single CPU, where thread-pool wall-clock gains are impossible by
construction).
"""

from __future__ import annotations

import csv
import time

import numpy as np

from repro.config import small_test_chip
from repro.core.accelerator import OpticalCrossbarAccelerator
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.nn import build_lenet5

#: LeNet-scale sharding scenario: a dual-core 64x64 chip and an 8-image batch.
_CHIP = dict(rows=64, columns=64, num_cores=2)
_BATCH = 8


def _lenet_setup():
    network = build_lenet5()
    weights = generate_random_weights(network, seed=0, scale=0.3)
    images = np.random.default_rng(1).uniform(
        0.0, 1.0, (_BATCH,) + network.input_shape.as_tuple()
    )
    return network, weights, images


def _timed_run_batch(execution, network, weights, images):
    engine = FunctionalInferenceEngine(
        network, weights, small_test_chip(**_CHIP), execution=execution
    )
    engine.run_batch(images)  # cold: pays the one-time PCM programming
    start = time.perf_counter()
    outputs = engine.run_batch(images)  # warm: pure sharded GEMM streaming
    elapsed = time.perf_counter() - start
    return outputs, elapsed, engine.accelerator


def test_sharded_lenet_batch_multicore_scaling(results_dir):
    """Sharded LeNet batch: bitwise-equal, balanced cores, dual-core speedup."""
    network, weights, images = _lenet_setup()
    serial_out, serial_s, _ = _timed_run_batch("serial", network, weights, images)
    sharded_out, sharded_s, accelerator = _timed_run_batch(
        "thread", network, weights, images
    )

    # Acceptance criterion: sharding must not change a single bit.
    assert np.array_equal(serial_out, sharded_out)

    # The round-robin shard split keeps both crossbar cores near-equally busy,
    # which is where the multi-core scaling comes from.
    stats = accelerator.functional_statistics()
    core_busy = stats["per_core_busy_time_s"]
    assert len(core_busy) == 2 and min(core_busy) > 0.0
    balance = min(core_busy) / max(core_busy)
    assert balance > 0.5

    # Analytical cross-check on the widest layer: the dual-core schedule of
    # the very tile plan the functional path executed shows real scaling.
    widest = max(weights.values(), key=lambda w: w.reshape(-1, w.shape[-1]).size)
    gemm_weights = widest.reshape(-1, widest.shape[-1])
    summary = accelerator.analytical_schedule(gemm_weights, num_vectors=_BATCH)
    assert summary["speedup"] > 1.3

    # The worker pool must not cost meaningful host time even on 1-CPU hosts.
    assert sharded_s < serial_s * 2.0

    with open(results_dir / "sharding_scaling.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["execution", "warm_batch_s", "core0_busy_s", "core1_busy_s",
             "dual_core_speedup"]
        )
        writer.writerow(["serial", f"{serial_s:.6f}", "", "", ""])
        writer.writerow(
            ["thread", f"{sharded_s:.6f}", f"{core_busy[0]:.3e}",
             f"{core_busy[1]:.3e}", f"{summary['speedup']:.3f}"]
        )
    print(
        f"sharded LeNet batch: serial {serial_s:.3f}s, thread {sharded_s:.3f}s, "
        f"core balance {balance:.2f}, analytical dual-core speedup "
        f"{summary['speedup']:.2f}x"
    )


def test_sharded_gemm_throughput(benchmark):
    """Warm sharded GEMM streaming on a 16-tile plan (thread pool)."""
    chip = small_test_chip(**_CHIP)
    rng = np.random.default_rng(2)
    weights = rng.normal(size=(256, 256))  # 4x4 tile grid on the 64x64 chip
    inputs = rng.uniform(0, 1, (512, 256))
    accelerator = OpticalCrossbarAccelerator(chip, execution="thread")
    accelerator.linear(weights, inputs)  # program once

    result = benchmark(lambda: accelerator.linear(weights, inputs))
    assert result.shape == (512, 256)
    counts = accelerator.functional_statistics()["per_core_tile_dispatches"]
    assert counts[0] == counts[1]  # 16 tiles split 8/8 round-robin


def test_dual_core_schedule_speedup_on_uniform_tiles():
    """An even tile grid approaches the ideal 2x dual-core makespan speedup."""
    accelerator = OpticalCrossbarAccelerator(small_test_chip(**_CHIP))
    rng = np.random.default_rng(3)
    weights = rng.normal(size=(256, 64))  # 4 equal tiles
    summary = accelerator.analytical_schedule(weights, num_vectors=_BATCH)
    assert summary["speedup"] > 1.5
    assert summary["dual_core_utilisation"] >= summary["single_core_utilisation"]
