"""E1 — Fig. 1: TOPS vs TOPS/W landscape of AI processors.

Paper shape: GPUs sit at high throughput but ~1 TOPS/W-class efficiency;
edge/analog accelerators are efficient but low-throughput; the proposed ONN
targets the datacenter corner — GPU-class (or better) throughput at an order
of magnitude better efficiency.
"""

from __future__ import annotations

from repro.analysis import save_rows
from repro.analysis.fig1_landscape import generate_fig1_landscape
from repro.core.report import format_table


def test_fig1_processor_landscape(benchmark, resnet50, optimal_config, framework, results_dir):
    rows = benchmark.pedantic(
        lambda: generate_fig1_landscape(network=resnet50, config=optimal_config),
        rounds=1,
        iterations=1,
    )

    save_rows(rows, results_dir / "fig1_landscape.csv")
    print()
    print(format_table(
        ["processor", "category", "TOPS", "TOPS/W"],
        [
            [r["name"], r["category"], f"{r['tops']:.2f}", f"{r['tops_per_watt']:.2f}"]
            for r in rows
        ],
    ))

    by_category = {}
    for row in rows:
        by_category.setdefault(row["category"], []).append(row)

    this_work = by_category["this_work"][0]
    gpus = by_category["gpu"]
    a100 = next(gpu for gpu in gpus if "A100" in gpu["name"])
    edge = by_category["edge"][0]

    # This work reaches GPU-class effective throughput ...
    assert this_work["tops"] > 0.01 * a100["tops"]
    assert this_work["tops"] > 3 * edge["tops"]
    # ... at an order of magnitude better energy efficiency than the A100 ...
    assert this_work["tops_per_watt"] > 5 * a100["tops_per_watt"]
    # ... and beats every GPU in the catalogue on TOPS/W.
    assert all(this_work["tops_per_watt"] > gpu["tops_per_watt"] for gpu in gpus)
