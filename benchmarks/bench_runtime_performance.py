"""Performance benchmarks of the simulator itself (not a paper figure).

These measure the wall-clock cost of the reproduction's two main code paths —
the analytical dataflow simulator and the functional INT6 crossbar — so
regressions in the modelling code show up in the benchmark history.  Unlike
the figure benchmarks these use multiple rounds, since they are cheap.
"""

from __future__ import annotations

import numpy as np

from repro.config import optimal_chip
from repro.crossbar import CrossbarArray
from repro.nn import build_resnet50
from repro.perf.metrics import evaluate_runtime
from repro.scalesim.simulator import CrossbarDataflowSimulator


def test_dataflow_simulation_speed(benchmark):
    """Full ResNet-50 dataflow simulation + metrics on the optimal chip."""
    network = build_resnet50()
    config = optimal_chip()

    def run():
        runtime = CrossbarDataflowSimulator(config).simulate(network)
        return evaluate_runtime(runtime).inferences_per_second

    ips = benchmark(run)
    assert ips > 10_000


def test_network_construction_speed(benchmark):
    """Building the ResNet-50 shape graph (175+ layers) and its totals."""
    total_macs = benchmark(lambda: build_resnet50().total_macs)
    assert 3.9e9 < total_macs < 4.3e9


def test_functional_matvec_speed(benchmark):
    """One 128x128 optical matrix-vector product (quantised, no noise)."""
    rng = np.random.default_rng(0)
    array = CrossbarArray(128, 128)
    array.program_weights(rng.uniform(0, 1, (128, 128)))
    inputs = rng.uniform(0, 1, 128)

    result = benchmark(lambda: array.matvec(inputs))
    assert result.shape == (128,)


def test_functional_batch_matmul_speed(benchmark):
    """Streaming 64 input vectors through a 64x64 array."""
    rng = np.random.default_rng(1)
    array = CrossbarArray(64, 64)
    array.program_weights(rng.uniform(0, 1, (64, 64)))
    inputs = rng.uniform(0, 1, (64, 64))

    result = benchmark(lambda: array.matmul(inputs))
    assert result.shape == (64, 64)
