"""Performance benchmarks of the simulator itself (not a paper figure).

These measure the wall-clock cost of the reproduction's two main code paths —
the analytical dataflow simulator and the functional INT6 crossbar — so
regressions in the modelling code show up in the benchmark history.  Unlike
the figure benchmarks these use multiple rounds, since they are cheap.

The batched-inference benchmarks guard the vectorized GEMM datapath: the
64-vector ``CrossbarArray.matmul`` must stay at least 10x faster than the
seed's per-vector Python loop, and a full LeNet ``run_batch`` exercises the
programmed-tile cache end to end.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import optimal_chip, small_test_chip
from repro.core.accelerator import OpticalCrossbarAccelerator
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.crossbar import CrossbarArray
from repro.nn import build_lenet5, build_resnet50
from repro.perf.metrics import evaluate_runtime
from repro.scalesim.simulator import CrossbarDataflowSimulator


def test_dataflow_simulation_speed(benchmark):
    """Full ResNet-50 dataflow simulation + metrics on the optimal chip."""
    network = build_resnet50()
    config = optimal_chip()

    def run():
        runtime = CrossbarDataflowSimulator(config).simulate(network)
        return evaluate_runtime(runtime).inferences_per_second

    ips = benchmark(run)
    assert ips > 10_000


def test_network_construction_speed(benchmark):
    """Building the ResNet-50 shape graph (175+ layers) and its totals."""
    total_macs = benchmark(lambda: build_resnet50().total_macs)
    assert 3.9e9 < total_macs < 4.3e9


def test_functional_matvec_speed(benchmark):
    """One 128x128 optical matrix-vector product (quantised, no noise)."""
    rng = np.random.default_rng(0)
    array = CrossbarArray(128, 128)
    array.program_weights(rng.uniform(0, 1, (128, 128)))
    inputs = rng.uniform(0, 1, 128)

    result = benchmark(lambda: array.matvec(inputs))
    assert result.shape == (128,)


def _per_vector_matmul(array: CrossbarArray, inputs: np.ndarray) -> np.ndarray:
    """The seed's matmul: a Python loop of per-vector matvec calls."""
    return np.stack([array.matvec(vector) for vector in inputs])


def test_functional_batch_matmul_speed(benchmark):
    """Streaming 64 input vectors through a 64x64 array as one GEMM.

    Asserts the vectorized batched path is at least 10x faster than the
    seed's per-vector Python loop over the same array.
    """
    rng = np.random.default_rng(1)
    array = CrossbarArray(64, 64)
    array.program_weights(rng.uniform(0, 1, (64, 64)))
    inputs = rng.uniform(0, 1, (64, 64))

    result = benchmark(lambda: array.matmul(inputs))
    assert result.shape == (64, 64)
    assert np.array_equal(result, _per_vector_matmul(array, inputs))

    def best_of(func, repeats):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            func()
            times.append(time.perf_counter() - start)
        return min(times)

    batched_s = best_of(lambda: array.matmul(inputs), repeats=20)
    per_vector_s = best_of(lambda: _per_vector_matmul(array, inputs), repeats=3)
    speedup = per_vector_s / batched_s
    print(f"\nbatched 64x64 matmul speedup over per-vector loop: {speedup:.1f}x")
    assert speedup >= 10.0


def test_functional_signed_gemm_batch_speed(benchmark):
    """64-vector signed GEMM through the tiled, tile-cached linear() path."""
    rng = np.random.default_rng(2)
    accelerator = OpticalCrossbarAccelerator(small_test_chip(rows=64, columns=64))
    weights = rng.normal(size=(100, 40))
    inputs = rng.uniform(-1, 1, (64, 100))
    accelerator.linear(weights, inputs)  # warm the programmed-tile cache

    result = benchmark(lambda: accelerator.linear(weights, inputs))
    assert result.shape == (64, 40)
    stats = accelerator.functional_statistics()
    # 2x1 tile grid, two differential arrays per tile, programmed exactly once.
    assert stats["programming_events"] == 4


def test_functional_lenet_run_batch_speed(benchmark):
    """One full functional LeNet batch (8 images) through run_batch."""
    network = build_lenet5(input_size=12)
    weights = generate_random_weights(network, seed=6, scale=0.3)
    engine = FunctionalInferenceEngine(network, weights, small_test_chip(rows=64, columns=64))
    rng = np.random.default_rng(7)
    images = rng.uniform(0, 1, (8, 12, 12, 1))
    engine.run_batch(images)  # warm the programmed-tile cache

    outputs = benchmark(lambda: engine.run_batch(images))
    assert outputs.shape == (8, 10)
