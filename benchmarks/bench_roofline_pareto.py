"""Extension — roofline placement and IPS-vs-power Pareto frontier.

Two analyses that complement the paper's evaluation:

* the roofline view shows which ResNet-50 layers are DRAM-bandwidth-bound on
  the optimised chip (the flip side of "power is dominated by DRAM");
* the Pareto frontier over the Fig. 6 array-size grid shows the IPS vs power
  trade-off that the single "best IPS/W" number hides.
"""

from __future__ import annotations

from repro.analysis import save_rows
from repro.core.pareto import frontier_rows, pareto_frontier
from repro.core.report import format_table
from repro.core.sweep import sweep_array_sizes
from repro.perf.roofline import RooflineModel


def test_resnet50_roofline(benchmark, resnet50, optimal_config, framework, results_dir):
    def run():
        runtime = framework.runtime_specs(optimal_config)
        roofline = RooflineModel(optimal_config)
        return roofline.summary(runtime), [p.as_dict() for p in roofline.layer_points(runtime)]

    summary, points = benchmark.pedantic(run, rounds=1, iterations=1)
    save_rows(points, results_dir / "roofline_layers.csv")
    print()
    for key, value in summary.items():
        print(f"  {key:<34s} {value:,.3f}")

    # The chip's peak MAC rate is far above what HBM bandwidth can feed for
    # low-reuse layers, so a visible fraction of layers is memory-bound ...
    assert summary["machine_balance_macs_per_bit"] > 1.0
    assert 0.0 < summary["memory_bound_fraction"] < 1.0
    # ... yet the network as a whole still achieves a sizeable fraction of peak.
    assert summary["achieved_macs_per_second"] > 0.2 * summary["peak_macs_per_second"]


def test_array_size_pareto_frontier(benchmark, resnet50, sweep_config, framework, results_dir):
    def run():
        sweep = sweep_array_sizes(
            resnet50,
            sweep_config,
            rows_values=(32, 64, 128, 256),
            columns_values=(32, 64, 128, 256),
            framework=framework,
        )
        return sweep, pareto_frontier(sweep, objectives=("ips", "power_w"))

    sweep, frontier = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = frontier_rows(frontier)
    save_rows(rows, results_dir / "pareto_ips_power.csv")
    print()
    print(format_table(
        ["rows", "cols", "IPS", "power (W)"],
        [
            [int(r["rows"]), int(r["columns"]), f"{r['ips']:.0f}", f"{r['power_w']:.1f}"]
            for r in rows
        ],
    ))

    # The frontier is a strict subset of the sweep and includes the highest-IPS point.
    assert 2 <= len(frontier) < len(sweep)
    best_ips = max(result.row()["ips"] for result in sweep if result.metrics.feasible)
    assert any(abs(r["ips"] - best_ips) < 1e-6 for r in rows)
    # Along the frontier, more IPS always costs more power.
    ordered = sorted(rows, key=lambda r: r["ips"])
    assert all(b["power_w"] >= a["power_w"] for a, b in zip(ordered, ordered[1:]))
