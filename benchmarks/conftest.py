"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, writes the
series to ``benchmarks/results/`` (CSV/JSON), prints it, and asserts the
qualitative shape the paper reports.  Heavy objects (the ResNet-50 workload
and a memoising simulation framework) are shared across the whole benchmark
session so each design point is only ever evaluated once.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import default_sweep_chip, optimal_chip
from repro.core.simulation import SimulationFramework
from repro.nn import build_resnet50

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def resnet50():
    """The paper's benchmark workload."""
    return build_resnet50()


@pytest.fixture(scope="session")
def framework(resnet50):
    """A single memoising framework shared by every benchmark."""
    return SimulationFramework(resnet50)


@pytest.fixture(scope="session")
def sweep_config():
    """The Section VI-A default design point (32×32, dual core, batch 32)."""
    return default_sweep_chip()


@pytest.fixture(scope="session")
def optimal_config():
    """The Section VII optimised design point (128×128, dual core, batch 32)."""
    return optimal_chip()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmark series are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """List the regenerated figure/table series at the end of a benchmark run."""
    if not RESULTS_DIR.exists():
        return
    artefacts = sorted(RESULTS_DIR.glob("*"))
    if not artefacts:
        return
    terminalreporter.write_sep("-", "regenerated paper figures/tables (benchmarks/results/)")
    for path in artefacts:
        terminalreporter.write_line(f"  {path.relative_to(RESULTS_DIR.parent.parent)}")
    terminalreporter.write_line(
        "  (paper-vs-measured discussion: EXPERIMENTS.md; per-experiment index: DESIGN.md)"
    )
