"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, writes the
series to ``benchmarks/results/`` (CSV/JSON), prints it, and asserts the
qualitative shape the paper reports.  Heavy objects (the ResNet-50 workload
and a memoising simulation framework) are shared across the whole benchmark
session so each design point is only ever evaluated once.

Collection and smoke mode
-------------------------
``bench_*.py`` files do not match pytest's default ``test_*`` pattern, so the
tier-1 run never picks them up.  The :func:`pytest_collect_file` hook below
collects them whenever the benchmarks directory (or one of its files) is
explicitly targeted, e.g. ``pytest -q benchmarks``.

Every collected benchmark also carries the ``smoke`` marker;
``pytest -q benchmarks -m smoke`` runs each benchmark exactly once with
pytest-benchmark's timing rounds disabled — a fast import/API sanity sweep of
the whole bench suite.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import default_sweep_chip, optimal_chip
from repro.core.simulation import SimulationFramework
from repro.nn import build_resnet50

RESULTS_DIR = Path(__file__).parent / "results"
BENCHMARKS_DIR = Path(__file__).parent


def _invocation_paths(config):
    for arg in config.invocation_params.args:
        path = Path(str(arg).split("::")[0])
        if not path.is_absolute():
            path = config.invocation_params.dir / path
        try:
            yield path.resolve()
        except OSError:  # malformed CLI arg (an option value, etc.)
            continue


def _benchmarks_explicitly_targeted(config) -> bool:
    """True when the invocation names the benchmarks directory or a bench file."""
    return any(
        resolved == BENCHMARKS_DIR or BENCHMARKS_DIR in resolved.parents
        for resolved in _invocation_paths(config)
    )


def pytest_configure(config):
    # The `smoke` marker itself is registered centrally in pyproject.toml.
    # `-m smoke` implies one-shot execution: let pytest-benchmark call every
    # benchmarked function exactly once instead of running timing rounds.
    markexpr = (getattr(config.option, "markexpr", "") or "").strip()
    if markexpr == "smoke" and hasattr(config.option, "benchmark_disable"):
        config.option.benchmark_disable = True


def pytest_collect_file(file_path, parent):
    """Collect bench_*.py modules when the benchmarks tree is targeted.

    The tier-1 ``pytest -x -q`` run from the repo root does not name this
    directory, so it keeps collecting tests/ only.
    """
    if file_path.suffix != ".py" or not file_path.name.startswith("bench_"):
        return None
    resolved = Path(file_path).resolve()
    if resolved in _invocation_paths(parent.config):
        return None  # named directly on the command line: pytest collects it itself
    if not _benchmarks_explicitly_targeted(parent.config):
        return None
    return pytest.Module.from_parent(parent, path=file_path)


def pytest_collection_modifyitems(config, items):
    for item in items:
        if BENCHMARKS_DIR in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.smoke)


@pytest.fixture(scope="session")
def resnet50():
    """The paper's benchmark workload."""
    return build_resnet50()


@pytest.fixture(scope="session")
def framework(resnet50):
    """A single memoising framework shared by every benchmark."""
    return SimulationFramework(resnet50)


@pytest.fixture(scope="session")
def sweep_config():
    """The Section VI-A default design point (32×32, dual core, batch 32)."""
    return default_sweep_chip()


@pytest.fixture(scope="session")
def optimal_config():
    """The Section VII optimised design point (128×128, dual core, batch 32)."""
    return optimal_chip()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmark series are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """List the regenerated figure/table series at the end of a benchmark run."""
    if not RESULTS_DIR.exists():
        return
    artefacts = sorted(RESULTS_DIR.glob("*"))
    if not artefacts:
        return
    terminalreporter.write_sep("-", "regenerated paper figures/tables (benchmarks/results/)")
    for path in artefacts:
        terminalreporter.write_line(f"  {path.relative_to(RESULTS_DIR.parent.parent)}")
    terminalreporter.write_line(
        "  (paper-vs-measured discussion: EXPERIMENTS.md; per-experiment index: DESIGN.md)"
    )
