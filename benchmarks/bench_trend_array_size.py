"""E9 — Section VI-A.2: array-size trend.

Paper statements: IPS increases approximately linearly with the array size
(N × M); peripheral power grows less than linearly, but photonic losses grow
exponentially, so the required laser power eventually explodes and IPS/W
peaks at intermediate array sizes.
"""

from __future__ import annotations

from repro.analysis import save_rows
from repro.analysis.trends import array_size_trend
from repro.core.report import format_table

SIZES = (16, 32, 64, 128, 256, 512)


def test_array_size_trend(benchmark, resnet50, sweep_config, framework, results_dir):
    rows = benchmark.pedantic(
        lambda: array_size_trend(
            network=resnet50, base_config=sweep_config, sizes=SIZES, framework=framework
        ),
        rounds=1,
        iterations=1,
    )

    save_rows(rows, results_dir / "trend_array_size.csv")
    print()
    print(format_table(
        ["size", "cells", "IPS", "IPS/W", "power (W)", "laser (W)", "feasible"],
        [
            [int(r["size"]), int(r["array_cells"]), f"{r['ips']:.0f}", f"{r['ips_per_watt']:.0f}",
             f"{r['power_w']:.1f}", f"{r['laser_electrical_w']:.3f}",
             "yes" if r["feasible"] else "no"]
            for r in rows
        ],
    ))

    by_size = {int(r["size"]): r for r in rows}

    # IPS increases monotonically with array size, roughly tracking the cell count.
    ips = [by_size[s]["ips"] for s in SIZES]
    assert ips == sorted(ips)
    assert by_size[128]["ips"] / by_size[16]["ips"] > 10.0

    # Laser power grows super-linearly in the number of cells.
    laser_ratio = by_size[256]["laser_electrical_w"] / by_size[32]["laser_electrical_w"]
    cells_ratio = by_size[256]["array_cells"] / by_size[32]["array_cells"]
    assert laser_ratio > cells_ratio

    # IPS/W peaks at an intermediate size (not the smallest, not the largest feasible).
    efficiency = {s: by_size[s]["ips_per_watt"] for s in SIZES}
    peak = max(efficiency, key=efficiency.get)
    assert 64 <= peak <= 256

    # 512x512 cannot close the optical link budget with the 45 nm loss numbers.
    assert not by_size[512]["feasible"]
