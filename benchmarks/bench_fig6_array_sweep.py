"""E2 — Fig. 6: IPS/W as a function of crossbar rows and columns.

Paper shape: IPS/W rises with array size, peaks at 128–256 rows and 64–128
columns, and falls beyond that because photonic losses (and hence the laser
power) grow exponentially with the array dimensions.
"""

from __future__ import annotations

from repro.analysis import save_rows
from repro.analysis.fig6_array_sweep import generate_fig6_array_sweep, peak_point
from repro.core.report import format_table

ROWS = (32, 64, 128, 256)
COLUMNS = (32, 64, 128, 256)


def test_fig6_ipsw_vs_array_dimensions(benchmark, resnet50, sweep_config, framework, results_dir):
    rows = benchmark.pedantic(
        lambda: generate_fig6_array_sweep(
            network=resnet50,
            base_config=sweep_config,
            rows_values=ROWS,
            columns_values=COLUMNS,
            framework=framework,
        ),
        rounds=1,
        iterations=1,
    )

    save_rows(rows, results_dir / "fig6_array_sweep.csv")
    print()
    print(format_table(
        ["rows", "cols", "IPS", "IPS/W", "power (W)", "feasible"],
        [
            [int(r["rows"]), int(r["columns"]), f"{r['ips']:.0f}", f"{r['ips_per_watt']:.0f}",
             f"{r['power_w']:.1f}", "yes" if r["feasible"] else "no"]
            for r in rows
        ],
    ))
    best = peak_point(rows)
    print(f"peak IPS/W: {best['ips_per_watt']:.0f} at {int(best['rows'])}x{int(best['columns'])} "
          "(paper: peak at 128-256 rows x 64-128 columns)")

    by_size = {(int(r["rows"]), int(r["columns"])): r for r in rows}
    # IPS always increases with array size (paper Section VI-A.2) ...
    assert by_size[(256, 256)]["ips"] > by_size[(64, 64)]["ips"] > by_size[(32, 32)]["ips"]
    # ... but IPS/W peaks at an intermediate point, in the paper's band.
    assert 64 <= best["rows"] <= 256
    assert 32 <= best["columns"] <= 256
    # The peak is NOT at the largest array of the grid: losses catch up.
    assert best["ips_per_watt"] > by_size[(256, 256)]["ips_per_watt"]
    # Efficiency at the peak is well above the smallest array's.
    assert best["ips_per_watt"] > 1.3 * by_size[(32, 32)]["ips_per_watt"]
