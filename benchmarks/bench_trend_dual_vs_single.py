"""E8 — Section VI-A.1: dual vs single core trend.

Paper statement: "Dual core design increases the IPS, but power consumption
is also consistently higher since computing and programming happen
simultaneously.  As a result, IPS/W is the same regardless of the core
count."
"""

from __future__ import annotations

import json

from repro.analysis.trends import dual_vs_single_core_trend


def test_dual_vs_single_core_trend(benchmark, resnet50, sweep_config, framework, results_dir):
    trend = benchmark.pedantic(
        lambda: dual_vs_single_core_trend(
            network=resnet50, config=sweep_config, framework=framework
        ),
        rounds=1,
        iterations=1,
    )

    (results_dir / "trend_dual_vs_single.json").write_text(json.dumps(trend, indent=2))
    print()
    for key, value in trend.items():
        print(f"  {key:<28s} {value:,.2f}")

    # IPS goes up with the second core ...
    assert trend["ips_gain"] > 1.0
    # ... and so does power ...
    assert trend["power_increase"] > 1.0
    # ... by a similar factor, leaving IPS/W essentially unchanged (within 10%).
    assert 0.9 < trend["ips_per_watt_ratio"] < 1.1
