"""E7 — Table I: this work (128×128, dual core, batch 32) vs the NVIDIA A100.

Paper values:  this work 36,382 IPS / 1,196 IPS/W / 30 W / 121 mm²;
               A100 29,733 IPS / 75 IPS/W / 396 W / 826 mm²
               (15.4× lower power, 7.24× lower area at comparable IPS).

The benchmark regenerates the table with the reproduction's models and checks
the headline shape: comparable IPS, an order of magnitude better power and
energy efficiency, several times smaller area.
"""

from __future__ import annotations

from repro.analysis import save_rows
from repro.analysis.table1 import generate_table1
from repro.core.report import format_table


def test_table1_this_work_vs_a100(benchmark, resnet50, optimal_config, framework, results_dir):
    table = benchmark.pedantic(
        lambda: generate_table1(network=resnet50, config=optimal_config, framework=framework),
        rounds=1,
        iterations=1,
    )

    rows = table["rows"]
    save_rows(rows, results_dir / "table1_comparison.csv")
    print()
    print(format_table(
        ["System", "IPS", "IPS/W", "Power (W)", "Area (mm^2)"],
        [
            [r["system"], f"{r['ips']:.0f}", f"{r['ips_per_watt']:.0f}",
             f"{r['power_w']:.1f}", f"{r['area_mm2']:.1f}"]
            for r in rows
        ],
    ))
    print(f"paper reference: {table['paper']}")
    print(f"measured ratios: {table['ratios']}")

    this_work, gpu = rows
    ratios = table["ratios"]
    # Shape checks: comparable IPS, >10x power and efficiency advantage, >3x area advantage.
    assert 0.5 < ratios["ips_ratio"] < 2.0
    assert ratios["power_advantage"] > 10.0
    assert ratios["area_advantage"] > 3.0
    assert this_work["ips_per_watt"] > 10 * gpu["ips_per_watt"]
