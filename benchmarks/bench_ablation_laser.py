"""Ablation — optical link budget sensitivity (crossing loss, receiver sensitivity).

The array size at which IPS/W peaks is set by how fast the optical excess
loss grows with the array dimensions.  This ablation sweeps the two dominant
knobs — per-crossing loss and receiver sensitivity — and shows how the
feasible/efficient array size moves, including the literal "1.8 dB/junction"
printed in the paper (which makes every large array infeasible and is why the
reproduction defaults to the cited device's 0.018 dB).
"""

from __future__ import annotations

from repro.analysis import save_rows
from repro.config.technology import MMI_CROSSING_LOSS_DB_AS_PRINTED
from repro.core.report import format_table

CROSSING_LOSSES_DB = (0.018, 0.05, 0.1, MMI_CROSSING_LOSS_DB_AS_PRINTED)
SENSITIVITIES_W = (0.25e-6, 1e-6, 4e-6)


def test_link_budget_sensitivity(benchmark, resnet50, optimal_config, framework, results_dir):
    def run():
        rows = []
        for crossing_db in CROSSING_LOSSES_DB:
            for sensitivity in SENSITIVITIES_W:
                technology = optimal_config.technology.with_updates(
                    mmi_crossing_loss_db=crossing_db, receiver_sensitivity_w=sensitivity
                )
                config = optimal_config.with_updates(technology=technology)
                metrics = framework.evaluate(config)
                rows.append(
                    {
                        "crossing_loss_db": crossing_db,
                        "receiver_sensitivity_uw": sensitivity * 1e6,
                        "excess_loss_db": metrics.laser.excess_loss_db,
                        "laser_electrical_w": metrics.laser.electrical_power_w,
                        "ips_per_watt": metrics.ips_per_watt,
                        "feasible": metrics.feasible,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_rows(rows, results_dir / "ablation_laser.csv")
    print()
    print(format_table(
        ["dB/crossing", "sens (uW)", "excess (dB)", "laser (W)", "IPS/W", "feasible"],
        [
            [f"{r['crossing_loss_db']:.3f}", f"{r['receiver_sensitivity_uw']:.2f}",
             f"{r['excess_loss_db']:.1f}", f"{r['laser_electrical_w']:.2f}",
             f"{r['ips_per_watt']:.0f}", "yes" if r["feasible"] else "no"]
            for r in rows
        ],
    ))

    def row(crossing, sensitivity_uw):
        return next(
            r for r in rows
            if r["crossing_loss_db"] == crossing
            and abs(r["receiver_sensitivity_uw"] - sensitivity_uw) < 1e-9
        )

    # The default design point closes its link budget.
    assert row(0.018, 1.0)["feasible"]
    # Higher crossing loss means exponentially more laser power.
    assert row(0.1, 1.0)["laser_electrical_w"] > 10 * row(0.018, 1.0)["laser_electrical_w"]
    # A more sensitive receiver relaxes the laser requirement proportionally.
    assert row(0.018, 0.25)["laser_electrical_w"] < row(0.018, 1.0)["laser_electrical_w"]
    # The crossing loss as printed in the paper cannot close the budget at 128x128.
    assert not row(MMI_CROSSING_LOSS_DB_AS_PRINTED, 1.0)["feasible"]
    # IPS/W degrades monotonically as the crossing loss grows (fixed sensitivity).
    efficiency = [row(loss, 1.0)["ips_per_watt"] for loss in CROSSING_LOSSES_DB]
    assert all(b <= a + 1e-9 for a, b in zip(efficiency, efficiency[1:]))
