"""Tests for end-to-end functional inference on the optical crossbar."""

import numpy as np
import pytest

from repro.config import small_test_chip
from repro.core.inference import (
    FunctionalInferenceEngine,
    agreement_metrics,
    generate_random_weights,
)
from repro.crossbar import CrossbarNoiseModel
from repro.errors import SimulationError
from repro.nn import (
    ActivationLayer,
    ConvLayer,
    DenseLayer,
    FlattenLayer,
    Network,
    PoolLayer,
    TensorShape,
    build_lenet5,
    build_mlp,
)
from repro.nn.layers import AddLayer, BatchNormLayer


def tiny_cnn() -> Network:
    """A minimal conv -> pool -> dense network for fast functional tests."""
    layers = [
        ConvLayer("conv1", out_channels=4, kernel_size=3, padding=1, bias=False),
        PoolLayer("pool1", kernel_size=2, stride=2, kind="max"),
        FlattenLayer("flatten"),
        DenseLayer("fc", out_features=5, bias=False),
    ]
    return Network("tiny_cnn", TensorShape(8, 8, 2), layers)


class TestReferenceExecution:
    def test_reference_output_shape(self):
        network = tiny_cnn()
        engine = FunctionalInferenceEngine(
            network, generate_random_weights(network), small_test_chip(rows=32, columns=32)
        )
        image = np.random.default_rng(0).uniform(0, 1, (8, 8, 2))
        output = engine.run_reference(image)
        assert output.shape == (5,)

    def test_reference_matches_manual_computation_for_dense_only_network(self):
        network = build_mlp(input_features=6, hidden_features=(4,), num_classes=3)
        weights = generate_random_weights(network, seed=1)
        engine = FunctionalInferenceEngine(network, weights, small_test_chip())
        image = np.arange(6, dtype=float).reshape(1, 1, 6) / 6.0
        output = engine.run_reference(image)
        hidden = np.maximum(image.reshape(-1) @ weights["fc1"], 0.0)
        expected = hidden @ weights["fc_out"]
        assert np.allclose(output, expected)

    def test_residual_add_uses_skip_connection(self):
        main = ConvLayer("main", out_channels=2, kernel_size=3, padding=1, bias=False, activation="identity")
        bn = BatchNormLayer("bn")
        add = AddLayer("add", skip_from=None)
        add.input_from = "bn"
        relu = ActivationLayer("relu")
        network = Network("residual", TensorShape(4, 4, 2), [main, bn, add, relu])
        weights = generate_random_weights(network, seed=2)
        engine = FunctionalInferenceEngine(network, weights, small_test_chip())
        image = np.random.default_rng(3).uniform(0, 1, (4, 4, 2))
        # skip_from=None falls back to the previous output (= bn output), so the
        # residual sum degenerates to 2x the main path here.
        output = engine.run_reference(image)
        assert output.shape == (4 * 4 * 2,)


class TestOpticalExecution:
    @pytest.fixture(scope="class")
    def engine(self):
        network = tiny_cnn()
        return FunctionalInferenceEngine(
            network, generate_random_weights(network, seed=5), small_test_chip(rows=32, columns=32)
        )

    def test_optical_output_correlates_with_reference(self, engine):
        image = np.random.default_rng(4).uniform(0, 1, (8, 8, 2))
        report = engine.agreement(image)
        assert report["correlation"] > 0.97
        assert report["relative_error"] < 0.25

    def test_noise_degrades_agreement(self):
        network = tiny_cnn()
        weights = generate_random_weights(network, seed=5)
        image = np.random.default_rng(4).uniform(0, 1, (8, 8, 2))
        clean = FunctionalInferenceEngine(
            network, weights, small_test_chip(rows=32, columns=32)
        ).agreement(image)
        noisy = FunctionalInferenceEngine(
            network,
            weights,
            small_test_chip(rows=32, columns=32),
            noise_model=CrossbarNoiseModel.pessimistic(),
        ).agreement(image)
        assert noisy["relative_error"] >= clean["relative_error"]

    def test_lenet_optical_inference_preserves_argmax(self):
        network = build_lenet5(input_size=12)
        weights = generate_random_weights(network, seed=6, scale=0.3)
        engine = FunctionalInferenceEngine(
            network, weights, small_test_chip(rows=64, columns=64)
        )
        image = np.random.default_rng(7).uniform(0, 1, (12, 12, 1))
        report = engine.agreement(image)
        assert report["correlation"] > 0.95
        assert report["top1_match"] == 1.0


class TestBatchedInference:
    @pytest.fixture(scope="class")
    def engine(self):
        network = tiny_cnn()
        return FunctionalInferenceEngine(
            network, generate_random_weights(network, seed=5), small_test_chip(rows=32, columns=32)
        )

    def test_run_batch_shape(self, engine):
        images = np.random.default_rng(0).uniform(0, 1, (4, 8, 8, 2))
        outputs = engine.run_batch(images)
        assert outputs.shape == (4, 5)

    def test_run_batch_matches_per_image_run(self, engine):
        images = np.random.default_rng(1).uniform(0, 1, (3, 8, 8, 2))
        batched = engine.run_batch(images)
        per_image = np.stack([engine.run(image) for image in images])
        assert np.array_equal(batched, per_image)

    def test_run_batch_reference_matches_per_image(self, engine):
        images = np.random.default_rng(2).uniform(0, 1, (3, 8, 8, 2))
        batched = engine.run_batch_reference(images)
        per_image = np.stack([engine.run_reference(image) for image in images])
        assert np.array_equal(batched, per_image)

    def test_batch_agreement_report(self, engine):
        images = np.random.default_rng(3).uniform(0, 1, (3, 8, 8, 2))
        report = engine.batch_agreement(images)
        assert report["batch"] == 3.0
        assert 0.0 <= report["top1_match_rate"] <= 1.0
        assert report["mean_relative_error"] <= report["max_relative_error"]

    def test_run_batch_programs_each_layer_once(self):
        network = tiny_cnn()
        engine = FunctionalInferenceEngine(
            network, generate_random_weights(network, seed=5), small_test_chip(rows=32, columns=32)
        )
        images = np.random.default_rng(4).uniform(0, 1, (6, 8, 8, 2))
        engine.run_batch(images)
        events = engine.accelerator.functional_statistics()["programming_events"]
        engine.run_batch(images)
        assert engine.accelerator.functional_statistics()["programming_events"] == events

    def test_run_batch_rejects_bad_shape(self, engine):
        with pytest.raises(SimulationError):
            engine.run_batch(np.zeros((2, 4, 4, 2)))
        with pytest.raises(SimulationError):
            engine.run_batch(np.zeros((8, 8, 2)))


class TestAgreementMetrics:
    def test_zero_reference_and_zero_optical_agree_exactly(self):
        metrics = agreement_metrics(np.zeros((2, 3)), np.zeros((2, 3)))
        assert metrics["mean_relative_error"] == 0.0
        assert metrics["max_relative_error"] == 0.0

    def test_zero_reference_with_nonzero_optical_reports_inf(self):
        # A zero reference used to be scored as *perfect* agreement no matter
        # what the optical path produced; it must flag infinite error instead.
        optical = np.array([[0.5, -0.25, 0.0]])
        metrics = agreement_metrics(optical, np.zeros((1, 3)))
        assert np.isinf(metrics["max_relative_error"])
        assert np.isinf(metrics["mean_relative_error"])

    def test_mixed_batch_keeps_finite_rows_and_flags_the_zero_norm_one(self):
        optical = np.array([[1.0, 0.0], [1.0, 0.0]])
        reference = np.array([[2.0, 0.0], [0.0, 0.0]])
        metrics = agreement_metrics(optical, reference)
        assert np.isinf(metrics["max_relative_error"])
        assert metrics["batch"] == 2.0
        assert metrics["top1_match_rate"] == 1.0

    def test_nonzero_reference_unaffected(self):
        optical = np.array([[1.0, 1.0]])
        reference = np.array([[1.0, 0.0]])
        metrics = agreement_metrics(optical, reference)
        assert metrics["max_relative_error"] == pytest.approx(1.0)


class TestValidation:
    def test_missing_weights_rejected(self):
        network = tiny_cnn()
        with pytest.raises(SimulationError):
            FunctionalInferenceEngine(network, {}, small_test_chip())

    def test_wrong_input_shape_rejected(self):
        network = tiny_cnn()
        engine = FunctionalInferenceEngine(
            network, generate_random_weights(network), small_test_chip()
        )
        with pytest.raises(SimulationError):
            engine.run_reference(np.zeros((4, 4, 2)))

    def test_generate_random_weights_shapes(self):
        network = tiny_cnn()
        weights = generate_random_weights(network)
        assert weights["conv1"].shape == (3, 3, 2, 4)
        assert weights["fc"].shape == (4 * 4 * 4, 5)
