"""Tests for multi-workload serving and queue-depth replica autoscaling.

Part of the ``serving`` lane.  Covered: the pure autoscaler decision function
under synthetic queue-depth traces (scale-up on sustained depth, hold on
momentary spikes, stepwise scale-down after idle cooldowns, bound clamping),
dynamic worker-pool resizing (grow/shrink with drain-before-retire, retired
replicas keeping their served-traffic statistics), the model registry,
multi-model routing correctness (per-model bitwise equivalence against a
direct ``run_batch``), unknown-model errors (``UnknownModelError`` →
HTTP 404), the multi-model HTTP surface (``/v1/models``, per-model
``/v1/stats``, the ``model`` payload field), mixed-model load generation and
the ``serve --model/--autoscale`` CLI.
"""

from __future__ import annotations

import json
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cli import main
from repro.config import small_test_chip
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.errors import ServeError, SimulationError, UnknownModelError
from repro.nn import build_lenet5, build_mlp
from repro.serve import (
    Autoscaler,
    AutoscalerPolicy,
    AutoscalerState,
    EngineReplicaSpec,
    EngineWorkerPool,
    FaultInjector,
    HTTPInferenceClient,
    InferenceServer,
    LoadGenerator,
    ModelDefinition,
    ModelRegistry,
    ServeHTTPServer,
    ServeTelemetry,
    mixed_model_schedule,
    poisson_arrivals,
)

pytestmark = pytest.mark.serving

_CHIP = dict(rows=32, columns=32, num_cores=2)


@pytest.fixture(scope="module")
def lenet_workload():
    network = build_lenet5()
    weights = generate_random_weights(network, seed=0, scale=0.3)
    config = small_test_chip(**_CHIP)
    images = np.random.default_rng(1).uniform(
        0.0, 1.0, (8,) + network.input_shape.as_tuple()
    )
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    return network, weights, config, images, direct


@pytest.fixture(scope="module")
def model_zoo():
    """Two LeNet variants (distinct weights) plus an MLP, with references.

    The zoo uses a 64×64 chip: the MLP's dense layers tile into ~4× fewer
    crossbar plans than at 32×32, which keeps every server start (tile
    programming per replica) fast.
    """
    config = small_test_chip(rows=64, columns=64, num_cores=2)
    zoo = {}
    for index, (name, builder) in enumerate(
        [("lenet-a", build_lenet5), ("lenet-b", build_lenet5), ("mlp", build_mlp)]
    ):
        network = builder()
        weights = generate_random_weights(network, seed=10 + index, scale=0.3)
        images = np.random.default_rng(20 + index).uniform(
            0.0, 1.0, (5,) + network.input_shape.as_tuple()
        )
        direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
        zoo[name] = (network, weights, images, direct)
    return config, zoo


def _registry(config, zoo, names, **knobs) -> ModelRegistry:
    registry = ModelRegistry()
    options = dict(config=config, max_batch=4, max_wait_s=0.002)
    options.update(knobs)
    for name in names:
        network, weights, _, _ = zoo[name]
        registry.add(name, network, weights, **options)
    return registry


# ---------------------------------------------------------------------------
# autoscaler decision function (synthetic queue-depth traces)
# ---------------------------------------------------------------------------


class TestAutoscalerPolicyDecide:
    def _policy(self, **overrides) -> AutoscalerPolicy:
        options = dict(
            min_replicas=1,
            max_replicas=4,
            scale_up_queue_depth=4,
            sustain_s=1.0,
            cooldown_s=5.0,
        )
        options.update(overrides)
        return AutoscalerPolicy(**options)

    def test_scale_up_requires_sustained_depth(self):
        policy = self._policy()
        state = AutoscalerState()
        # first over-threshold sample only starts the timer
        assert policy.decide(state, 0.0, depth=10, replicas=1) is None
        # still inside the sustain window: hold
        assert policy.decide(state, 0.5, depth=10, replicas=1) is None
        # sustained past the window: one step up
        assert policy.decide(state, 1.1, depth=10, replicas=1) == 2

    def test_momentary_spike_does_not_scale(self):
        policy = self._policy()
        state = AutoscalerState()
        assert policy.decide(state, 0.0, depth=10, replicas=1) is None
        # the spike drained before the sustain window elapsed: timer resets
        assert policy.decide(state, 0.5, depth=1, replicas=1) is None
        assert policy.decide(state, 2.0, depth=10, replicas=1) is None
        assert policy.decide(state, 2.5, depth=10, replicas=1) is None
        assert policy.decide(state, 3.1, depth=10, replicas=1) == 2

    def test_scale_up_clamps_to_max_replicas(self):
        policy = self._policy(step=4)
        state = AutoscalerState()
        policy.decide(state, 0.0, depth=10, replicas=3)
        assert policy.decide(state, 1.5, depth=10, replicas=3) == 4
        # already at the ceiling: sustained depth holds instead of scaling
        policy.decide(state, 2.0, depth=10, replicas=4)
        assert policy.decide(state, 4.0, depth=10, replicas=4) is None

    def test_scale_down_after_idle_cooldown_stepwise(self):
        policy = self._policy()
        state = AutoscalerState()
        assert policy.decide(state, 0.0, depth=0, replicas=3) is None
        assert policy.decide(state, 4.0, depth=0, replicas=3) is None
        # idle past the cooldown: one step down...
        assert policy.decide(state, 5.1, depth=0, replicas=3) == 2
        # ...and the next step needs a *fresh* cooldown
        assert policy.decide(state, 6.0, depth=0, replicas=2) is None
        assert policy.decide(state, 10.2, depth=0, replicas=2) == 1
        # at the floor the idle queue holds
        assert policy.decide(state, 20.0, depth=0, replicas=1) is None
        assert policy.decide(state, 30.0, depth=0, replicas=1) is None

    def test_traffic_resets_the_idle_timer(self):
        policy = self._policy()
        state = AutoscalerState()
        assert policy.decide(state, 0.0, depth=0, replicas=2) is None
        # mid-cooldown traffic (above the idle line, below overload) resets it
        assert policy.decide(state, 4.0, depth=2, replicas=2) is None
        assert policy.decide(state, 5.5, depth=0, replicas=2) is None
        assert policy.decide(state, 9.0, depth=0, replicas=2) is None
        assert policy.decide(state, 10.6, depth=0, replicas=2) == 1

    def test_out_of_range_replicas_snap_back_into_bounds(self):
        policy = self._policy()
        assert policy.decide(AutoscalerState(), 0.0, depth=5, replicas=9) == 4
        per_model = policy.decide(
            AutoscalerState(), 0.0, depth=0, replicas=1, min_replicas=2, max_replicas=3
        )
        assert per_model == 2

    def test_invalid_policies_rejected(self):
        with pytest.raises(SimulationError):
            AutoscalerPolicy(min_replicas=0)
        with pytest.raises(SimulationError):
            AutoscalerPolicy(min_replicas=3, max_replicas=2)
        with pytest.raises(SimulationError):
            AutoscalerPolicy(scale_up_queue_depth=0)
        with pytest.raises(SimulationError):
            AutoscalerPolicy(scale_up_queue_depth=2, scale_down_queue_depth=2)
        with pytest.raises(SimulationError):
            AutoscalerPolicy(sustain_s=-1.0)
        with pytest.raises(SimulationError):
            AutoscalerPolicy(step=0)


# ---------------------------------------------------------------------------
# dynamic worker-pool resizing
# ---------------------------------------------------------------------------


class TestPoolResize:
    def test_grow_and_shrink_stay_bitwise(self, lenet_workload):
        network, weights, config, images, direct = lenet_workload
        replica = EngineReplicaSpec(network=network, weights=weights, config=config)
        with EngineWorkerPool(replica, "thread:1", max_count=3) as pool:
            assert pool.resizable
            assert np.array_equal(pool.run_batch(images), direct)
            assert pool.resize(3) == 3
            assert np.array_equal(pool.run_batch_sharded(images), direct)
            assert pool.resize(1) == 1
            assert np.array_equal(pool.run_batch(images), direct)

    def test_resize_clamps_to_max_count(self, lenet_workload):
        network, weights, config, _, _ = lenet_workload
        replica = EngineReplicaSpec(network=network, weights=weights, config=config)
        with EngineWorkerPool(replica, "thread:1", max_count=2) as pool:
            assert pool.resize(50) == 2
            assert pool.resize(0) == 1

    def test_retired_replicas_keep_their_traffic_statistics(self, lenet_workload):
        network, weights, config, images, _ = lenet_workload
        replica = EngineReplicaSpec(network=network, weights=weights, config=config)
        with EngineWorkerPool(replica, "thread:1", max_count=2) as pool:
            pool.resize(2)
            pool.run_batch_sharded(images)
            before = sum(pool.statistics()["per_core_tile_dispatches"])
            assert before > 0
            pool.resize(1)
            after = sum(pool.statistics()["per_core_tile_dispatches"])
        assert after == before  # the retired replica's work did not vanish

    def test_shrink_drains_in_flight_batches(self, lenet_workload):
        network, weights, config, images, direct = lenet_workload
        replica = EngineReplicaSpec(network=network, weights=weights, config=config)
        with EngineWorkerPool(replica, "thread:2", max_count=2) as pool:
            futures = [pool.submit(images) for _ in range(4)]
            # shrink while batches are in flight: the retiring replica must
            # finish its work first, so every future still resolves bitwise
            assert pool.resize(1) == 1
            for future in futures:
                assert np.array_equal(future.result(timeout=60), direct)

    def test_serial_pools_are_not_resizable(self, lenet_workload):
        network, weights, config, _, _ = lenet_workload
        replica = EngineReplicaSpec(network=network, weights=weights, config=config)
        with EngineWorkerPool(replica, "serial") as pool:
            assert not pool.resizable
            with pytest.raises(ServeError, match="cannot be resized"):
                pool.resize(2)

    def test_process_pool_resize_bitwise(self, lenet_workload):
        network, weights, config, images, direct = lenet_workload
        replica = EngineReplicaSpec(network=network, weights=weights, config=config)
        with EngineWorkerPool(replica, "process:1", max_count=2) as pool:
            assert np.array_equal(pool.run_batch(images), direct)
            assert pool.resize(2) == 2
            assert np.array_equal(pool.run_batch_sharded(images), direct)
            assert pool.statistics()["replicas"] == 2


class TestResizeDuringRestart:
    """Replica supervision must not fight the autoscaler (PR 6 invariant)."""

    class _FakePool:
        """Just enough pool surface for the control loop: counters, no engines."""

        def __init__(self, count=2):
            self.count = count
            self.restarting = 0
            self.resizable = True
            self.resize_calls = []

        def resize(self, target, drain_timeout_s=None):
            self.resize_calls.append(target)
            self.count = target
            return target

    def _runtime(self, pool):
        return SimpleNamespace(
            pool=pool,
            batcher=SimpleNamespace(depth=0),
            telemetry=ServeTelemetry(),
            min_replicas=1,
            max_replicas=4,
        )

    def test_scale_down_deferred_while_replica_restarts(self):
        policy = AutoscalerPolicy(
            min_replicas=1, max_replicas=4, cooldown_s=1.0, interval_s=0.01
        )
        now = [0.0]
        pool = self._FakePool(count=2)
        runtime = self._runtime(pool)
        scaler = Autoscaler({"m": runtime}, policy, clock=lambda: now[0])
        # synthetic idle trace: depth stays 0, the cooldown elapses at t=1.5
        assert scaler.evaluate_model("m", runtime) is None  # starts the timer
        now[0] = 1.5
        pool.restarting = 1  # a supervisor restart is in flight
        assert scaler.evaluate_model("m", runtime) is None
        assert pool.resize_calls == []  # held, not applied
        assert pool.count == 2
        # once the restart lands, the next elapsed cooldown applies the step
        pool.restarting = 0
        now[0] = 3.0
        assert scaler.evaluate_model("m", runtime) == 1
        assert pool.resize_calls == [1]

    def test_scale_up_is_not_deferred_by_a_restart(self):
        policy = AutoscalerPolicy(
            min_replicas=1, max_replicas=4, scale_up_queue_depth=3, sustain_s=0.5
        )
        now = [0.0]
        pool = self._FakePool(count=2)
        pool.restarting = 1
        runtime = self._runtime(pool)
        runtime.batcher.depth = 8  # sustained overload
        scaler = Autoscaler({"m": runtime}, policy, clock=lambda: now[0])
        assert scaler.evaluate_model("m", runtime) is None  # sustain window
        now[0] = 1.0
        # growing while a slot recovers only helps the backlog: not held
        assert scaler.evaluate_model("m", runtime) == 3
        assert pool.resize_calls == [3]

    def test_real_pool_resize_during_restart_keeps_inventory(self, lenet_workload):
        """``resize()`` racing a supervisor restart must neither double-count
        the recovering slot nor retire it (the failed handle is checked out,
        so only healthy free-listed replicas are eligible)."""
        network, weights, config, images, direct = lenet_workload
        replica = EngineReplicaSpec(network=network, weights=weights, config=config)
        entered = threading.Event()
        release = threading.Event()

        def gated_sleep(_delay):
            entered.set()
            assert release.wait(timeout=30.0)

        with EngineWorkerPool(
            replica, "thread:2", max_count=3,
            fault_injector=FaultInjector(["crash:at=1"]),
            backoff_base_s=0.01, sleep=gated_sleep,
        ) as pool:
            future = pool.submit(images)
            assert entered.wait(timeout=30.0)  # supervisor is mid-restart
            assert pool.restarting == 1
            assert pool.count == 2  # the recovering slot still counts
            # growing during the restart builds one replica on top of the
            # full-strength fleet — the recovering slot is not double-counted
            assert pool.resize(3) == 3
            release.set()
            assert np.array_equal(future.result(timeout=60), direct)
            assert pool.restarting == 0
            assert pool.count == 3
            assert pool.fault_statistics()["replica_restarts"] == 1
            # every replica is healthy and serving after the dust settles
            assert np.array_equal(pool.run_batch_sharded(images), direct)


# ---------------------------------------------------------------------------
# registry + routing
# ---------------------------------------------------------------------------


class TestModelRegistry:
    def test_default_is_first_registered_and_lookup_works(self, model_zoo):
        config, zoo = model_zoo
        registry = _registry(config, zoo, ["lenet-a", "mlp"])
        assert registry.default_name == "lenet-a"
        assert registry.names() == ["lenet-a", "mlp"]
        assert registry.resolve(None).name == "lenet-a"
        assert registry.resolve("mlp").name == "mlp"
        assert "mlp" in registry and "nope" not in registry

    def test_unknown_model_error_names_hosted_models(self, model_zoo):
        config, zoo = model_zoo
        registry = _registry(config, zoo, ["lenet-a", "mlp"])
        with pytest.raises(UnknownModelError, match="lenet-a.*mlp"):
            registry.get("nope")
        # the error doubles as a SimulationError and a ServeError
        assert issubclass(UnknownModelError, SimulationError)
        assert issubclass(UnknownModelError, ServeError)

    def test_duplicate_and_invalid_definitions_rejected(self, model_zoo):
        config, zoo = model_zoo
        network, weights, _, _ = zoo["lenet-a"]
        registry = ModelRegistry()
        registry.add("a", network, weights, config=config)
        with pytest.raises(SimulationError, match="already registered"):
            registry.add("a", network, weights, config=config)
        with pytest.raises(SimulationError, match="non-empty"):
            ModelDefinition(name="  ", network=network, weights=weights)
        with pytest.raises(SimulationError, match="min_replicas"):
            ModelDefinition(
                name="x", network=network, weights=weights,
                min_replicas=3, max_replicas=2,
            )
        with pytest.raises(ServeError, match="empty"):
            InferenceServer(registry=ModelRegistry())


class TestMultiModelRouting:
    def test_per_model_outputs_bitwise_equal_direct_run_batch(self, model_zoo):
        """Acceptance: routed responses match each model's own run_batch."""
        config, zoo = model_zoo
        names = ["lenet-a", "lenet-b", "mlp"]
        registry = _registry(config, zoo, names, executor="thread:2")
        with InferenceServer.hosting(registry) as server:
            served = {
                name: server.serve_batch(zoo[name][2], model=name) for name in names
            }
        for name in names:
            assert np.array_equal(served[name], zoo[name][3]), name
        # the two LeNet variants really computed different functions
        assert not np.array_equal(served["lenet-a"], served["lenet-b"])

    def test_interleaved_submissions_route_correctly(self, model_zoo):
        config, zoo = model_zoo
        names = ["lenet-a", "lenet-b"]
        registry = _registry(config, zoo, names, max_batch=2)
        with InferenceServer.hosting(registry) as server:
            futures = []
            for index in range(5):
                for name in names:
                    image = zoo[name][2][index % len(zoo[name][2])]
                    futures.append((name, index % len(zoo[name][2]),
                                    server.submit(image, model=name)))
            for name, row, future in futures:
                assert np.array_equal(future.result(timeout=60), zoo[name][3][row])

    def test_default_model_keeps_single_model_api(self, model_zoo):
        config, zoo = model_zoo
        registry = _registry(config, zoo, ["lenet-a", "mlp"])
        with InferenceServer.hosting(registry) as server:
            assert server.default_model == "lenet-a"
            served = server.serve_batch(zoo["lenet-a"][2])  # no model given
            stats = server.stats()
        assert np.array_equal(served, zoo["lenet-a"][3])
        # legacy top-level keys describe the default model...
        assert stats["telemetry"]["requests_completed"] == len(zoo["lenet-a"][2])
        # ...and the models section covers every hosted model
        assert set(stats["models"]) == {"lenet-a", "mlp"}
        assert stats["default_model"] == "lenet-a"
        assert stats["models"]["mlp"]["telemetry"]["requests_completed"] == 0

    def test_unknown_model_and_wrong_shape_raise(self, model_zoo):
        config, zoo = model_zoo
        registry = _registry(config, zoo, ["lenet-a", "mlp"])
        with InferenceServer.hosting(registry) as server:
            with pytest.raises(UnknownModelError, match="unknown model"):
                server.submit(zoo["lenet-a"][2][0], model="nope")
            with pytest.raises(UnknownModelError):
                server.stats(model="nope")
            # an mlp-shaped image aimed at the lenet model is a shape error
            with pytest.raises(ServeError, match="lenet-a"):
                server.submit(zoo["mlp"][2][0], model="lenet-a")

    def test_failed_start_stops_already_started_models(self, model_zoo):
        """A later model failing to start must not leak earlier runtimes."""
        config, zoo = model_zoo
        network, weights, _, _ = zoo["lenet-a"]
        registry = ModelRegistry()
        registry.add("good", network, weights, config=config, executor="thread:1")
        registry.add("bad", network, {}, config=config)  # no weights: build fails
        server = InferenceServer(registry=registry)
        with pytest.raises(Exception):
            server.start()
        time.sleep(0.2)  # give a leaked dispatcher time to show up if any
        assert not any(
            thread.name == "serve-dispatch-good" and thread.is_alive()
            for thread in threading.enumerate()
        ), "the first model's dispatch thread leaked past the failed start()"
        with pytest.raises(ServeError, match="not running"):
            server.submit(zoo["lenet-a"][2][0])

    def test_models_listing_marks_default(self, model_zoo):
        config, zoo = model_zoo
        registry = _registry(config, zoo, ["lenet-a", "mlp"])
        with InferenceServer.hosting(registry) as server:
            listing = server.models()
        assert [entry["name"] for entry in listing] == ["lenet-a", "mlp"]
        assert [entry["default"] for entry in listing] == [True, False]
        assert listing[0]["input_shape"] == [28, 28, 1]
        assert listing[1]["network"] == "mlp"


# ---------------------------------------------------------------------------
# autoscaling end to end
# ---------------------------------------------------------------------------


class TestAutoscalingEndToEnd:
    def test_replicas_rise_under_load_and_fall_after_cooldown(self, lenet_workload):
        network, weights, config, images, direct = lenet_workload
        policy = AutoscalerPolicy(
            min_replicas=1,
            max_replicas=3,
            scale_up_queue_depth=3,
            sustain_s=0.02,
            cooldown_s=0.25,
            interval_s=0.02,
        )
        server = InferenceServer(
            network,
            weights,
            config,
            executor="thread:1",
            max_batch=2,
            max_wait_s=0.001,
            queue_capacity=256,
            autoscaler=policy,
        )
        with server:
            flood = np.concatenate([images] * 6)
            futures = [server.submit(image) for image in flood]
            peak = server.replica_count()
            for index, future in enumerate(futures):
                assert np.array_equal(
                    future.result(timeout=120), direct[index % len(images)]
                )
                peak = max(peak, server.replica_count())
            assert peak > 1, "sustained queue depth never scaled the pool up"
            # after the flood drains, the idle cooldown shrinks back to min
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and server.replica_count() > 1:
                time.sleep(0.05)
            assert server.replica_count() == 1
            scaling = server.telemetry.snapshot()["autoscaler"]
        assert scaling["scale_ups"] >= 1
        assert scaling["scale_downs"] >= 1
        directions = [event["direction"] for event in scaling["events"]]
        assert "up" in directions and "down" in directions
        up = next(e for e in scaling["events"] if e["direction"] == "up")
        assert up["to_replicas"] == up["from_replicas"] + 1
        assert up["queue_depth"] >= 3

    def test_serial_models_are_left_alone(self, lenet_workload):
        network, weights, config, images, direct = lenet_workload
        policy = AutoscalerPolicy(
            min_replicas=1, max_replicas=3, sustain_s=0.0, interval_s=0.01
        )
        with InferenceServer(
            network, weights, config, executor="serial", max_batch=2,
            autoscaler=policy,
        ) as server:
            served = server.serve_batch(np.concatenate([images] * 3))
            assert server.replica_count() == 1
        assert np.array_equal(served, np.concatenate([direct] * 3))


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------


class TestMultiModelHTTP:
    def test_model_field_routes_and_stays_bitwise(self, model_zoo):
        config, zoo = model_zoo
        names = ["lenet-a", "lenet-b", "mlp"]
        registry = _registry(config, zoo, names)
        with InferenceServer.hosting(registry) as server:
            with ServeHTTPServer(server) as front:
                with HTTPInferenceClient(front.url, timeout_s=60.0) as client:
                    for name in names:
                        served = client.infer_batch(zoo[name][2], model=name)
                        assert np.array_equal(served, zoo[name][3]), name
                    # omitting the model still hits the default
                    default_out = client.infer(zoo["lenet-a"][2][0])
                    assert np.array_equal(default_out, zoo["lenet-a"][3][0])

    def test_client_default_model_applies_to_every_call(self, model_zoo):
        config, zoo = model_zoo
        registry = _registry(config, zoo, ["lenet-a", "mlp"])
        with InferenceServer.hosting(registry) as server:
            with ServeHTTPServer(server) as front:
                with HTTPInferenceClient(
                    front.url, timeout_s=60.0, model="mlp"
                ) as client:
                    served = client.infer(zoo["mlp"][2][0])
                    assert np.array_equal(served, zoo["mlp"][3][0])
                    futures = [client.submit(image) for image in zoo["mlp"][2]]
                    gathered = np.stack([f.result(timeout=60) for f in futures])
        assert np.array_equal(gathered, zoo["mlp"][3])

    def test_models_endpoint_and_per_model_stats(self, model_zoo):
        config, zoo = model_zoo
        registry = _registry(config, zoo, ["lenet-a", "mlp"])
        with InferenceServer.hosting(registry) as server:
            with ServeHTTPServer(server) as front:
                with HTTPInferenceClient(front.url, timeout_s=60.0) as client:
                    client.infer_batch(zoo["mlp"][2], model="mlp")
                    listing = client.models()
                    mlp_stats = client.stats(model="mlp")
                    all_stats = client.stats()
        assert listing["default"] == "lenet-a"
        assert [m["name"] for m in listing["models"]] == ["lenet-a", "mlp"]
        assert mlp_stats["model"] == "mlp"
        assert mlp_stats["telemetry"]["requests_completed"] == len(zoo["mlp"][2])
        assert set(all_stats["models"]) == {"lenet-a", "mlp"}

    def test_unknown_model_is_http_404(self, model_zoo):
        config, zoo = model_zoo
        registry = _registry(config, zoo, ["lenet-a"])
        with InferenceServer.hosting(registry) as server:
            with ServeHTTPServer(server) as front:
                with HTTPInferenceClient(front.url, timeout_s=60.0) as client:
                    with pytest.raises(UnknownModelError, match="HTTP 404"):
                        client.infer(zoo["lenet-a"][2][0], model="nope")
                    with pytest.raises(UnknownModelError, match="HTTP 404"):
                        client.stats(model="nope")
                    with pytest.raises(ServeError, match="'model' must be"):
                        client.infer(zoo["lenet-a"][2][0], model=7)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# mixed-model load generation
# ---------------------------------------------------------------------------


class TestMixedLoadGeneration:
    def test_mixed_model_schedule_covers_and_weights(self):
        schedule = mixed_model_schedule(["a", "b"], 40, weights=[3.0, 1.0], seed=0)
        assert len(schedule) == 40
        assert set(schedule) == {"a", "b"}  # both models guaranteed traffic
        assert schedule.count("a") > schedule.count("b")
        with pytest.raises(SimulationError):
            mixed_model_schedule([], 10)
        with pytest.raises(SimulationError):
            mixed_model_schedule(["a"], 10, weights=[1.0, 2.0])
        with pytest.raises(SimulationError):
            mixed_model_schedule(["a"], 10, weights=[0.0])

    def test_open_loop_mixed_traffic_bitwise_per_model(self, model_zoo):
        config, zoo = model_zoo
        names = ["lenet-a", "mlp"]
        registry = _registry(config, zoo, names, executor="thread:2")
        schedule, images, expected = [], [], []
        for index in range(8):
            name = names[index % 2]
            row = index // 2 % len(zoo[name][2])
            schedule.append(name)
            images.append(zoo[name][2][row])
            expected.append(zoo[name][3][row])
        with InferenceServer.hosting(registry) as server:
            report = LoadGenerator(server).run_open_loop(
                images,
                poisson_arrivals(500.0, len(images), seed=3),
                models=schedule,
            )
        assert report.requests == len(images)
        # heterogeneous output shapes come back as an object array
        assert report.outputs.dtype == object
        for served, reference in zip(report.outputs, expected):
            assert np.array_equal(served, reference)
        assert report.server["models"]["mlp"]["telemetry"]["requests_completed"] == 4

    def test_closed_loop_mixed_traffic(self, model_zoo):
        config, zoo = model_zoo
        names = ["lenet-a", "lenet-b"]
        registry = _registry(config, zoo, names)
        schedule = [names[i % 2] for i in range(6)]
        images = [zoo[name][2][i // 2] for i, name in enumerate(schedule)]
        with InferenceServer.hosting(registry) as server:
            report = LoadGenerator(server).run_closed_loop(
                images, concurrency=2, models=schedule
            )
        for index, name in enumerate(schedule):
            assert np.array_equal(report.outputs[index], zoo[name][3][index // 2])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestMultiModelCli:
    # 64×64: keeps the MLP's tile programming cheap (see model_zoo)
    _chip = ["--rows", "64", "--columns", "64"]

    def test_serve_multi_model_json_bitwise_per_model(self, capsys):
        code = main(
            ["serve", "--model", "small=lenet5", "--model", "mlp=mlp",
             "--requests", "8", "--rate", "800", "--executor", "thread:2",
             "--json"] + self._chip
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["bitwise_match_vs_run_batch"] is True
        assert set(summary["models"]) == {"small", "mlp"}
        for model_summary in summary["models"].values():
            assert model_summary["bitwise_match_vs_run_batch"] is True
            assert model_summary["requests"] >= 1

    def test_serve_autoscale_scales_up_and_reports_events(self, capsys):
        code = main(
            ["serve", "--model", "a=lenet5", "--model", "b=lenet5",
             "--requests", "48", "--rate", "4000", "--autoscale",
             "--min-replicas", "1", "--max-replicas", "3",
             "--scale-up-depth", "3", "--scale-sustain-ms", "10",
             "--scale-interval-ms", "10", "--scale-cooldown-ms", "60000",
             "--max-batch", "2", "--json"] + self._chip
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["autoscale"] is True
        assert summary["bitwise_match_vs_run_batch"] is True
        # a 4000 rps flood against 1 starting replica must scale something up
        assert any(
            model["scale_ups"] >= 1 and model["replicas"] > 1
            for model in summary["models"].values()
        )

    def test_serve_with_fewer_requests_than_models_reports_na(self, capsys):
        """Regression: a hosted model with zero requests must not crash the
        summary (its bitwise verdict is simply absent/None)."""
        code = main(
            ["serve", "--model", "a=lenet5", "--model", "b=mlp",
             "--requests", "1", "--json"] + self._chip
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        verdicts = [
            model["bitwise_match_vs_run_batch"] for model in summary["models"].values()
        ]
        # one model served the single request (bitwise True), one sat idle (None)
        assert verdicts.count(True) == 1 and verdicts.count(None) == 1
        assert summary["bitwise_match_vs_run_batch"] is True

    def test_loadgen_mixed_models_closed_loop(self, capsys):
        code = main(
            ["loadgen", "--model", "a=lenet5", "--model", "b=mlp",
             "--mix", "1,1", "--mode", "closed", "--concurrency", "2",
             "--requests", "6", "--json"] + self._chip
        )
        assert code == 0
        sweep = json.loads(capsys.readouterr().out)
        assert sweep["points"][0]["bitwise_match_vs_run_batch"] is True

    @pytest.mark.parametrize(
        "option",
        [
            ["--model", "nodelimiter"],
            ["--model", "=lenet5"],
            ["--model", "a="],
            ["--model", "a=unknown_workload"],
            ["--model", "a=lenet5", "--model", "a=mlp"],  # duplicate name
            ["--model", "a=lenet5", "--mix", "1,2"],  # mix arity mismatch
            ["--autoscale", "--min-replicas", "4", "--max-replicas", "2"],
        ],
    )
    def test_invalid_multi_model_options_are_usage_errors(self, option):
        with pytest.raises(SystemExit):
            main(["serve", "--network", "lenet5", "--requests", "1"] + option)
