"""Unit tests for INT quantisation helpers."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.nn.quant import (
    QuantizationParams,
    dequantize,
    quantization_snr_db,
    quantize_tensor,
    quantize_to_unit_range,
    split_signed_matrix,
)


class TestQuantizeTensor:
    def test_codes_within_range(self):
        rng = np.random.default_rng(0)
        tensor = rng.normal(size=(32, 32))
        codes, params = quantize_tensor(tensor, bits=6)
        assert codes.min() >= 0
        assert codes.max() <= 63
        assert params.num_levels == 64

    def test_round_trip_error_bounded_by_half_lsb(self):
        rng = np.random.default_rng(1)
        tensor = rng.uniform(-3, 5, size=(100,))
        codes, params = quantize_tensor(tensor, bits=8)
        restored = dequantize(codes, params)
        assert np.max(np.abs(restored - tensor)) <= params.scale / 2 + 1e-12

    def test_symmetric_maps_zero_to_middle_code(self):
        tensor = np.array([-1.0, 0.0, 1.0])
        codes, params = quantize_tensor(tensor, bits=6, symmetric=True)
        assert codes[1] == pytest.approx(round(params.zero_point))

    def test_constant_tensor_does_not_crash(self):
        codes, params = quantize_tensor(np.full((4,), 2.5), bits=6)
        restored = dequantize(codes, params)
        assert np.allclose(restored, 2.5, atol=params.scale)

    def test_higher_bits_give_higher_snr(self):
        rng = np.random.default_rng(2)
        tensor = rng.normal(size=(1000,))
        snrs = []
        for bits in (2, 4, 6, 8):
            codes, params = quantize_tensor(tensor, bits=bits)
            snrs.append(quantization_snr_db(tensor, dequantize(codes, params)))
        assert snrs == sorted(snrs)

    def test_rejects_empty_and_bad_bits(self):
        with pytest.raises(WorkloadError):
            quantize_tensor(np.array([]))
        with pytest.raises(WorkloadError):
            quantize_tensor(np.array([1.0]), bits=0)


class TestUnitRangeQuantisation:
    def test_values_snap_to_grid(self):
        rng = np.random.default_rng(3)
        tensor = rng.uniform(0, 7, size=(50,))
        quantised, scale = quantize_to_unit_range(tensor, bits=6)
        assert np.all(quantised >= 0) and np.all(quantised <= 1)
        codes = quantised * 63
        assert np.allclose(codes, np.round(codes), atol=1e-9)
        assert np.max(np.abs(quantised * scale - tensor)) <= scale / 63 / 2 + 1e-9

    def test_zero_tensor(self):
        quantised, scale = quantize_to_unit_range(np.zeros(5))
        assert np.all(quantised == 0)
        assert scale == 1.0

    def test_rejects_negative_values(self):
        with pytest.raises(WorkloadError):
            quantize_to_unit_range(np.array([-0.1, 0.5]))


class TestSignedSplit:
    def test_split_reconstructs_original(self):
        rng = np.random.default_rng(4)
        matrix = rng.normal(size=(16, 8))
        positive, negative = split_signed_matrix(matrix)
        assert np.allclose(positive - negative, matrix)
        assert np.all(positive >= 0)
        assert np.all(negative >= 0)

    def test_split_parts_are_disjoint(self):
        matrix = np.array([[1.0, -2.0], [0.0, 3.0]])
        positive, negative = split_signed_matrix(matrix)
        assert np.all(positive * negative == 0)


class TestQuantizationParams:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            QuantizationParams(scale=0.0, zero_point=0.0, bits=6)
        with pytest.raises(WorkloadError):
            QuantizationParams(scale=1.0, zero_point=0.0, bits=0)

    def test_snr_handles_identical_arrays(self):
        data = np.ones(10)
        assert quantization_snr_db(data, data) == float("inf")

    def test_snr_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            quantization_snr_db(np.ones(3), np.ones(4))
