"""Unit tests for GEMM tiling onto the crossbar array."""

import pytest

from repro.errors import SimulationError
from repro.nn.im2col import GemmShape
from repro.scalesim import GemmTiling


def make_tiling(m=100, k=300, n=200, rows=128, columns=128) -> GemmTiling:
    return GemmTiling(gemm=GemmShape("layer", m=m, k=k, n=n), rows=rows, columns=columns)


class TestTileCounts:
    def test_tile_counts_use_ceiling_division(self):
        tiling = make_tiling(k=300, n=200, rows=128, columns=128)
        assert tiling.k_tiles == 3
        assert tiling.n_tiles == 2
        assert tiling.num_tiles == 6

    def test_exact_fit_needs_single_tile(self):
        tiling = make_tiling(k=128, n=128)
        assert tiling.num_tiles == 1

    def test_last_tile_dimensions(self):
        tiling = make_tiling(k=300, n=200, rows=128, columns=128)
        assert tiling.last_tile_rows == 300 - 2 * 128
        assert tiling.last_tile_columns == 200 - 128

    def test_last_tile_full_when_divisible(self):
        tiling = make_tiling(k=256, n=256)
        assert tiling.last_tile_rows == 128
        assert tiling.last_tile_columns == 128


class TestCellsAndUtilisation:
    def test_programmed_cells_equal_weight_elements(self):
        tiling = make_tiling(k=300, n=200)
        assert tiling.programmed_cells == 300 * 200

    def test_allocated_cells_cover_padding(self):
        tiling = make_tiling(k=300, n=200)
        assert tiling.allocated_cells == 6 * 128 * 128
        assert 0 < tiling.cell_utilization <= 1.0

    def test_full_tile_has_unity_utilisation(self):
        tiling = make_tiling(k=128, n=128)
        assert tiling.cell_utilization == pytest.approx(1.0)
        assert tiling.mac_utilization(batch_size=8) == pytest.approx(1.0)


class TestComputeCycles:
    def test_cycles_scale_with_batch_and_tiles(self):
        tiling = make_tiling(m=100, k=300, n=200)
        assert tiling.compute_cycles(1) == 6 * 100
        assert tiling.compute_cycles(32) == 32 * 6 * 100
        assert tiling.compute_cycles_per_tile(32) == 3200

    def test_mac_utilisation_bounded(self):
        tiling = make_tiling(m=49, k=100, n=60, rows=128, columns=128)
        utilisation = tiling.mac_utilization(batch_size=4)
        assert 0 < utilisation <= 1.0

    def test_ideal_cycles_lower_bound(self):
        tiling = make_tiling()
        assert tiling.ideal_cycles_per_image <= tiling.compute_cycles(1)

    def test_rejects_bad_batch(self):
        with pytest.raises(SimulationError):
            make_tiling().compute_cycles(0)

    def test_rejects_bad_array(self):
        with pytest.raises(SimulationError):
            GemmTiling(gemm=GemmShape("l", 1, 1, 1), rows=0, columns=1)
