"""Zero-copy IPC lane (``pytest -m shm``).

What makes a lock-coordinated cross-process datapath trustworthy rather than
merely fast: the :class:`~repro.serve.shm.ShmSlotArena` slot-lifecycle
invariants under seeded randomized acquire/release/resize sequences (never
two owners, never a lost slot, a drained arena is fully free); bitwise
equivalence of ``--ipc shm`` serving against a direct ``run_batch`` —
including through the oversized-batch pickle fallback, pool ``resize()`` and
real SIGKILL recovery; a many-threads × ``process:N`` stress test asserting
no torn reads; the one-serialization-per-spec payload cache; and segment-leak
regression tests (clean shutdown, SIGTERM drain of the ``serve --http`` CLI,
and a chaos-style worker kill mid-batch must all leave ``/dev/shm`` clean and
raise no resource-tracker warnings).
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import threading
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.config import small_test_chip
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.errors import ServeError, SimulationError
from repro.nn import build_lenet5
from repro.serve import (
    EngineReplicaSpec,
    EngineWorkerPool,
    FaultInjector,
    ShmSlotArena,
    parse_ipc_mode,
    spec_serialization_count,
)
from repro.serve.shm import SEGMENT_PREFIX, attach_untracked

pytestmark = pytest.mark.shm

_CHIP = dict(rows=32, columns=32, num_cores=2)

_DEV_SHM = Path("/dev/shm")

needs_dev_shm = pytest.mark.skipif(
    not _DEV_SHM.is_dir(), reason="platform has no /dev/shm to scan"
)


def _segment_path(arena: ShmSlotArena) -> Path:
    return _DEV_SHM / arena.layout.name


def _live_segments() -> set:
    return {p.name for p in _DEV_SHM.glob(f"{SEGMENT_PREFIX}_*")}


@pytest.fixture(scope="module")
def lenet_workload():
    network = build_lenet5()
    weights = generate_random_weights(network, seed=0, scale=0.3)
    config = small_test_chip(**_CHIP)
    images = np.random.default_rng(1).uniform(
        0.0, 1.0, (8,) + network.input_shape.as_tuple()
    )
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    return network, weights, config, images, direct


def _pool(lenet_workload, executor="process:2", **options) -> EngineWorkerPool:
    network, weights, config, _, _ = lenet_workload
    spec = EngineReplicaSpec(network=network, weights=dict(weights), config=config)
    return EngineWorkerPool(spec, executor=executor, ipc="shm", **options)


# ---------------------------------------------------------------------------
# slot-lifecycle properties (no worker processes: the arena alone)
# ---------------------------------------------------------------------------


class TestIpcModeParsing:
    def test_accepts_known_modes(self):
        assert parse_ipc_mode("pickle") == "pickle"
        assert parse_ipc_mode(" shm ") == "shm"

    @pytest.mark.parametrize("bad", ["mmap", "", None, 3])
    def test_rejects_unknown_modes(self, bad):
        with pytest.raises(SimulationError):
            parse_ipc_mode(bad)


class TestSlotArenaProperties:
    SLOTS = 5

    def _arena(self) -> ShmSlotArena:
        return ShmSlotArena(
            slot_batch=2, input_shape=(3,), output_size=2, slots=self.SLOTS
        )

    def test_randomized_acquire_release_resize_invariants(self):
        """Seeded op sequence: never two owners, never a lost slot, drains free.

        The acquire probe is non-blocking (``timeout_s=0``), so a refused
        admission is observable rather than a hang; every step re-checks the
        occupancy bookkeeping against the test's own shadow set.
        """
        rng = random.Random(0xC0FFEE)
        arena = self._arena()
        held: set = set()
        try:
            for _ in range(2000):
                roll = rng.random()
                if roll < 0.45:
                    index = arena.acquire(timeout_s=0)
                    snap = arena.snapshot()
                    if index is not None:
                        assert index not in held, "slot handed to two owners"
                        assert 0 <= index < self.SLOTS
                        held.add(index)
                    else:
                        # Admission correctly refused: all slots owned or the
                        # resize limit is saturated.
                        assert len(held) >= min(snap["slot_limit"], self.SLOTS)
                elif roll < 0.85 and held:
                    victim = rng.choice(sorted(held))
                    held.discard(victim)
                    arena.release(victim)
                else:
                    limit = arena.resize(rng.randint(1, self.SLOTS))
                    assert 1 <= limit <= self.SLOTS
                snap = arena.snapshot()
                assert snap["slots_in_use"] == len(held), "slot lost or duplicated"
                assert snap["slot_acquires"] - snap["slot_releases"] == len(held)
            for index in sorted(held):
                arena.release(index)
            held.clear()
            assert arena.fully_free, "drained arena must be fully free"
        finally:
            arena.close()
        assert not _segment_path(arena).exists()

    def test_release_without_acquire_is_rejected(self):
        with self._arena() as arena:
            index = arena.acquire(timeout_s=0)
            arena.release(index)
            with pytest.raises(ServeError):
                arena.release(index)  # double release
            with pytest.raises(ServeError):
                arena.release(self.SLOTS - 1)  # never acquired

    def test_resize_bounds_concurrent_admission(self):
        with self._arena() as arena:
            assert arena.resize(2) == 2
            first, second = arena.acquire(timeout_s=0), arena.acquire(timeout_s=0)
            assert first is not None and second is not None
            assert arena.acquire(timeout_s=0) is None  # limit saturated
            # Shrinking below the current occupancy is allowed and simply
            # stops admitting until enough slots drain.
            assert arena.resize(1) == 1
            arena.release(first)
            assert arena.acquire(timeout_s=0) is None  # still 1 in use, limit 1
            arena.release(second)
            assert arena.acquire(timeout_s=0) is not None
            # Clamped into [1, slots].
            assert arena.resize(0) == 1
            assert arena.resize(99) == self.SLOTS

    def test_closed_arena_refuses_admission_and_wakes_waiters(self):
        arena = self._arena()
        for _ in range(self.SLOTS):
            assert arena.acquire(timeout_s=0) is not None
        results = []
        waiter = threading.Thread(
            target=lambda: results.append(arena.acquire(timeout_s=30.0)),
            name="shm-test-waiter",
            daemon=True,
        )
        waiter.start()
        time.sleep(0.05)  # let the waiter block on a fully-owned arena
        arena.close()
        waiter.join(timeout=30.0)
        assert not waiter.is_alive(), "close() must wake blocked acquirers"
        assert results == [None]
        assert arena.acquire(timeout_s=0) is None

    @needs_dev_shm
    def test_worker_side_views_alias_the_same_bytes(self):
        """An untracked attach sees exactly the bytes the parent wrote."""
        with self._arena() as arena:
            index = arena.acquire(timeout_s=0)
            payload = np.arange(6.0).reshape(2, 3)
            slot = arena.write_inputs(index, payload)
            segment = attach_untracked(arena.layout.name)
            try:
                inputs, outputs = arena.layout.slot_views(segment.buf, slot.index)
                assert np.array_equal(inputs[: slot.batch], payload)
                outputs[: slot.batch] = payload[:, :2] * 10.0
            finally:
                segment.close()
            assert np.array_equal(arena.read_outputs(slot), payload[:, :2] * 10.0)
            arena.release(index)


# ---------------------------------------------------------------------------
# cross-process bitwise equivalence
# ---------------------------------------------------------------------------


class TestCrossProcessBitwise:
    def test_shm_pool_matches_run_batch(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _pool(lenet_workload, executor="process:2", slot_batch=8) as pool:
            futures = [pool.submit(images[:5]), pool.submit(images[5:])]
            outputs = np.concatenate([f.result() for f in futures], axis=0)
            stats = pool.ipc_statistics()
        assert np.array_equal(outputs, direct)
        assert stats["mode"] == "shm" and stats["zero_copy_active"]
        assert stats["copy_bytes_avoided"] > 0
        assert stats["pickle_fallbacks"] == 0
        assert stats["slots_in_use"] == 0  # every slot released

    def test_oversized_batch_falls_back_to_pickle_bitwise(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _pool(lenet_workload, executor="process:1", slot_batch=2) as pool:
            outputs = pool.run_batch(images)  # 8 rows > 2-row slots
            stats = pool.ipc_statistics()
        assert np.array_equal(outputs, direct)
        assert stats["pickle_fallbacks"] == 1
        assert stats["slot_acquires"] == 0

    def test_resize_under_shm_stays_bitwise(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _pool(
            lenet_workload, executor="process:1", max_count=3, slot_batch=8
        ) as pool:
            assert np.array_equal(pool.run_batch(images), direct)
            assert pool.resize(3) == 3
            futures = [pool.submit(images[i : i + 3]) for i in (0, 3, 6)]
            grown = np.concatenate([f.result() for f in futures], axis=0)
            assert np.array_equal(grown, direct)
            assert pool.resize(1) == 1
            assert np.array_equal(pool.run_batch(images), direct)


# ---------------------------------------------------------------------------
# concurrent stress: many threads x process replicas, no torn reads
# ---------------------------------------------------------------------------


class TestConcurrentStress:
    THREADS = 6
    BATCHES_PER_THREAD = 3

    def test_many_threads_process_replicas_no_torn_reads(self, lenet_workload):
        """Every concurrently served batch must come back bitwise-correct.

        Each thread repeatedly serves a random (seeded) row subset; a torn
        read — a slot overwritten while a result was still being served, or
        two dispatches sharing a slot — would surface as a row mismatch
        against the direct reference outputs.
        """
        _, _, _, images, direct = lenet_workload
        failures: list = []
        with _pool(lenet_workload, executor="process:3", slot_batch=4) as pool:

            def hammer(thread_index: int) -> None:
                rng = random.Random(1000 + thread_index)
                try:
                    for _ in range(self.BATCHES_PER_THREAD):
                        rows = sorted(
                            rng.sample(range(len(images)), rng.randint(1, 4))
                        )
                        outputs = pool.submit(images[rows]).result(timeout=300.0)
                        if not np.array_equal(outputs, direct[rows]):
                            failures.append(
                                f"thread {thread_index}: torn read on rows {rows}"
                            )
                except Exception as error:  # surfaces in the main thread
                    failures.append(f"thread {thread_index}: {error!r}")

            threads = [
                threading.Thread(
                    target=hammer, args=(i,), name=f"shm-stress-{i}", daemon=True
                )
                for i in range(self.THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=600.0)
            assert not any(t.is_alive() for t in threads), "stress thread hung"
            stats = pool.ipc_statistics()
        assert not failures, "\n".join(failures)
        assert stats["slot_acquires"] == self.THREADS * self.BATCHES_PER_THREAD
        assert stats["slots_in_use"] == 0


# ---------------------------------------------------------------------------
# the spec payload cache (double-pickle fix)
# ---------------------------------------------------------------------------


class TestSpecSerializationCache:
    def test_spec_pickled_once_across_replica_restarts(self, lenet_workload):
        """Restarts reuse the cached payload: one serialization per pool, ever.

        Two injected crashes force two supervision restarts; before the fix
        every restart re-pickled the weight-laden spec through the fresh
        ``ProcessPoolExecutor`` initializer.
        """
        _, _, _, images, direct = lenet_workload
        before = spec_serialization_count()
        with _pool(
            lenet_workload,
            executor="process:1",
            slot_batch=8,
            fault_injector=FaultInjector(["crash:at=1", "crash:at=3"]),
            dispatch_timeout_s=120.0,
            max_attempts=3,
            backoff_base_s=0.0,
        ) as pool:
            for _ in range(3):
                assert np.array_equal(pool.run_batch(images), direct)
            restarts = pool.fault_statistics()["replica_restarts"]
        assert restarts == 2
        assert spec_serialization_count() - before == 1


# ---------------------------------------------------------------------------
# leak regression: /dev/shm must be clean after every way out
# ---------------------------------------------------------------------------


@needs_dev_shm
class TestLeakRegression:
    def test_clean_shutdown_unlinks_segment(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pool = _pool(lenet_workload, executor="process:1", slot_batch=8)
            try:
                segment = _segment_path(pool._arena)
                assert segment.exists(), "arena segment must be visible in /dev/shm"
                assert np.array_equal(pool.run_batch(images), direct)
            finally:
                pool.close()
            pool.close()  # idempotent: the unlink must not double-fire
        assert not segment.exists(), "clean shutdown leaked the segment"
        leaks = [w for w in caught if "shared_memory" in str(w.message).lower()]
        assert not leaks, f"resource-tracker warnings: {leaks}"

    def test_sigkill_mid_batch_leaves_no_segment(self, lenet_workload):
        """Chaos path: a worker SIGKILLed mid-batch must not leak the segment.

        The killed worker held an (untracked) attachment; the retry must
        still serve the batch bitwise from the still-live slot, and close()
        must still be the one and only unlink.
        """
        _, _, _, images, direct = lenet_workload
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pool = _pool(
                lenet_workload,
                executor="process:1",
                slot_batch=8,
                fault_injector=FaultInjector(["crash:at=1"]),
                dispatch_timeout_s=120.0,
                max_attempts=3,
                backoff_base_s=0.0,
            )
            try:
                segment = _segment_path(pool._arena)
                outputs = pool.run_batch(images)
                faults = pool.fault_statistics()
            finally:
                pool.close()
        assert np.array_equal(outputs, direct), "retry must re-read the live slot"
        assert faults["replica_restarts"] == 1
        assert not segment.exists(), "SIGKILL recovery leaked the segment"
        leaks = [w for w in caught if "shared_memory" in str(w.message).lower()]
        assert not leaks, f"resource-tracker warnings: {leaks}"

    def test_serve_cli_sigterm_drain_unlinks_segments(self, tmp_path):
        """The serve CLI under --ipc shm exits 0 on SIGTERM with /dev/shm clean."""
        before = _live_segments()
        ready_file = tmp_path / "serve-url.txt"
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(repo_root, "src"), env.get("PYTHONPATH")) if p
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--network", "lenet5", "--rows", "32", "--columns", "32",
                "--executor", "process:2", "--ipc", "shm",
                "--http", "0", "--ready-file", str(ready_file),
            ],
            cwd=repo_root, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if ready_file.exists() and ready_file.read_text().strip():
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.1)
            assert process.poll() is None, (
                f"serve exited early:\n{process.stdout.read()}"
            )
            process.send_signal(signal.SIGTERM)
            stdout, _ = process.communicate(timeout=120.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=30.0)
        assert process.returncode == 0, f"non-zero exit:\n{stdout}"
        assert "leaked" not in stdout.lower(), f"resource tracker complained:\n{stdout}"
        remaining = _live_segments() - before
        assert not remaining, f"SIGTERM drain leaked segments: {sorted(remaining)}"
