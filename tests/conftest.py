"""Shared fixtures for the test suite.

Heavy objects (ResNet-50 topology, its runtime/metrics on the paper's design
points) are session-scoped so the many tests that inspect them do not repeat
the simulation.
"""

from __future__ import annotations

import pytest

from repro.config import default_sweep_chip, optimal_chip, small_test_chip
from repro.core.simulation import SimulationFramework
from repro.nn import build_lenet5, build_resnet50
from repro.scalesim.simulator import simulate_network


# Markers (multicore / serving / docs / smoke) are registered centrally in
# pyproject.toml's [tool.pytest.ini_options], not here.


@pytest.fixture(scope="session")
def resnet50():
    """The paper's benchmark workload (ResNet-50 v1.5 shapes)."""
    return build_resnet50()


@pytest.fixture(scope="session")
def lenet():
    """A tiny CNN used where the workload content does not matter."""
    return build_lenet5()


@pytest.fixture(scope="session")
def optimal_config():
    """The Section VII optimised design point (128×128, dual core, batch 32)."""
    return optimal_chip()


@pytest.fixture(scope="session")
def sweep_config():
    """The Section VI-A default design point (32×32, dual core, batch 32)."""
    return default_sweep_chip()


@pytest.fixture(scope="session")
def tiny_config():
    """A deliberately small chip for fast unit tests."""
    return small_test_chip()


@pytest.fixture(scope="session")
def resnet_framework(resnet50):
    """A cached simulation framework over ResNet-50."""
    return SimulationFramework(resnet50)


@pytest.fixture(scope="session")
def optimal_runtime(resnet50, optimal_config):
    """ResNet-50 runtime specification on the optimal design point."""
    return simulate_network(resnet50, optimal_config)


@pytest.fixture(scope="session")
def optimal_metrics(resnet_framework, optimal_config):
    """Full metrics of ResNet-50 on the optimal design point."""
    return resnet_framework.evaluate(optimal_config)
