"""Shared fixtures for the test suite.

Heavy objects (ResNet-50 topology, its runtime/metrics on the paper's design
points) are session-scoped so the many tests that inspect them do not repeat
the simulation.
"""

from __future__ import annotations

import os

import pytest

from repro.config import default_sweep_chip, optimal_chip, small_test_chip
from repro.core.simulation import SimulationFramework
from repro.nn import build_lenet5, build_resnet50
from repro.scalesim.simulator import simulate_network


# Markers (multicore / serving / docs / smoke / chaos / analysis) are
# registered centrally in pyproject.toml's [tool.pytest.ini_options], not here.


@pytest.fixture(autouse=True)
def _lock_order_sanitizer():
    """Run every test under the concurrency sanitizer when REPRO_SANITIZE=1.

    With the env var set (the CI ``analysis`` lane reruns the ``serving`` and
    ``chaos`` lanes this way) all locks built via :mod:`repro.concurrency`
    come out instrumented, and any *new* lock-order cycle recorded during a
    test fails that test with the potential-deadlock report (both stacks).
    The lock-order graph accumulates across tests on purpose: an A→B edge
    from one test plus a B→A edge from another is still a real inversion in
    the codebase.
    """
    if os.environ.get("REPRO_SANITIZE", "").strip() in ("", "0"):
        yield
        return
    from repro.analysis import sanitizer

    sanitizer.enable()
    cycles_before = len(sanitizer.cycle_reports())
    yield
    new_cycles = sanitizer.cycle_reports()[cycles_before:]
    assert not new_cycles, "lock-order cycle(s) detected:\n" + "\n\n".join(
        cycle["message"] for cycle in new_cycles
    )


@pytest.fixture
def concurrency_sanitizer():
    """Opt-in sanitizer with a clean graph; disabled again on teardown."""
    from repro.analysis import sanitizer

    sanitizer.enable()
    sanitizer.reset()
    yield sanitizer
    sanitizer.disable()
    sanitizer.reset()


@pytest.fixture(scope="session")
def resnet50():
    """The paper's benchmark workload (ResNet-50 v1.5 shapes)."""
    return build_resnet50()


@pytest.fixture(scope="session")
def lenet():
    """A tiny CNN used where the workload content does not matter."""
    return build_lenet5()


@pytest.fixture(scope="session")
def optimal_config():
    """The Section VII optimised design point (128×128, dual core, batch 32)."""
    return optimal_chip()


@pytest.fixture(scope="session")
def sweep_config():
    """The Section VI-A default design point (32×32, dual core, batch 32)."""
    return default_sweep_chip()


@pytest.fixture(scope="session")
def tiny_config():
    """A deliberately small chip for fast unit tests."""
    return small_test_chip()


@pytest.fixture(scope="session")
def resnet_framework(resnet50):
    """A cached simulation framework over ResNet-50."""
    return SimulationFramework(resnet50)


@pytest.fixture(scope="session")
def optimal_runtime(resnet50, optimal_config):
    """ResNet-50 runtime specification on the optimal design point."""
    return simulate_network(resnet50, optimal_config)


@pytest.fixture(scope="session")
def optimal_metrics(resnet_framework, optimal_config):
    """Full metrics of ResNet-50 on the optimal design point."""
    return resnet_framework.evaluate(optimal_config)
