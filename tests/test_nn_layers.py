"""Unit tests for layer descriptors: shapes, MACs and weight counts."""

import pytest

from repro.errors import WorkloadError
from repro.nn import (
    ActivationLayer,
    AddLayer,
    BatchNormLayer,
    ConvLayer,
    DenseLayer,
    FlattenLayer,
    PoolLayer,
    TensorShape,
)


class TestTensorShape:
    def test_num_elements_and_bits(self):
        shape = TensorShape(56, 56, 64)
        assert shape.num_elements == 56 * 56 * 64
        assert shape.bits(6) == 6 * shape.num_elements

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(WorkloadError):
            TensorShape(0, 1, 1)

    def test_as_tuple(self):
        assert TensorShape(2, 3, 4).as_tuple() == (2, 3, 4)


class TestConvLayer:
    def test_same_padding_preserves_spatial_size_at_stride_one(self):
        layer = ConvLayer("c", out_channels=16, kernel_size=3, stride=1, padding="same")
        out = layer.output_shape(TensorShape(32, 32, 8))
        assert (out.height, out.width) == (32, 32)
        assert out.channels == 16

    def test_stride_two_halves_spatial_size(self):
        layer = ConvLayer("c", out_channels=16, kernel_size=3, stride=2, padding=1)
        out = layer.output_shape(TensorShape(56, 56, 8))
        assert (out.height, out.width) == (28, 28)

    def test_resnet_stem_shape(self):
        layer = ConvLayer("conv1", out_channels=64, kernel_size=7, stride=2, padding=3)
        out = layer.output_shape(TensorShape(224, 224, 3))
        assert (out.height, out.width, out.channels) == (112, 112, 64)

    def test_mac_count_formula(self):
        layer = ConvLayer("c", out_channels=4, kernel_size=3, stride=1, padding=1, bias=False)
        shape = TensorShape(8, 8, 2)
        assert layer.macs(shape) == 8 * 8 * 4 * 3 * 3 * 2

    def test_weight_count_with_and_without_bias(self):
        shape = TensorShape(8, 8, 2)
        with_bias = ConvLayer("c", out_channels=4, kernel_size=3, bias=True)
        without_bias = ConvLayer("c", out_channels=4, kernel_size=3, bias=False)
        assert with_bias.weight_count(shape) == 4 * 2 * 9 + 4
        assert without_bias.weight_count(shape) == 4 * 2 * 9

    def test_depthwise_convolution_macs(self):
        shape = TensorShape(16, 16, 8)
        depthwise = ConvLayer("dw", out_channels=8, kernel_size=3, groups=8, bias=False)
        dense = ConvLayer("c", out_channels=8, kernel_size=3, groups=1, bias=False)
        assert depthwise.macs(shape) == dense.macs(shape) // 8

    def test_group_mismatch_raises(self):
        layer = ConvLayer("c", out_channels=4, kernel_size=3, groups=3)
        with pytest.raises(WorkloadError):
            layer.output_shape(TensorShape(8, 8, 4))

    def test_uses_crossbar_flag(self):
        assert ConvLayer("c", 4, 3).uses_crossbar
        assert DenseLayer("d", 4).uses_crossbar
        assert not PoolLayer("p", 2).uses_crossbar

    def test_too_large_kernel_raises(self):
        layer = ConvLayer("c", out_channels=4, kernel_size=9, padding=0)
        with pytest.raises(WorkloadError):
            layer.output_shape(TensorShape(4, 4, 1))

    def test_invalid_parameters_raise(self):
        with pytest.raises(WorkloadError):
            ConvLayer("c", out_channels=0, kernel_size=3)
        with pytest.raises(WorkloadError):
            ConvLayer("c", out_channels=4, kernel_size=3, stride=0)
        with pytest.raises(WorkloadError):
            ConvLayer("c", out_channels=4, kernel_size=3, padding=-1)


class TestDenseLayer:
    def test_output_shape_and_macs(self):
        layer = DenseLayer("fc", out_features=10, bias=False)
        shape = TensorShape(1, 1, 128)
        assert layer.output_shape(shape).channels == 10
        assert layer.macs(shape) == 1280
        assert layer.weight_count(shape) == 1280

    def test_bias_adds_parameters(self):
        layer = DenseLayer("fc", out_features=10, bias=True)
        assert layer.weight_count(TensorShape(1, 1, 128)) == 1290


class TestOtherLayers:
    def test_pool_layer_shapes(self):
        pool = PoolLayer("p", kernel_size=2, stride=2)
        out = pool.output_shape(TensorShape(32, 32, 16))
        assert (out.height, out.width, out.channels) == (16, 16, 16)

    def test_global_pool_collapses_spatial_dims(self):
        pool = PoolLayer("gap", kernel_size=1, kind="avg", global_pool=True)
        out = pool.output_shape(TensorShape(7, 7, 2048))
        assert (out.height, out.width, out.channels) == (1, 1, 2048)

    def test_pool_rejects_unknown_kind(self):
        with pytest.raises(WorkloadError):
            PoolLayer("p", kernel_size=2, kind="median")

    def test_batchnorm_preserves_shape_and_counts_params(self):
        bn = BatchNormLayer("bn")
        shape = TensorShape(8, 8, 32)
        assert bn.output_shape(shape) == shape
        assert bn.weight_count(shape) == 64

    def test_activation_and_add_preserve_shape(self):
        shape = TensorShape(8, 8, 32)
        assert ActivationLayer("relu").output_shape(shape) == shape
        assert AddLayer("add").output_shape(shape) == shape

    def test_flatten(self):
        out = FlattenLayer("flat").output_shape(TensorShape(7, 7, 512))
        assert (out.height, out.width, out.channels) == (1, 1, 7 * 7 * 512)

    def test_layer_requires_name(self):
        with pytest.raises(WorkloadError):
            ConvLayer("", 4, 3)
