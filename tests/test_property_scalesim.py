"""Property-based tests for the tiling, traffic and latency models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChipConfig, SramConfig
from repro.nn import ConvLayer, Network, TensorShape
from repro.nn.im2col import GemmShape, conv_to_gemm
from repro.scalesim.latency import compute_layer_latency
from repro.scalesim.tiling import GemmTiling
from repro.scalesim.traffic import compute_layer_traffic

gemm_strategy = st.builds(
    GemmShape,
    layer_name=st.just("layer"),
    m=st.integers(1, 5000),
    k=st.integers(1, 3000),
    n=st.integers(1, 3000),
)

array_dim = st.sampled_from([8, 16, 32, 64, 128, 256])


class TestTilingProperties:
    @given(gemm_strategy, array_dim, array_dim)
    @settings(max_examples=100, deadline=None)
    def test_tiles_cover_the_weight_matrix(self, gemm, rows, columns):
        tiling = GemmTiling(gemm=gemm, rows=rows, columns=columns)
        assert tiling.k_tiles * rows >= gemm.k
        assert tiling.n_tiles * columns >= gemm.n
        assert (tiling.k_tiles - 1) * rows < gemm.k
        assert (tiling.n_tiles - 1) * columns < gemm.n

    @given(gemm_strategy, array_dim, array_dim, st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_utilisation_and_cycles_invariants(self, gemm, rows, columns, batch):
        tiling = GemmTiling(gemm=gemm, rows=rows, columns=columns)
        assert 0.0 < tiling.cell_utilization <= 1.0
        assert 0.0 < tiling.mac_utilization(batch) <= 1.0
        assert tiling.compute_cycles(batch) == batch * tiling.compute_cycles(1)
        # Real MACs never exceed what the array could do in those cycles.
        assert gemm.macs * batch <= tiling.compute_cycles(batch) * rows * columns

    @given(gemm_strategy, array_dim, array_dim)
    @settings(max_examples=100, deadline=None)
    def test_programmed_cells_never_exceed_allocated(self, gemm, rows, columns):
        tiling = GemmTiling(gemm=gemm, rows=rows, columns=columns)
        assert tiling.programmed_cells <= tiling.allocated_cells


class TestLatencyProperties:
    @given(gemm_strategy, array_dim, array_dim, st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_dual_core_never_slower_and_both_exceed_compute_time(
        self, gemm, rows, columns, batch
    ):
        tiling = GemmTiling(gemm=gemm, rows=rows, columns=columns)
        single_cfg = ChipConfig(rows=rows, columns=columns, batch_size=batch, num_cores=1)
        dual_cfg = ChipConfig(rows=rows, columns=columns, batch_size=batch, num_cores=2)
        single = compute_layer_latency("l", tiling, single_cfg)
        dual = compute_layer_latency("l", tiling, dual_cfg)
        assert dual.latency_s <= single.latency_s * (1 + 1e-12)
        assert single.latency_s >= single.compute_time_s
        assert dual.latency_s >= dual.compute_time_s
        # Dual core can at best halve the latency.
        assert dual.latency_s >= 0.5 * single.latency_s * (1 - 1e-12)


class TestTrafficProperties:
    @given(
        st.integers(4, 64),   # feature map size
        st.integers(1, 32),   # input channels
        st.integers(1, 64),   # output channels
        array_dim,
        array_dim,
        st.integers(1, 32),   # batch
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_traffic_is_non_negative_and_scales_sensibly(
        self, size, in_channels, out_channels, rows, columns, batch, first_layer
    ):
        layer = ConvLayer("conv", out_channels=out_channels, kernel_size=3, padding=1, bias=False)
        network = Network("n", TensorShape(size, size, in_channels), [layer])
        info = network.shape_infos[0]
        gemm = conv_to_gemm(layer, info.input_shape)
        config = ChipConfig(
            rows=rows,
            columns=columns,
            batch_size=batch,
            sram=SramConfig(input_mb=1.0, filter_mb=0.5, output_mb=0.25, accumulator_mb=0.25),
        )
        tiling = GemmTiling(gemm=gemm, rows=rows, columns=columns)
        traffic = compute_layer_traffic(info, gemm, tiling, config, first_layer)

        assert traffic.sram_bits >= 0 and traffic.dram_bits >= 0
        # Weights must be read from DRAM at least once per batch.
        assert traffic.dram_read_bits >= gemm.weight_elements * 6
        # Input SRAM is read at least as much as the im2col stream of one pass.
        assert traffic.input_sram_read_bits >= gemm.input_elements * 6 * batch
        # Accumulator writes cover every partial sum.
        assert traffic.accumulator_sram_write_bits == pytest.approx(
            gemm.output_elements * batch * tiling.k_tiles * 24
        )

    @given(st.integers(1, 16), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_bigger_input_sram_never_increases_dram_traffic(self, batch, columns_factor):
        layer = ConvLayer("conv", out_channels=64, kernel_size=3, padding=1, bias=False)
        network = Network("n", TensorShape(32, 32, 16), [layer])
        info = network.shape_infos[0]
        gemm = conv_to_gemm(layer, info.input_shape)
        columns = 8 * columns_factor
        tiling = GemmTiling(gemm=gemm, rows=64, columns=columns)

        def dram_bits(input_mb):
            config = ChipConfig(
                rows=64,
                columns=columns,
                batch_size=batch,
                sram=SramConfig(
                    input_mb=input_mb, filter_mb=0.5, output_mb=0.25, accumulator_mb=0.25
                ),
            )
            return compute_layer_traffic(info, gemm, tiling, config, False).dram_bits

        assert dram_bits(8.0) <= dram_bits(0.05) + 1e-6
