"""Integration tests asserting the paper's qualitative results (Sections VI-VII).

These are the acceptance checks of the reproduction: every trend and headline
claim of the paper's evaluation must hold in *shape* — who wins, by roughly
what factor, where peaks and crossovers fall — even though absolute numbers
come from our own device models rather than the authors' internal tool.
"""

import pytest

from repro.analysis.fig6_array_sweep import generate_fig6_array_sweep, peak_point
from repro.analysis.fig7_sram_batch import (
    critical_sram_size_mb,
    generate_fig7a_batch_power,
    generate_fig7b_sram_ipsw,
    generate_fig7c_dual_core_ips,
)
from repro.analysis.table1 import generate_table1
from repro.analysis.trends import array_size_trend, dual_vs_single_core_trend
from repro.config import default_sweep_chip


class TestTable1Headline:
    """Section VII: similar IPS to A100 at >10x lower power and >3x lower area."""

    def test_ips_comparable_to_a100(self, optimal_metrics):
        assert 0.6 * 29_733 < optimal_metrics.inferences_per_second < 2.0 * 29_733

    def test_power_an_order_of_magnitude_below_a100(self, optimal_metrics):
        assert optimal_metrics.power_w < 60.0
        assert 396.0 / optimal_metrics.power_w > 10.0

    def test_area_several_times_below_a100(self, optimal_metrics):
        assert 826.0 / optimal_metrics.area_mm2 > 3.0

    def test_ips_per_watt_order_of_magnitude(self, optimal_metrics):
        # Paper: 1196 IPS/W (vs 75 for the A100).
        assert 400 < optimal_metrics.ips_per_watt < 3000

    def test_table1_generator_consistent_with_metrics(self, resnet50, optimal_config, resnet_framework):
        table = generate_table1(network=resnet50, config=optimal_config, framework=resnet_framework)
        this_work = table["rows"][0]
        assert this_work["ips"] == pytest.approx(
            resnet_framework.evaluate(optimal_config).inferences_per_second
        )


class TestFig8Breakdowns:
    """Section VII / Fig. 8: DRAM dominates power, SRAM dominates area."""

    def test_dram_dominates_power(self, optimal_metrics):
        assert optimal_metrics.power_breakdown.dominant_component() == "dram"
        assert optimal_metrics.power_breakdown.component("dram") > 0.3 * optimal_metrics.power_w

    def test_sram_dominates_area(self, optimal_metrics):
        assert optimal_metrics.area_breakdown.dominant_component() == "sram"


class TestSectionVIA1DualCore:
    """Dual core raises IPS and power together; IPS/W stays put."""

    @pytest.fixture(scope="class")
    def trend(self, resnet50, resnet_framework):
        return dual_vs_single_core_trend(
            network=resnet50, config=default_sweep_chip(), framework=resnet_framework
        )

    def test_dual_core_raises_ips(self, trend):
        assert trend["ips_gain"] > 1.0

    def test_dual_core_raises_power(self, trend):
        assert trend["power_increase"] > 1.0

    def test_ips_per_watt_unchanged_within_ten_percent(self, trend):
        assert trend["ips_per_watt_ratio"] == pytest.approx(1.0, rel=0.10)


class TestSectionVIA2ArraySize:
    """IPS grows ~linearly with array cells; IPS/W peaks at intermediate sizes."""

    @pytest.fixture(scope="class")
    def trend_rows(self, resnet50, resnet_framework):
        return array_size_trend(
            network=resnet50,
            base_config=default_sweep_chip(),
            sizes=(16, 32, 64, 128, 256),
            framework=resnet_framework,
        )

    def test_ips_increases_monotonically_with_array_size(self, trend_rows):
        ips = [row["ips"] for row in trend_rows]
        assert ips == sorted(ips)

    def test_ips_growth_is_roughly_linear_in_cells(self, trend_rows):
        first, last = trend_rows[0], trend_rows[-1]
        cells_ratio = last["array_cells"] / first["array_cells"]
        ips_ratio = last["ips"] / first["ips"]
        # Sub-linear because of padding, but within ~5x of the cell ratio and
        # far above what constant IPS would give.
        assert cells_ratio / 5 < ips_ratio <= cells_ratio * 1.05

    def test_ips_per_watt_peaks_at_intermediate_size(self, trend_rows):
        efficiency = {int(row["size"]): row["ips_per_watt"] for row in trend_rows}
        peak_size = max(efficiency, key=efficiency.get)
        # Paper: peak at 128-256 rows and 64-128 columns for square sweeps,
        # i.e. NOT at the smallest array.
        assert peak_size >= 64

    def test_laser_power_grows_superlinearly(self, trend_rows):
        laser = [row["laser_electrical_w"] for row in trend_rows]
        assert laser[-1] / laser[0] > (trend_rows[-1]["array_cells"] / trend_rows[0]["array_cells"])

    def test_fig6_peak_in_paper_band(self, resnet50, resnet_framework):
        rows = generate_fig6_array_sweep(
            network=resnet50,
            base_config=default_sweep_chip(),
            rows_values=(32, 64, 128, 256),
            columns_values=(32, 64, 128, 256),
            framework=resnet_framework,
        )
        best = peak_point(rows)
        assert 64 <= best["rows"] <= 256
        assert 32 <= best["columns"] <= 256


class TestSectionVIA3BatchAndSram:
    """Fig. 7: DRAM rises steeply past batch 32; critical SRAM size per batch."""

    def test_dram_power_rise_accelerates_between_batch_32_and_64(
        self, resnet50, resnet_framework
    ):
        rows = generate_fig7a_batch_power(
            network=resnet50,
            base_config=default_sweep_chip(),
            batch_sizes=(8, 16, 32, 64, 128),
            framework=resnet_framework,
        )
        dram = {int(row["batch_size"]): row["dram_power_w"] for row in rows}
        efficiency = {int(row["batch_size"]): row["ips_per_watt"] for row in rows}
        jump_32_to_64 = dram[64] / dram[32]
        jump_16_to_32 = dram[32] / dram[16]
        # Once the batched working set stops fitting the 26.3 MB input SRAM the
        # DRAM power growth accelerates (the Fig. 7a knee) ...
        assert jump_32_to_64 > jump_16_to_32
        assert jump_32_to_64 > 1.2
        # ... which is why batch 32 is the IPS/W sweet spot the paper picks.
        assert max(efficiency, key=efficiency.get) == 32

    def test_critical_input_sram_grows_with_batch(self, resnet50, resnet_framework):
        rows = generate_fig7b_sram_ipsw(
            network=resnet50,
            base_config=default_sweep_chip(),
            input_sram_mb_values=(4.0, 8.0, 16.0, 26.3, 48.0),
            batch_sizes=(16, 64),
            framework=resnet_framework,
        )
        assert critical_sram_size_mb(rows, 16) <= critical_sram_size_mb(rows, 64)

    def test_more_sram_beyond_critical_size_does_not_help(self, resnet50, resnet_framework):
        rows = generate_fig7b_sram_ipsw(
            network=resnet50,
            base_config=default_sweep_chip(),
            input_sram_mb_values=(26.3, 48.0, 64.0),
            batch_sizes=(32,),
            framework=resnet_framework,
        )
        values = [row["ips_per_watt"] for row in rows]
        assert max(values) / min(values) < 1.05

    def test_dual_core_ips_advantage_largest_at_small_batch(self, resnet50, resnet_framework):
        rows = generate_fig7c_dual_core_ips(
            network=resnet50,
            base_config=default_sweep_chip(),
            batch_sizes=(1, 4, 32),
            framework=resnet_framework,
        )
        by_key = {(int(r["num_cores"]), int(r["batch_size"])): r["ips"] for r in rows}
        gain_small_batch = by_key[(2, 1)] / by_key[(1, 1)]
        gain_large_batch = by_key[(2, 32)] / by_key[(1, 32)]
        assert gain_small_batch > gain_large_batch
        assert gain_small_batch > 1.1
