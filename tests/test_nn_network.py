"""Unit tests for the Network container and shape resolution."""

import pytest

from repro.errors import WorkloadError
from repro.nn import ConvLayer, DenseLayer, FlattenLayer, Network, PoolLayer, TensorShape
from repro.nn.layers import AddLayer


def small_network() -> Network:
    layers = [
        ConvLayer("conv1", out_channels=8, kernel_size=3, stride=1, padding=1, bias=False),
        PoolLayer("pool1", kernel_size=2, stride=2),
        ConvLayer("conv2", out_channels=16, kernel_size=3, stride=1, padding=1, bias=False),
        FlattenLayer("flatten"),
        DenseLayer("fc", out_features=10, bias=False),
    ]
    return Network("small", TensorShape(8, 8, 3), layers)


class TestNetworkShapes:
    def test_shapes_chain_through_layers(self):
        net = small_network()
        infos = net.shape_infos
        assert infos[0].output_shape.as_tuple() == (8, 8, 8)
        assert infos[1].output_shape.as_tuple() == (4, 4, 8)
        assert infos[2].output_shape.as_tuple() == (4, 4, 16)
        assert net.output_shape.as_tuple() == (1, 1, 10)

    def test_total_macs_is_sum_of_layer_macs(self):
        net = small_network()
        assert net.total_macs == sum(info.macs for info in net.shape_infos)
        assert net.total_macs > 0

    def test_crossbar_layers_excludes_pool_and_flatten(self):
        net = small_network()
        names = [info.name for info in net.crossbar_layers]
        assert names == ["conv1", "conv2", "fc"]

    def test_layer_info_lookup(self):
        net = small_network()
        assert net.layer_info("conv2").input_shape.as_tuple() == (4, 4, 8)
        with pytest.raises(WorkloadError):
            net.layer_info("missing")

    def test_len_and_iteration(self):
        net = small_network()
        assert len(net) == 5
        assert len(list(net)) == 5

    def test_summary_and_layer_table(self):
        net = small_network()
        summary = net.summary()
        assert summary["num_crossbar_layers"] == 3
        table = net.layer_table()
        assert len(table) == 5
        assert table[0][0] == "conv1"

    def test_largest_activation_scales_with_batch(self):
        net = small_network()
        assert net.largest_activation_bits(6, batch_size=4) == 4 * net.largest_activation_bits(6, 1)

    def test_total_weight_bits(self):
        net = small_network()
        assert net.total_weight_bits(6) == 6 * net.total_weights


class TestBranchInputs:
    def test_input_from_references_earlier_layer(self):
        main = ConvLayer("main", out_channels=8, kernel_size=3, padding=1, bias=False)
        branch = ConvLayer("branch", out_channels=8, kernel_size=1, bias=False)
        branch.input_from = "main"
        add = AddLayer("add")
        add.input_from = "branch"
        net = Network("branched", TensorShape(8, 8, 4), [main, branch, add])
        assert net.layer_info("branch").input_shape.channels == 8

    def test_forward_reference_is_rejected(self):
        first = ConvLayer("first", out_channels=8, kernel_size=3, padding=1)
        first.input_from = "later"
        later = ConvLayer("later", out_channels=8, kernel_size=3, padding=1)
        with pytest.raises(WorkloadError):
            Network("bad", TensorShape(8, 8, 3), [first, later])


class TestNetworkValidation:
    def test_duplicate_names_rejected(self):
        layers = [
            ConvLayer("conv", out_channels=8, kernel_size=3),
            ConvLayer("conv", out_channels=8, kernel_size=3),
        ]
        with pytest.raises(WorkloadError):
            Network("dup", TensorShape(8, 8, 3), layers)

    def test_empty_network_rejected(self):
        with pytest.raises(WorkloadError):
            Network("empty", TensorShape(8, 8, 3), [])

    def test_shape_error_mentions_layer_name(self):
        layers = [ConvLayer("too_big", out_channels=8, kernel_size=11, padding=0)]
        with pytest.raises(WorkloadError, match="too_big"):
            Network("bad", TensorShape(4, 4, 3), layers)
