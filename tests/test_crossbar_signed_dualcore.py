"""Unit tests for signed GEMM execution and the dual-core scheduler."""

import numpy as np
import pytest

from repro.crossbar import DualCoreCrossbar, ProgrammingJob, SignedCrossbarEngine
from repro.errors import SimulationError


class TestSignedCrossbarEngine:
    def test_signed_matvec_approximates_reference(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(0, 1, (32, 16))
        inputs = rng.uniform(0, 1, 32)  # ReLU-style non-negative inputs
        engine = SignedCrossbarEngine(32, 16)
        engine.program(weights)
        result = engine.matvec(inputs)
        reference = weights.T @ inputs
        scale = np.max(np.abs(reference))
        assert np.max(np.abs(result - reference)) / scale < 0.2

    def test_signed_inputs_are_supported(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(0, 1, (16, 8))
        inputs = rng.normal(0, 1, 16)
        engine = SignedCrossbarEngine(16, 8)
        engine.program(weights)
        result = engine.matvec(inputs)
        reference = weights.T @ inputs
        correlation = np.corrcoef(result, reference)[0, 1]
        assert correlation > 0.98

    def test_zero_input_returns_zero(self):
        engine = SignedCrossbarEngine(8, 4)
        engine.program(np.ones((8, 4)))
        assert np.allclose(engine.matvec(np.zeros(8)), 0.0)

    def test_matmul_shape(self):
        rng = np.random.default_rng(2)
        engine = SignedCrossbarEngine(8, 4)
        engine.program(rng.normal(size=(8, 4)))
        outputs = engine.matmul(rng.uniform(0, 1, (5, 8)))
        assert outputs.shape == (5, 4)

    def test_statistics_count_both_arrays(self):
        engine = SignedCrossbarEngine(4, 4)
        engine.program(np.zeros((4, 4)))
        stats = engine.statistics()
        assert stats["programming_events"] == 2

    def test_requires_programming_before_matvec(self):
        engine = SignedCrossbarEngine(4, 4)
        with pytest.raises(SimulationError):
            engine.matvec(np.zeros(4))

    def test_shape_validation(self):
        engine = SignedCrossbarEngine(4, 4)
        with pytest.raises(SimulationError):
            engine.program(np.zeros((3, 4)))
        engine.program(np.zeros((4, 4)))
        with pytest.raises(SimulationError):
            engine.matvec(np.zeros(5))
        with pytest.raises(SimulationError):
            engine.matmul(np.zeros((3, 5)))

    def test_matmul_requires_programming(self):
        engine = SignedCrossbarEngine(4, 4)
        with pytest.raises(SimulationError):
            engine.matmul(np.zeros((2, 4)))


class TestSignedBatchedMatmul:
    """The batched signed GEMM must reproduce the per-vector path exactly."""

    def _programmed_engine(self, rows=16, columns=12, seed=0):
        rng = np.random.default_rng(seed)
        engine = SignedCrossbarEngine(rows, columns)
        engine.program(rng.normal(size=(rows, columns)))
        return engine, rng

    def test_mixed_sign_batch_matches_per_vector_matvec(self):
        engine, rng = self._programmed_engine()
        inputs = rng.normal(size=(17, 16))
        batched = engine.matmul(inputs)
        per_vector = np.stack([engine.matvec(vector) for vector in inputs])
        assert np.array_equal(batched, per_vector)

    def test_zero_vectors_inside_batch_produce_exact_zeros(self):
        engine, rng = self._programmed_engine(seed=1)
        inputs = rng.normal(size=(6, 16))
        inputs[0] = 0.0
        inputs[3] = 0.0
        outputs = engine.matmul(inputs)
        assert np.array_equal(outputs[0], np.zeros(12))
        assert np.array_equal(outputs[3], np.zeros(12))
        # Per-vector input scales: the non-zero rows must be unaffected by the
        # zero rows sharing the batch.
        alone = engine.matmul(inputs[1:2])
        assert np.array_equal(outputs[1], alone[0])

    def test_all_zero_batch_short_circuits(self):
        engine, _ = self._programmed_engine(seed=2)
        outputs = engine.matmul(np.zeros((4, 16)))
        assert outputs.shape == (4, 12)
        assert np.array_equal(outputs, np.zeros((4, 12)))

    def test_per_vector_scales_are_independent(self):
        engine, rng = self._programmed_engine(seed=3)
        small = rng.uniform(0, 0.01, 16)
        large = rng.uniform(0, 100.0, 16)
        batched = engine.matmul(np.stack([small, large]))
        assert np.array_equal(batched[0], engine.matvec(small))
        assert np.array_equal(batched[1], engine.matvec(large))

    def test_nonnegative_batch_skips_negative_passes(self):
        engine, rng = self._programmed_engine(seed=4)
        inputs = rng.uniform(0, 1, (8, 16))
        counting = {"calls": 0}
        original = engine.positive_array.matmul

        def spy(batch, **kwargs):
            counting["calls"] += 1
            return original(batch, **kwargs)

        engine.positive_array.matmul = spy
        engine.matmul(inputs)
        # One positive pass only (plus the matching negative-array pass).
        assert counting["calls"] == 1


class TestDualCoreScheduler:
    def make_jobs(self, count=8, programming=100e-9, compute=300e-9):
        return [
            ProgrammingJob(f"tile{i}", programming_time_s=programming, compute_time_s=compute)
            for i in range(count)
        ]

    def test_single_core_makespan_is_sum_of_all_phases(self):
        jobs = self.make_jobs(4)
        scheduler = DualCoreCrossbar(1)
        assert scheduler.makespan_s(jobs) == pytest.approx(4 * (100e-9 + 300e-9))

    def test_dual_core_hides_programming_when_compute_dominates(self):
        jobs = self.make_jobs(8, programming=100e-9, compute=400e-9)
        makespan = DualCoreCrossbar(2).makespan_s(jobs)
        # Only the first programming pass is exposed.
        assert makespan == pytest.approx(100e-9 + 8 * 400e-9)

    def test_dual_core_bound_by_programming_when_it_dominates(self):
        jobs = self.make_jobs(8, programming=500e-9, compute=100e-9)
        makespan = DualCoreCrossbar(2).makespan_s(jobs)
        single = DualCoreCrossbar(1).makespan_s(jobs)
        assert makespan < single
        # Each core programs every other tile, so programming of consecutive
        # tiles overlaps and the makespan approaches half the programming sum.
        assert makespan >= 8 / 2 * 500e-9

    def test_speedup_between_one_and_two(self):
        jobs = self.make_jobs(16, programming=200e-9, compute=200e-9)
        speedup = DualCoreCrossbar.speedup(jobs)
        assert 1.0 <= speedup <= 2.0 + 1e-9

    def test_dual_core_never_slower(self):
        rng = np.random.default_rng(3)
        jobs = [
            ProgrammingJob(f"t{i}", float(rng.uniform(0, 1e-6)), float(rng.uniform(0, 1e-6)))
            for i in range(20)
        ]
        assert DualCoreCrossbar(2).makespan_s(jobs) <= DualCoreCrossbar(1).makespan_s(jobs) + 1e-15

    def test_utilisation_higher_for_dual_core_when_programming_matters(self):
        jobs = self.make_jobs(8, programming=300e-9, compute=300e-9)
        summary = DualCoreCrossbar.summarize(jobs)
        assert summary["dual_core_utilisation"] >= summary["single_core_utilisation"]
        assert summary["speedup"] > 1.5

    def test_schedule_entries_are_ordered_and_non_overlapping_per_core(self):
        jobs = self.make_jobs(6)
        entries = DualCoreCrossbar(2).schedule(jobs)
        for core in (0, 1):
            core_entries = sorted(
                (e for e in entries if e.core == core), key=lambda e: e.start_s
            )
            for earlier, later in zip(core_entries, core_entries[1:]):
                assert later.start_s >= earlier.end_s - 1e-15

    def test_compute_follows_programming_for_each_job(self):
        jobs = self.make_jobs(5)
        entries = DualCoreCrossbar(2).schedule(jobs)
        by_job = {}
        for entry in entries:
            by_job.setdefault(entry.job_name, {})[entry.kind] = entry
        for phases in by_job.values():
            assert phases["compute"].start_s >= phases["program"].end_s - 1e-15

    def test_validation(self):
        with pytest.raises(SimulationError):
            DualCoreCrossbar(3)
        with pytest.raises(SimulationError):
            DualCoreCrossbar(2).schedule([])
        with pytest.raises(SimulationError):
            ProgrammingJob("bad", -1.0, 1.0)
