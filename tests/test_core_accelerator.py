"""Tests for the OpticalCrossbarAccelerator façade (performance + functional paths)."""

import numpy as np
import pytest

from repro import OpticalCrossbarAccelerator, small_test_chip
from repro.errors import SimulationError
from repro.nn import build_lenet5
from repro.nn.im2col import conv2d_reference


class TestPerformancePath:
    def test_default_configuration_is_the_paper_optimum(self):
        accelerator = OpticalCrossbarAccelerator()
        assert accelerator.config.rows == 128
        assert accelerator.config.columns == 128
        assert accelerator.config.is_dual_core

    def test_evaluate_returns_full_metrics(self, resnet50, optimal_config):
        accelerator = OpticalCrossbarAccelerator(optimal_config)
        metrics = accelerator.evaluate(resnet50)
        assert metrics.inferences_per_second > 0
        assert metrics.power_w > 0
        assert metrics.area_mm2 > 0

    def test_runtime_specs_accessible(self, optimal_config):
        accelerator = OpticalCrossbarAccelerator(optimal_config)
        runtime = accelerator.runtime_specs(build_lenet5())
        assert runtime.total_compute_cycles > 0

    def test_peak_tops_and_describe(self, optimal_config):
        accelerator = OpticalCrossbarAccelerator(optimal_config)
        description = accelerator.describe()
        assert description["peak_tops"] == pytest.approx(optimal_config.peak_tops)
        assert description["rows"] == 128


class TestFunctionalPath:
    @pytest.fixture()
    def accelerator(self):
        return OpticalCrossbarAccelerator(small_test_chip())

    def test_linear_single_vector(self, accelerator):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(12, 5))
        vector = rng.uniform(0, 1, 12)
        result = accelerator.linear(weights, vector)
        reference = vector @ weights
        assert result.shape == (5,)
        # INT6 quantisation of weights/inputs/outputs on a tiny 8x8 tile leaves
        # a few percent of error; correlation with the exact result stays high.
        assert np.corrcoef(result, reference)[0, 1] > 0.95

    def test_linear_matrix_input_tiles_over_large_weights(self, accelerator):
        rng = np.random.default_rng(1)
        # 20x11 weights force tiling on the 8x8 test chip.
        weights = rng.normal(size=(20, 11))
        inputs = rng.uniform(0, 1, (6, 20))
        result = accelerator.linear(weights, inputs)
        reference = inputs @ weights
        assert result.shape == (6, 11)
        relative_error = np.linalg.norm(result - reference) / np.linalg.norm(reference)
        assert relative_error < 0.15

    def test_conv2d_matches_reference_convolution(self, accelerator):
        rng = np.random.default_rng(2)
        fmap = rng.uniform(0, 1, (6, 6, 3))
        weights = rng.normal(size=(3, 3, 3, 4))
        optical = accelerator.conv2d(fmap, weights, stride=1, padding=1)
        reference = conv2d_reference(fmap, weights, stride=1, padding=1)
        assert optical.shape == reference.shape
        correlation = np.corrcoef(optical.ravel(), reference.ravel())[0, 1]
        assert correlation > 0.98

    def test_linear_shape_validation(self, accelerator):
        with pytest.raises(SimulationError):
            accelerator.linear(np.zeros((4, 4)), np.zeros(5))
        with pytest.raises(SimulationError):
            accelerator.linear(np.zeros(4), np.zeros(4))

    def test_conv2d_rejects_non_square_kernels(self, accelerator):
        with pytest.raises(SimulationError, match="square kernels"):
            accelerator.conv2d(np.zeros((6, 6, 2)), np.zeros((3, 2, 2, 4)))

    def test_conv2d_rejects_non_4d_weights(self, accelerator):
        with pytest.raises(SimulationError, match="k, k, C_in, C_out"):
            accelerator.conv2d(np.zeros((6, 6, 2)), np.zeros((3, 3, 2)))

    def test_conv2d_rejects_2d_feature_map(self, accelerator):
        with pytest.raises(SimulationError, match="feature_map"):
            accelerator.conv2d(np.zeros((6, 6)), np.zeros((3, 3, 2, 4)))

    def test_conv2d_rejects_5d_feature_map(self, accelerator):
        with pytest.raises(SimulationError, match="feature_map"):
            accelerator.conv2d(np.zeros((2, 2, 6, 6, 2)), np.zeros((3, 3, 2, 4)))

    def test_conv2d_rejects_channel_mismatch(self, accelerator):
        with pytest.raises(SimulationError, match="channels"):
            accelerator.conv2d(np.zeros((6, 6, 3)), np.zeros((3, 3, 2, 4)))

    def test_conv2d_batched_matches_per_image(self, accelerator):
        rng = np.random.default_rng(3)
        fmaps = rng.uniform(0, 1, (3, 6, 6, 2))
        weights = rng.normal(size=(3, 3, 2, 4))
        batched = accelerator.conv2d(fmaps, weights, stride=1, padding=1)
        assert batched.shape == (3, 6, 6, 4)
        for i in range(3):
            per_image = accelerator.conv2d(fmaps[i], weights, stride=1, padding=1)
            assert np.array_equal(batched[i], per_image)


class TestProgrammedTileCache:
    @pytest.fixture()
    def accelerator(self):
        return OpticalCrossbarAccelerator(small_test_chip())

    def test_repeated_linear_programs_each_tile_once(self, accelerator):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(20, 11))  # 3 x 2 tile grid on the 8x8 chip
        inputs = rng.uniform(0, 1, (4, 20))
        first = accelerator.linear(weights, inputs)
        events_after_first = accelerator.functional_statistics()["programming_events"]
        # 6 tiles x 2 arrays (positive/negative) per signed engine.
        assert events_after_first == 12
        for _ in range(5):
            again = accelerator.linear(weights, inputs)
            assert np.array_equal(again, first)
        stats = accelerator.functional_statistics()
        assert stats["programming_events"] == events_after_first
        assert stats["tile_cache_hits"] == 5
        assert stats["tile_cache_misses"] == 1

    def test_interleaved_layers_keep_correct_results(self, accelerator):
        rng = np.random.default_rng(1)
        weights_a = rng.normal(size=(12, 5))
        weights_b = rng.normal(size=(9, 7))
        x_a = rng.uniform(0, 1, (3, 12))
        x_b = rng.uniform(0, 1, (3, 9))
        baseline_a = OpticalCrossbarAccelerator(small_test_chip()).linear(weights_a, x_a)
        baseline_b = OpticalCrossbarAccelerator(small_test_chip()).linear(weights_b, x_b)
        for _ in range(3):
            assert np.array_equal(accelerator.linear(weights_a, x_a), baseline_a)
            assert np.array_equal(accelerator.linear(weights_b, x_b), baseline_b)
        stats = accelerator.functional_statistics()
        assert stats["tile_cache_misses"] == 2  # one plan per distinct weight matrix
        assert stats["tile_cache_hits"] == 4

    def test_mutated_weights_are_reprogrammed(self, accelerator):
        rng = np.random.default_rng(2)
        weights = rng.normal(size=(8, 8))
        inputs = rng.uniform(0, 1, (2, 8))
        first = accelerator.linear(weights, inputs)
        events = accelerator.functional_statistics()["programming_events"]
        weights[0, 0] += 1.0  # in-place mutation must invalidate the cache key
        second = accelerator.linear(weights, inputs)
        assert accelerator.functional_statistics()["programming_events"] > events
        fresh = OpticalCrossbarAccelerator(small_test_chip()).linear(weights, inputs)
        assert np.array_equal(second, fresh)
        assert first.shape == second.shape

    def test_lru_eviction_keeps_statistics(self):
        accelerator = OpticalCrossbarAccelerator(
            small_test_chip(), max_cached_weight_plans=2
        )
        rng = np.random.default_rng(3)
        matrices = [rng.normal(size=(8, 8)) for _ in range(3)]
        inputs = rng.uniform(0, 1, (1, 8))
        for matrix in matrices:
            accelerator.linear(matrix, inputs)
        stats = accelerator.functional_statistics()
        assert stats["tile_cache_evictions"] == 1
        assert stats["programming_events"] == 6  # 3 plans x 1 tile x 2 arrays
        # The evicted (oldest) plan reprograms on reuse; the cached ones do not.
        accelerator.linear(matrices[0], inputs)
        assert accelerator.functional_statistics()["programming_events"] == 8

    def test_clear_functional_cache(self, accelerator):
        rng = np.random.default_rng(4)
        weights = rng.normal(size=(8, 8))
        inputs = rng.uniform(0, 1, (1, 8))
        accelerator.linear(weights, inputs)
        accelerator.clear_functional_cache()
        accelerator.linear(weights, inputs)
        stats = accelerator.functional_statistics()
        assert stats["programming_events"] == 4  # reprogrammed after the clear
        assert stats["tile_cache_misses"] == 2

    def test_clear_functional_cache_keeps_hit_and_eviction_counters(self, accelerator):
        rng = np.random.default_rng(5)
        weights = rng.normal(size=(8, 8))
        inputs = rng.uniform(0, 1, (1, 8))
        accelerator.linear(weights, inputs)
        accelerator.linear(weights, inputs)  # one warm hit before the clear
        accelerator.clear_functional_cache()
        accelerator.linear(weights, inputs)  # re-programs (miss, not an eviction)
        accelerator.linear(weights, inputs)  # warm again
        stats = accelerator.functional_statistics()
        assert stats["tile_cache_hits"] == 2
        assert stats["tile_cache_misses"] == 2
        assert stats["tile_cache_evictions"] == 0
        assert stats["programming_events"] == 4

    def test_cache_holds_exactly_max_plans_without_eviction(self):
        accelerator = OpticalCrossbarAccelerator(
            small_test_chip(), max_cached_weight_plans=2
        )
        rng = np.random.default_rng(6)
        first, second = (rng.normal(size=(8, 8)) for _ in range(2))
        inputs = rng.uniform(0, 1, (1, 8))
        # Exactly max_cached_weight_plans distinct matrices: no eviction, and
        # every re-use is a hit.
        for matrix in (first, second, first, second):
            accelerator.linear(matrix, inputs)
        stats = accelerator.functional_statistics()
        assert stats["tile_cache_evictions"] == 0
        assert stats["tile_cache_hits"] == 2
        assert stats["programming_events"] == 4

    def test_eviction_drops_the_least_recently_used_plan(self):
        accelerator = OpticalCrossbarAccelerator(
            small_test_chip(), max_cached_weight_plans=2
        )
        rng = np.random.default_rng(7)
        a, b, c = (rng.normal(size=(8, 8)) for _ in range(3))
        inputs = rng.uniform(0, 1, (1, 8))
        accelerator.linear(a, inputs)
        accelerator.linear(b, inputs)
        accelerator.linear(a, inputs)  # touch a: b becomes the LRU entry
        accelerator.linear(c, inputs)  # evicts b
        events = accelerator.functional_statistics()["programming_events"]
        accelerator.linear(a, inputs)  # still cached
        assert accelerator.functional_statistics()["programming_events"] == events
        accelerator.linear(b, inputs)  # evicted: must re-program
        assert accelerator.functional_statistics()["programming_events"] == events + 2

    def test_same_bytes_different_shape_weights_are_distinct_plans(self, accelerator):
        # (2, 8) and (8, 2) views of the same buffer have identical bytes; the
        # cache key must still tell them apart (shape is part of the key).
        base = np.arange(16, dtype=float) / 16.0
        wide, tall = base.reshape(2, 8), base.reshape(8, 2)
        x_wide = np.linspace(0, 1, 2)[None, :]
        x_tall = np.linspace(0, 1, 8)[None, :]
        result_wide = accelerator.linear(wide, x_wide)
        result_tall = accelerator.linear(tall, x_tall)
        stats = accelerator.functional_statistics()
        assert stats["tile_cache_misses"] == 2
        assert stats["tile_cache_hits"] == 0
        assert result_wide.shape == (1, 8) and result_tall.shape == (1, 2)
        fresh_wide = OpticalCrossbarAccelerator(small_test_chip()).linear(wide, x_wide)
        fresh_tall = OpticalCrossbarAccelerator(small_test_chip()).linear(tall, x_tall)
        assert np.array_equal(result_wide, fresh_wide)
        assert np.array_equal(result_tall, fresh_tall)
