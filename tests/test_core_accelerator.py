"""Tests for the OpticalCrossbarAccelerator façade (performance + functional paths)."""

import numpy as np
import pytest

from repro import OpticalCrossbarAccelerator, small_test_chip
from repro.errors import SimulationError
from repro.nn import build_lenet5
from repro.nn.im2col import conv2d_reference


class TestPerformancePath:
    def test_default_configuration_is_the_paper_optimum(self):
        accelerator = OpticalCrossbarAccelerator()
        assert accelerator.config.rows == 128
        assert accelerator.config.columns == 128
        assert accelerator.config.is_dual_core

    def test_evaluate_returns_full_metrics(self, resnet50, optimal_config):
        accelerator = OpticalCrossbarAccelerator(optimal_config)
        metrics = accelerator.evaluate(resnet50)
        assert metrics.inferences_per_second > 0
        assert metrics.power_w > 0
        assert metrics.area_mm2 > 0

    def test_runtime_specs_accessible(self, optimal_config):
        accelerator = OpticalCrossbarAccelerator(optimal_config)
        runtime = accelerator.runtime_specs(build_lenet5())
        assert runtime.total_compute_cycles > 0

    def test_peak_tops_and_describe(self, optimal_config):
        accelerator = OpticalCrossbarAccelerator(optimal_config)
        description = accelerator.describe()
        assert description["peak_tops"] == pytest.approx(optimal_config.peak_tops)
        assert description["rows"] == 128


class TestFunctionalPath:
    @pytest.fixture()
    def accelerator(self):
        return OpticalCrossbarAccelerator(small_test_chip())

    def test_linear_single_vector(self, accelerator):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(12, 5))
        vector = rng.uniform(0, 1, 12)
        result = accelerator.linear(weights, vector)
        reference = vector @ weights
        assert result.shape == (5,)
        # INT6 quantisation of weights/inputs/outputs on a tiny 8x8 tile leaves
        # a few percent of error; correlation with the exact result stays high.
        assert np.corrcoef(result, reference)[0, 1] > 0.95

    def test_linear_matrix_input_tiles_over_large_weights(self, accelerator):
        rng = np.random.default_rng(1)
        # 20x11 weights force tiling on the 8x8 test chip.
        weights = rng.normal(size=(20, 11))
        inputs = rng.uniform(0, 1, (6, 20))
        result = accelerator.linear(weights, inputs)
        reference = inputs @ weights
        assert result.shape == (6, 11)
        relative_error = np.linalg.norm(result - reference) / np.linalg.norm(reference)
        assert relative_error < 0.15

    def test_conv2d_matches_reference_convolution(self, accelerator):
        rng = np.random.default_rng(2)
        fmap = rng.uniform(0, 1, (6, 6, 3))
        weights = rng.normal(size=(3, 3, 3, 4))
        optical = accelerator.conv2d(fmap, weights, stride=1, padding=1)
        reference = conv2d_reference(fmap, weights, stride=1, padding=1)
        assert optical.shape == reference.shape
        correlation = np.corrcoef(optical.ravel(), reference.ravel())[0, 1]
        assert correlation > 0.98

    def test_linear_shape_validation(self, accelerator):
        with pytest.raises(SimulationError):
            accelerator.linear(np.zeros((4, 4)), np.zeros(5))
        with pytest.raises(SimulationError):
            accelerator.linear(np.zeros(4), np.zeros(4))
