"""Fault-tolerance lane for the serving subsystem (``pytest -m chaos``).

Covered: the ``--inject-fault`` spec grammar and the deterministic
:class:`FaultInjector`; the circuit-breaker state machine on a fake clock;
worker-pool supervision under injected crash / hang / slow / corrupt faults
(retry-with-restart, exponential backoff via an injectable sleeper, bitwise
re-execution, attempt exhaustion); *real* process-replica deaths (a SIGKILLed
child must surface as a recoverable batch failure, never a hang); server-level
degradation (breaker open → ``CircuitOpenError`` shed, health levels, fault
telemetry); client retries honoring ``Retry-After``; and graceful SIGTERM
shutdown of the ``serve --http`` CLI.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

from repro.config import small_test_chip
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.errors import (
    CircuitOpenError,
    QueueOverflowError,
    ReplicaCrashError,
    ReplicaFailureError,
    RequestTimeoutError,
    ServeError,
    SimulationError,
)
from repro.nn import build_lenet5
from repro.serve import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    EngineReplicaSpec,
    EngineWorkerPool,
    FaultInjector,
    FaultRule,
    HTTPInferenceClient,
    InferenceServer,
    LoadGenerator,
    ModelDefinition,
    ModelRegistry,
    ServeHTTPServer,
    parse_fault_spec,
)
from repro.serve.faults import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEFAULT_HANG_DELAY_S,
    DEFAULT_SLOW_DELAY_S,
    FaultAction,
)

pytestmark = pytest.mark.chaos

_CHIP = dict(rows=32, columns=32, num_cores=2)


@pytest.fixture(scope="module")
def lenet_workload():
    network = build_lenet5()
    weights = generate_random_weights(network, seed=0, scale=0.3)
    config = small_test_chip(**_CHIP)
    images = np.random.default_rng(1).uniform(
        0.0, 1.0, (8,) + network.input_shape.as_tuple()
    )
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    return network, weights, config, images, direct


def _pool(lenet_workload, executor="thread:2", **options) -> EngineWorkerPool:
    network, weights, config, _, _ = lenet_workload
    replica = EngineReplicaSpec(network=network, weights=weights, config=config)
    return EngineWorkerPool(replica, executor, **options)


def _faulty_server(lenet_workload, *, name="lenet5", **model_options) -> InferenceServer:
    """A single-model server whose definition carries fault/breaker knobs."""
    network, weights, config, _, _ = lenet_workload
    options = dict(max_batch=4, max_wait_s=0.005)
    options.update(model_options)
    registry = ModelRegistry(
        [
            ModelDefinition(
                name=name, network=network, weights=dict(weights), config=config,
                **options,
            )
        ]
    )
    return InferenceServer(registry=registry)


# ---------------------------------------------------------------------------
# fault spec grammar + deterministic injector
# ---------------------------------------------------------------------------


class TestFaultSpecs:
    @pytest.mark.parametrize(
        "spec, kind, every, at, delay_s, times",
        [
            ("crash:every=5", "crash", 5, None, None, None),
            ("hang:at=3", "hang", None, 3, None, 1),
            ("slow:every=2,delay_ms=20", "slow", 2, None, 0.02, None),
            ("corrupt:at=7,times=1", "corrupt", None, 7, None, 1),
            ("crash", "crash", 1, None, None, None),  # bare kind = every dispatch
        ],
    )
    def test_accepted_spellings(self, spec, kind, every, at, delay_s, times):
        rule = parse_fault_spec(spec)
        assert (rule.kind, rule.every, rule.at, rule.delay_s, rule.times) == (
            kind, every, at, delay_s, times,
        )

    def test_probability_spelling_with_seed(self):
        rule = parse_fault_spec("crash:probability=0.25,seed=7")
        assert rule.kind == "crash"
        assert rule.probability == 0.25
        assert rule.seed == 7

    @pytest.mark.parametrize(
        "spec",
        [
            "fry",                      # unknown kind
            "",                         # empty
            "crash:every=0",            # every must be >= 1
            "crash:at=0",               # at must be >= 1
            "crash:probability=1.5",    # probability in (0, 1]
            "crash:every",              # missing value
            "crash:every=x",            # not a number
            "crash:nope=1",             # unknown key
            "crash:every=2,at=3",       # more than one trigger
            "slow:delay_ms=-5",         # negative delay
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(SimulationError):
            parse_fault_spec(spec)

    def test_at_rule_fires_exactly_once(self):
        rule = parse_fault_spec("crash:at=3")
        fired = []
        for index in range(1, 10):
            if rule.matches(index):
                rule.fired += 1
                fired.append(index)
        assert fired == [3]

    def test_probability_schedule_is_seed_deterministic(self):
        def schedule(seed):
            rule = FaultRule(kind="slow", probability=0.5, seed=seed)
            return [rule.matches(i) for i in range(1, 51)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_action_defaults_are_kind_specific(self):
        assert parse_fault_spec("slow:every=1").action().delay_s == DEFAULT_SLOW_DELAY_S
        assert parse_fault_spec("hang:every=1").action().delay_s == DEFAULT_HANG_DELAY_S
        assert parse_fault_spec("crash").action().delay_s == 0.0
        with pytest.raises(SimulationError):
            FaultAction(kind="melt")

    def test_injector_first_match_wins_and_counts(self):
        injector = FaultInjector(["corrupt:at=2", "crash:every=2"])
        kinds = []
        for _ in range(6):
            action = injector.next_action()
            kinds.append(None if action is None else action.kind)
        # dispatch 2 hits the corrupt rule first; 4 and 6 fall through to crash
        assert kinds == [None, "corrupt", None, "crash", None, "crash"]
        snapshot = injector.snapshot()
        assert snapshot["dispatches"] == 6
        assert snapshot["injected"] == {"corrupt": 1, "crash": 2}
        assert snapshot["rules"] == 2

    def test_injector_without_rules_never_fires(self):
        injector = FaultInjector()
        assert all(injector.next_action() is None for _ in range(10))
        assert injector.dispatches == 10


# ---------------------------------------------------------------------------
# circuit breaker (fake clock: every transition tested without sleeping)
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, **policy):
        options = dict(
            failure_threshold=0.5, window=4, min_samples=2,
            recovery_s=10.0, half_open_successes=2,
        )
        options.update(policy)
        now = [0.0]
        breaker = CircuitBreaker(CircuitBreakerPolicy(**options), clock=lambda: now[0])
        return breaker, now

    def test_opens_at_failure_threshold_and_sheds(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED  # min_samples not reached
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        snapshot = breaker.snapshot()
        assert snapshot["times_opened"] == 1
        assert snapshot["rejections"] == 1
        assert snapshot["retry_after_s"] == pytest.approx(10.0)

    def test_failures_below_threshold_keep_it_closed(self):
        breaker, _ = self._breaker(failure_threshold=0.75)
        for _ in range(20):
            breaker.record_success()
            breaker.record_failure()  # steady 50% < 75% threshold
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_retry_after_counts_down_with_the_clock(self):
        breaker, now = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.retry_after_s() == pytest.approx(10.0)
        now[0] = 6.0
        assert breaker.retry_after_s() == pytest.approx(4.0)

    def test_half_open_probe_closes_after_consecutive_successes(self):
        breaker, now = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        now[0] = 10.0  # recovery window elapsed
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()  # the probe is admitted
        breaker.record_success()
        assert breaker.state == BREAKER_HALF_OPEN  # needs 2 consecutive
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.snapshot()["window_samples"] == 0  # history cleared

    def test_half_open_failure_snaps_back_open(self):
        breaker, now = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.snapshot()["times_opened"] == 2
        assert breaker.retry_after_s() == pytest.approx(10.0)  # clock restarted

    @pytest.mark.parametrize(
        "policy",
        [
            dict(failure_threshold=0.0),
            dict(failure_threshold=1.5),
            dict(window=0),
            dict(min_samples=0),
            dict(min_samples=9),  # > window
            dict(recovery_s=-1.0),
            dict(half_open_successes=0),
        ],
    )
    def test_invalid_policies_rejected(self, policy):
        options = dict(window=8)
        options.update(policy)
        with pytest.raises(SimulationError):
            CircuitBreakerPolicy(**options)


# ---------------------------------------------------------------------------
# pool supervision with in-process replicas (fast: no forks)
# ---------------------------------------------------------------------------


class TestPoolSupervision:
    def test_injected_crashes_recover_bitwise(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        injector = FaultInjector(["crash:every=3"])
        with _pool(
            lenet_workload, "thread:2",
            fault_injector=injector, backoff_base_s=0.0,
        ) as pool:
            served = np.concatenate(
                [pool.run_batch(images[i : i + 2]) for i in range(0, len(images), 2)]
            )
            faults = pool.fault_statistics()
            assert pool.count == 2  # in-place replacement kept the fleet size
        assert np.array_equal(served, direct)
        assert faults["replica_restarts"] >= 1
        assert faults["replica_failures"].get("ReplicaCrashError", 0) >= 1
        assert faults["batches_recovered"] >= 1
        assert faults["retry_histogram"].get(1, 0) >= 1
        assert faults["batches_failed"] == 0
        assert faults["injection"]["injected"]["crash"] >= 1

    def test_corrupt_outputs_are_caught_and_retried(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _pool(
            lenet_workload, "thread:1",
            fault_injector=FaultInjector(["corrupt:at=1"]), backoff_base_s=0.0,
        ) as pool:
            served = pool.run_batch(images)
            faults = pool.fault_statistics()
        assert np.array_equal(served, direct)  # the poisoned result was dropped
        assert faults["replica_failures"] == {"CorruptResultError": 1}
        assert faults["batches_recovered"] == 1

    def test_validation_can_be_disabled(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        with _pool(
            lenet_workload, "thread:1", validate_outputs=False,
            fault_injector=FaultInjector(["corrupt:at=1"]),
        ) as pool:
            served = pool.run_batch(images)
            assert pool.fault_statistics()["replica_restarts"] == 0
        assert np.isnan(served).any()  # poison flows through unchecked

    def test_injected_hang_times_out_and_recovers(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _pool(
            lenet_workload, "thread:1", dispatch_timeout_s=0.05,
            fault_injector=FaultInjector(["hang:at=1"]), backoff_base_s=0.0,
        ) as pool:
            served = pool.run_batch(images)
            faults = pool.fault_statistics()
        assert np.array_equal(served, direct)
        assert faults["replica_failures"] == {"ReplicaTimeoutError": 1}

    def test_slow_fault_adds_latency_but_no_failure(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _pool(
            lenet_workload, "thread:1",
            fault_injector=FaultInjector(["slow:at=1,delay_ms=30"]),
        ) as pool:
            start = time.monotonic()
            served = pool.run_batch(images)
            elapsed = time.monotonic() - start
            faults = pool.fault_statistics()
        assert np.array_equal(served, direct)
        assert elapsed >= 0.03
        assert faults["replica_restarts"] == 0
        assert faults["injection"]["injected"] == {"slow": 1}

    def test_exponential_backoff_schedule_and_streak_reset(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        sleeps = []
        injector = FaultInjector(
            ["crash:at=1", "crash:at=2", "crash:at=3", "crash:at=6"]
        )
        with _pool(
            lenet_workload, "thread:1",
            fault_injector=injector, max_attempts=5,
            backoff_base_s=0.01, backoff_max_s=0.03, sleep=sleeps.append,
        ) as pool:
            # dispatches 1-3 crash, 4 succeeds: backoff doubles then caps
            assert np.array_equal(pool.run_batch(images), direct)
            assert sleeps == [0.01, 0.02, 0.03]
            assert pool.fault_statistics()["retry_histogram"] == {3: 1}
            # a clean batch (dispatch 5) resets the streak, so the next
            # crash (dispatch 6) backs off from the base again
            assert np.array_equal(pool.run_batch(images), direct)
            assert np.array_equal(pool.run_batch(images), direct)
            assert sleeps == [0.01, 0.02, 0.03, 0.01]
            assert pool.fault_statistics()["consecutive_failures"] == 0

    def test_attempt_budget_exhaustion_raises_replica_failure(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        with _pool(
            lenet_workload, "thread:1",
            fault_injector=FaultInjector(["crash"]),  # every dispatch
            max_attempts=2, backoff_base_s=0.0,
        ) as pool:
            with pytest.raises(ReplicaFailureError) as excinfo:
                pool.run_batch(images)
            faults = pool.fault_statistics()
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last_error, ReplicaCrashError)
        assert faults["batches_failed"] == 1
        assert faults["batches_recovered"] == 0

    def test_non_fault_errors_return_the_replica(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _pool(lenet_workload, "thread:1") as pool:
            with pytest.raises(SimulationError):
                pool.run_batch(np.zeros((2, 5, 5, 1)))  # wrong input shape
            # the replica went back to the free list: no restart, still serving
            assert pool.fault_statistics()["replica_restarts"] == 0
            assert np.array_equal(pool.run_batch(images), direct)

    def test_restart_in_flight_is_visible_and_count_invariant(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        entered = threading.Event()
        release = threading.Event()

        def gated_sleep(_delay):
            entered.set()
            assert release.wait(timeout=30.0)

        with _pool(
            lenet_workload, "thread:2",
            fault_injector=FaultInjector(["crash:at=1"]),
            backoff_base_s=0.01, sleep=gated_sleep,
        ) as pool:
            future = pool.submit(images)
            assert entered.wait(timeout=30.0)  # supervisor is mid-restart
            assert pool.restarting == 1
            assert pool.count == 2  # the recovering slot still counts
            release.set()
            assert np.array_equal(future.result(timeout=60), direct)
            assert pool.restarting == 0
            assert pool.fault_statistics()["replica_restarts"] == 1

    def test_invalid_supervision_parameters_rejected(self, lenet_workload):
        with pytest.raises(SimulationError):
            _pool(lenet_workload, "thread:1", dispatch_timeout_s=0.0)
        with pytest.raises(SimulationError):
            _pool(lenet_workload, "thread:1", max_attempts=0)
        with pytest.raises(SimulationError):
            _pool(lenet_workload, "thread:1", backoff_base_s=-1.0)


# ---------------------------------------------------------------------------
# real process-replica deaths
# ---------------------------------------------------------------------------


class TestProcessReplicaFaults:
    def test_sigkilled_child_surfaces_and_recovers(self, lenet_workload):
        """Regression: a process replica dying mid-service must surface as a
        recoverable batch failure — never leave the dispatch blocked forever."""
        _, _, _, images, direct = lenet_workload
        with _pool(
            lenet_workload, "process:1",
            dispatch_timeout_s=120.0, backoff_base_s=0.0,
        ) as pool:
            assert np.array_equal(pool.run_batch(images), direct)
            pids = pool.replica_pids()
            assert len(pids) == 1
            os.kill(pids[0], signal.SIGKILL)
            # the next batch lands on the dead worker: the pool must detect
            # the death, rebuild the replica and re-execute bitwise
            assert np.array_equal(pool.run_batch(images), direct)
            faults = pool.fault_statistics()
            fresh = pool.replica_pids()
        assert faults["replica_restarts"] >= 1
        assert faults["batches_recovered"] >= 1
        assert fresh and fresh != pids

    def test_injected_process_crash_is_a_real_sigkill(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _pool(
            lenet_workload, "process:1",
            fault_injector=FaultInjector(["crash:at=2"]),
            dispatch_timeout_s=120.0, backoff_base_s=0.0,
        ) as pool:
            assert np.array_equal(pool.run_batch(images), direct)
            before = pool.replica_pids()
            assert np.array_equal(pool.run_batch(images), direct)  # crash + retry
            faults = pool.fault_statistics()
            after = pool.replica_pids()
        assert faults["replica_restarts"] == 1
        assert faults["injection"]["injected"] == {"crash": 1}
        assert after != before  # the worker process really died

    def test_hung_process_replica_is_killed_and_replaced(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _pool(
            lenet_workload, "process:1",
            fault_injector=FaultInjector(["hang:at=2"]),
            dispatch_timeout_s=1.5, backoff_base_s=0.0,
        ) as pool:
            assert np.array_equal(pool.run_batch(images), direct)
            start = time.monotonic()
            assert np.array_equal(pool.run_batch(images), direct)
            elapsed = time.monotonic() - start
            faults = pool.fault_statistics()
        assert faults["replica_failures"].get("ReplicaTimeoutError", 0) == 1
        assert faults["replica_restarts"] == 1
        assert elapsed >= 1.5  # the timeout, not the 60 s hang, bounded it

    @pytest.mark.parametrize("ipc", ["pickle", "shm"])
    def test_periodic_kills_full_run_zero_lost_bitwise(self, lenet_workload, ipc):
        """The PR's acceptance run: crash a process replica every K batches,
        drive a full closed-loop load run, lose nothing, stay bitwise — over
        both tensor transports (in shm mode a kill lands while the batch's
        inputs live in the shared arena, so the retry must re-dispatch the
        still-live slot bytes)."""
        _, _, _, images, direct = lenet_workload
        server = _faulty_server(
            lenet_workload,
            executor="process:2",
            max_batch=2,  # small batches: the every=5 rule fires mid-run
            faults=["crash:every=5"],
            dispatch_timeout_s=120.0,
            max_attempts=3,
            backoff_base_s=0.01,
            ipc=ipc,
        )
        flood = np.concatenate([images, images])
        with server:
            report = LoadGenerator(server).run_closed_loop(flood, concurrency=4)
            stats = server.stats()
        assert report.requests == len(flood)  # zero lost requests
        assert np.array_equal(report.outputs, np.concatenate([direct, direct]))
        faults = stats["pool"]["faults"]
        assert faults["injection"]["injected"]["crash"] >= 1
        assert faults["replica_restarts"] >= 1
        assert faults["batches_failed"] == 0
        assert stats["telemetry"]["requests_failed"] == 0
        ipc_stats = stats["pool"]["ipc"]
        assert ipc_stats["mode"] == ipc
        if ipc == "shm":
            assert ipc_stats["zero_copy_active"]
            assert ipc_stats["copy_bytes_avoided"] > 0
            assert ipc_stats["slots_in_use"] == 0


# ---------------------------------------------------------------------------
# server-level degradation: breaker, shedding, health, failure telemetry
# ---------------------------------------------------------------------------


class TestServerDegradation:
    def test_breaker_opens_sheds_and_recovers(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        server = _faulty_server(
            lenet_workload,
            executor="thread:1",
            max_batch=2,
            faults=["crash:times=4"],  # every dispatch, first 4 only
            max_attempts=1,            # each faulted batch fails outright
            backoff_base_s=0.0,
            breaker=CircuitBreakerPolicy(
                failure_threshold=0.5, window=4, min_samples=2,
                recovery_s=2.0, half_open_successes=1,
            ),
        )
        with server:
            for image in images[:4]:
                with pytest.raises((ReplicaFailureError, CircuitOpenError)):
                    server.submit(image).result(timeout=60)
            # enough batch failures recorded: admissions are now shed
            with pytest.raises(CircuitOpenError) as excinfo:
                server.submit(images[0])
            assert excinfo.value.retry_after_s >= 0.0
            assert excinfo.value.model == "lenet5"
            levels = server.health_levels()
            assert levels["live"] and not levels["ready"]
            assert levels["degraded"]
            assert levels["models"]["lenet5"] == "down"
            stats = server.stats()
            assert stats["breaker"]["state"] == BREAKER_OPEN
            assert stats["breaker"]["times_opened"] >= 1
            assert stats["telemetry"]["requests_shed"] >= 1
            assert stats["telemetry"]["requests_failed"] >= 1
            assert stats["health"] == "down"

            # after the recovery window the half-open probe goes through;
            # the injector's rules are exhausted, so it closes again
            deadline = time.monotonic() + 30.0
            recovered = None
            while time.monotonic() < deadline:
                try:
                    recovered = server.serve_batch(images)
                    break
                except (CircuitOpenError, ReplicaFailureError):
                    time.sleep(0.05)
            assert recovered is not None, "breaker never recovered"
            assert np.array_equal(recovered, direct)
            assert server.health_levels()["models"]["lenet5"] == "ok"
            assert server.stats()["breaker"]["state"] == BREAKER_CLOSED

    def test_supervised_faults_are_invisible_to_clients(self, lenet_workload):
        """Faults below the attempt budget: clients just see correct answers."""
        _, _, _, images, direct = lenet_workload
        server = _faulty_server(
            lenet_workload,
            executor="thread:2",
            max_batch=2,  # >= 4 dispatches for 8 images, so the fault fires
            faults=["crash:every=4"],
            max_attempts=3,
            backoff_base_s=0.0,
            breaker=CircuitBreakerPolicy(
                failure_threshold=0.9, window=8, min_samples=4,
            ),
        )
        with server:
            served = server.serve_batch(images)
            stats = server.stats()
        assert np.array_equal(served, direct)
        assert stats["pool"]["faults"]["batches_recovered"] >= 1
        assert stats["telemetry"]["requests_failed"] == 0
        assert stats["telemetry"]["requests_shed"] == 0
        assert stats["breaker"]["state"] == BREAKER_CLOSED


# ---------------------------------------------------------------------------
# HTTP client retries (scripted stub server: no engine in the loop)
# ---------------------------------------------------------------------------


class _ScriptedHTTP:
    """A real HTTP listener answering from a scripted list of responses.

    Each entry is ``(status, headers, body_bytes)``; the last entry repeats
    once the script is exhausted.  ``hits`` counts requests served.
    """

    def __init__(self, script, delay_s=0.0):
        self.script = list(script)
        self.delay_s = delay_s
        self.hits = 0
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, format, *args):  # noqa: A002
                pass

            def _serve(self):
                if outer.delay_s:
                    time.sleep(outer.delay_s)
                index = min(outer.hits, len(outer.script) - 1)
                outer.hits += 1
                status, headers, body = outer.script[index]
                self.send_response(status)
                for key, value in headers.items():
                    self.send_header(key, value)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            do_GET = do_POST = _serve

        self.server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.thread = threading.Thread(target=self.server.serve_forever, daemon=True)
        self.thread.start()

    @property
    def url(self):
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)


class TestHTTPClientRetries:
    def test_transient_503_retried_honoring_retry_after(self):
        stub = _ScriptedHTTP(
            [
                (503, {"Retry-After": "0.25"}, b'{"error": "restarting"}'),
                (200, {}, b'{"ok": true}'),
            ]
        )
        sleeps = []
        try:
            client = HTTPInferenceClient(stub.url, max_retries=2, sleep=sleeps.append)
            try:
                assert client.stats() == {"ok": True}
            finally:
                client.close()
        finally:
            stub.close()
        assert stub.hits == 2
        assert sleeps == [0.25]  # the server's hint, not the backoff schedule
        assert client.retries_performed == 1

    def test_backoff_without_retry_after_is_jittered_and_seeded(self):
        def run(seed):
            stub = _ScriptedHTTP(
                [
                    (503, {}, b'{"error": "busy"}'),
                    (503, {}, b'{"error": "busy"}'),
                    (200, {}, b'{"ok": true}'),
                ]
            )
            sleeps = []
            try:
                client = HTTPInferenceClient(
                    stub.url, max_retries=2, retry_backoff_s=0.04,
                    retry_seed=seed, sleep=sleeps.append,
                )
                try:
                    assert client.stats() == {"ok": True}
                finally:
                    client.close()
            finally:
                stub.close()
            return sleeps

        first = run(seed=3)
        assert len(first) == 2
        assert 0.02 <= first[0] <= 0.04     # base 0.04, jitter in [0.5, 1.0]
        assert 0.04 <= first[1] <= 0.08     # doubled
        assert run(seed=3) == first          # same seed, same schedule
        assert run(seed=4) != first

    def test_429_and_400_are_never_retried(self):
        stub = _ScriptedHTTP([(429, {}, b'{"error": "queue full"}')])
        try:
            client = HTTPInferenceClient(stub.url, max_retries=5, sleep=lambda _: None)
            try:
                with pytest.raises(QueueOverflowError):
                    client.stats()
            finally:
                client.close()
        finally:
            stub.close()
        assert stub.hits == 1  # shed load is the server's decision: no retry
        assert client.retries_performed == 0

    def test_persistent_breaker_shed_surfaces_circuit_open(self):
        body = b'{"error": "shedding", "type": "CircuitOpenError"}'
        stub = _ScriptedHTTP([(503, {"Retry-After": "1"}, body)])
        sleeps = []
        try:
            client = HTTPInferenceClient(stub.url, max_retries=2, sleep=sleeps.append)
            try:
                with pytest.raises(CircuitOpenError) as excinfo:
                    client.stats()
            finally:
                client.close()
        finally:
            stub.close()
        assert stub.hits == 3  # initial try + 2 retries
        assert sleeps == [1.0, 1.0]
        assert excinfo.value.retry_after_s == 1.0

    def test_connection_refused_is_a_serve_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = HTTPInferenceClient(
            f"http://127.0.0.1:{port}", max_retries=0, connect_timeout_s=5.0,
        )
        try:
            with pytest.raises(ServeError, match="cannot connect"):
                client.healthz()
        finally:
            client.close()

    def test_read_timeout_maps_to_request_timeout_error(self):
        stub = _ScriptedHTTP([(200, {}, b'{"ok": true}')], delay_s=1.0)
        try:
            client = HTTPInferenceClient(stub.url, timeout_s=0.1, max_retries=0)
            try:
                with pytest.raises(RequestTimeoutError):
                    client.stats()
            finally:
                client.close()
        finally:
            stub.close()


class TestHTTPDegradedSurface:
    def test_healthz_and_stats_expose_fault_state(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        server = _faulty_server(
            lenet_workload, executor="thread:1",
            faults=["crash:at=1"], max_attempts=2, backoff_base_s=0.0,
        )
        with server, ServeHTTPServer(server, port=0) as front:
            client = HTTPInferenceClient(front.url, timeout_s=120.0)
            try:
                assert np.array_equal(client.infer(images[0]), direct[0])
                health = client.healthz()
                stats = client.stats()
            finally:
                client.close()
        assert health["live"] and health["ready"]
        assert health["model_health"]["lenet5"] == "ok"
        assert health["status"] == "ok"  # legacy field stays for healthy servers
        faults = stats["pool"]["faults"]
        assert faults["replica_restarts"] == 1
        assert faults["injection"]["injected"] == {"crash": 1}

    def test_open_breaker_is_http_503_with_retry_after(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        server = _faulty_server(
            lenet_workload, executor="thread:1",
            faults=["crash"], max_attempts=1, backoff_base_s=0.0,
            breaker=CircuitBreakerPolicy(
                failure_threshold=0.5, window=4, min_samples=1, recovery_s=60.0,
            ),
        )
        with server, ServeHTTPServer(server, port=0) as front:
            client = HTTPInferenceClient(front.url, timeout_s=120.0, max_retries=0)
            try:
                with pytest.raises(ServeError):
                    client.infer(images[0])  # trips the breaker
                with pytest.raises(CircuitOpenError) as excinfo:
                    client.infer(images[0])  # now shed at admission
                health = client.healthz()
            finally:
                client.close()
        assert excinfo.value.retry_after_s >= 1.0  # Retry-After round-tripped
        assert health["status"] == "down"
        assert health["live"] and not health["ready"]
        assert health["model_health"]["lenet5"] == "down"


# ---------------------------------------------------------------------------
# graceful shutdown of the serve CLI
# ---------------------------------------------------------------------------


class TestGracefulShutdown:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_serve_http_drains_and_exits_zero(self, tmp_path, signum):
        ready_file = tmp_path / "serve-url.txt"
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(repo_root, "src"), env.get("PYTHONPATH")) if p
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--network", "lenet5", "--rows", "32", "--columns", "32",
                "--http", "0", "--ready-file", str(ready_file),
            ],
            cwd=repo_root, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if ready_file.exists() and ready_file.read_text().strip():
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.1)
            assert process.poll() is None, (
                f"serve exited early:\n{process.stdout.read()}"
            )
            process.send_signal(signum)
            stdout, _ = process.communicate(timeout=120.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=30.0)
        assert process.returncode == 0, f"non-zero exit:\n{stdout}"
        assert signal.Signals(signum).name in stdout
        assert "draining and shutting down" in stdout
