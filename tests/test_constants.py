"""Unit tests for unit conversions and physical constants."""

import math

import pytest

from repro import constants


class TestDecibelHelpers:
    def test_db_to_linear_of_zero_is_one(self):
        assert constants.db_to_linear(0.0) == pytest.approx(1.0)

    def test_db_to_linear_of_3db_is_about_two(self):
        assert constants.db_to_linear(3.0) == pytest.approx(2.0, rel=5e-3)

    def test_linear_to_db_round_trip(self):
        for value in (0.01, 0.5, 1.0, 7.3, 1234.5):
            assert constants.db_to_linear(constants.linear_to_db(value)) == pytest.approx(value)

    def test_linear_to_db_rejects_non_positive(self):
        with pytest.raises(ValueError):
            constants.linear_to_db(0.0)
        with pytest.raises(ValueError):
            constants.linear_to_db(-1.0)

    def test_loss_db_to_transmission_is_below_one_for_positive_loss(self):
        assert constants.loss_db_to_transmission(3.0) == pytest.approx(0.5, rel=5e-3)
        assert constants.loss_db_to_transmission(10.0) == pytest.approx(0.1)

    def test_transmission_to_loss_db_round_trip(self):
        for loss in (0.0, 0.5, 2.0, 30.0):
            transmission = constants.loss_db_to_transmission(loss)
            assert constants.transmission_to_loss_db(transmission) == pytest.approx(loss, abs=1e-9)

    def test_field_transmission_is_sqrt_of_power_transmission(self):
        loss = 6.0
        assert constants.field_transmission_from_loss_db(loss) == pytest.approx(
            math.sqrt(constants.loss_db_to_transmission(loss))
        )

    def test_dbm_watt_round_trip(self):
        assert constants.dbm_to_watts(0.0) == pytest.approx(1e-3)
        assert constants.watts_to_dbm(1e-3) == pytest.approx(0.0)
        assert constants.watts_to_dbm(constants.dbm_to_watts(-17.3)) == pytest.approx(-17.3)

    def test_watts_to_dbm_rejects_non_positive(self):
        with pytest.raises(ValueError):
            constants.watts_to_dbm(0.0)


class TestEnergyAndDataHelpers:
    def test_metric_prefix_helpers(self):
        assert constants.fj(1.0) == pytest.approx(1e-15)
        assert constants.pj(2.0) == pytest.approx(2e-12)
        assert constants.nj(3.0) == pytest.approx(3e-9)
        assert constants.mw(4.0) == pytest.approx(4e-3)
        assert constants.ghz(5.0) == pytest.approx(5e9)
        assert constants.ns(6.0) == pytest.approx(6e-9)

    def test_mb_bits_round_trip(self):
        assert constants.mb_to_bits(1.0) == pytest.approx(8 * 1024 * 1024)
        assert constants.bits_to_mb(constants.mb_to_bits(26.3)) == pytest.approx(26.3)

    def test_photon_energy_at_default_wavelength(self):
        energy = constants.photon_energy_j()
        # ~0.95 eV at 1310 nm.
        assert energy == pytest.approx(1.52e-19, rel=0.02)

    def test_photon_energy_rejects_bad_wavelength(self):
        with pytest.raises(ValueError):
            constants.photon_energy_j(0.0)

    def test_photon_energy_scales_inversely_with_wavelength(self):
        assert constants.photon_energy_j(1.0e-6) > constants.photon_energy_j(1.5e-6)
