"""Tests for the GPU comparison (Table I) and report formatting."""

import pytest

from repro.baselines import NVIDIA_A100, NVIDIA_T4
from repro.core.comparison import compare_to_gpu
from repro.core.report import (
    format_breakdown,
    format_comparison_table,
    format_metrics_report,
    format_table,
)
from repro.errors import SimulationError


class TestComparison:
    def test_rows_and_ratios(self, optimal_metrics):
        comparison = compare_to_gpu(optimal_metrics, NVIDIA_A100)
        rows = comparison.rows()
        assert rows[0].system == "This work"
        assert rows[1].system == "NVIDIA A100"
        assert comparison.power_advantage == pytest.approx(
            NVIDIA_A100.power_w / optimal_metrics.power_w
        )
        assert comparison.area_advantage == pytest.approx(
            NVIDIA_A100.die_area_mm2 / optimal_metrics.area_mm2
        )

    def test_headline_claims_hold(self, optimal_metrics):
        """The Table I shape: comparable IPS, >10x power advantage, >3x area advantage."""
        comparison = compare_to_gpu(optimal_metrics)
        assert 0.5 < comparison.ips_ratio < 2.0
        assert comparison.power_advantage > 10.0
        assert comparison.area_advantage > 3.0
        assert comparison.efficiency_advantage > 10.0

    def test_comparison_against_other_gpu(self, optimal_metrics):
        comparison = compare_to_gpu(optimal_metrics, NVIDIA_T4)
        assert comparison.gpu.system == "NVIDIA T4"

    def test_comparison_requires_metrics(self):
        with pytest.raises(SimulationError):
            compare_to_gpu(None)

    def test_row_as_dict(self, optimal_metrics):
        row = compare_to_gpu(optimal_metrics).this_work.as_dict()
        assert {"system", "ips", "ips_per_watt", "power_w", "area_mm2"} == set(row)


class TestReportFormatting:
    def test_format_table_alignment_and_content(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "333" in lines[3]

    def test_format_table_validates_rows(self):
        with pytest.raises(SimulationError):
            format_table(["a"], [["1", "2"]])
        with pytest.raises(SimulationError):
            format_table([], [])

    def test_metrics_report_mentions_key_numbers(self, optimal_metrics):
        report = format_metrics_report(optimal_metrics)
        assert "IPS" in report
        assert "Power breakdown" in report
        assert "Area breakdown" in report
        assert "128x128" in report

    def test_comparison_table_mentions_both_systems(self, optimal_metrics):
        text = format_comparison_table(compare_to_gpu(optimal_metrics))
        assert "This work" in text
        assert "NVIDIA A100" in text
        assert "power advantage" in text

    def test_format_breakdown(self):
        text = format_breakdown({"dram": 10.0, "sram": 1.0}, "W")
        assert text.splitlines()[2].startswith("dram")
