"""The ``analysis`` lane, part 1: the RPR1xx static-analysis framework.

Every rule gets a trigger snippet (the finding fires) and a non-trigger
snippet (the compliant spelling stays silent), plus framework-level tests:
``# repro: noqa[CODE]`` suppression, ``--select`` filtering, the JSON output
schema, the CLI exit codes — and the acceptance gate that the shipped
``src/repro`` tree itself lints clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    PARSE_ERROR_CODE,
    RULE_REGISTRY,
    LintReport,
    format_json,
    format_text,
    lint_source,
    run_lint,
)
from repro.cli import main
from repro.errors import ConfigurationError

pytestmark = pytest.mark.analysis

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


def findings_for(code: str, snippet: str, path: str = "src/repro/serve/mod.py"):
    """Lint ``snippet`` as if it lived at ``path``; findings for ``code``."""
    found = lint_source(textwrap.dedent(snippet), Path(path))
    return [finding for finding in found if finding.code == code and not finding.suppressed]


# ---------------------------------------------------------------------------
# framework
# ---------------------------------------------------------------------------


class TestFramework:
    def test_registry_has_the_six_stable_codes(self):
        assert set(RULE_REGISTRY) == {
            "RPR101",
            "RPR102",
            "RPR103",
            "RPR104",
            "RPR105",
            "RPR106",
        }

    def test_every_rule_has_name_and_rationale(self):
        for code, rule_cls in RULE_REGISTRY.items():
            assert rule_cls.code == code
            assert rule_cls.name
            assert rule_cls.rationale

    def test_syntax_error_becomes_parse_finding(self):
        findings = lint_source("def broken(:\n", Path("src/repro/core/x.py"))
        assert [finding.code for finding in findings] == [PARSE_ERROR_CODE]

    def test_select_unknown_code_raises(self):
        with pytest.raises(ConfigurationError, match="unknown rule code"):
            lint_source("x = 1\n", Path("x.py"), select=["RPR999"])

    def test_noqa_with_code_suppresses(self):
        snippet = "import time\nwith lock:\n    time.sleep(1)  # repro: noqa[RPR103]\n"
        findings = lint_source(snippet, Path("src/repro/serve/mod.py"))
        rpr103 = [finding for finding in findings if finding.code == "RPR103"]
        assert len(rpr103) == 1 and rpr103[0].suppressed

    def test_bare_noqa_suppresses_everything_on_the_line(self):
        snippet = "import time\nwith lock:\n    time.sleep(1)  # repro: noqa\n"
        findings = lint_source(snippet, Path("src/repro/serve/mod.py"))
        assert all(finding.suppressed for finding in findings)

    def test_noqa_with_other_code_does_not_suppress(self):
        snippet = "import time\nwith lock:\n    time.sleep(1)  # repro: noqa[RPR101]\n"
        findings = lint_source(snippet, Path("src/repro/serve/mod.py"))
        rpr103 = [finding for finding in findings if finding.code == "RPR103"]
        assert len(rpr103) == 1 and not rpr103[0].suppressed

    def test_json_schema(self, tmp_path):
        target = tmp_path / "core" / "mod.py"
        target.parent.mkdir()
        target.write_text("import time\n\ndef f():\n    return time.time()\n")
        report = run_lint([tmp_path])
        payload = json.loads(format_json(report))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {"RPR102": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "col", "code", "message", "suppressed"}
        assert finding["code"] == "RPR102"
        assert finding["line"] == 4
        assert finding["suppressed"] is False
        assert {rule["code"] for rule in payload["rules"]} == set(RULE_REGISTRY)

    def test_text_format_mentions_location_and_summary(self):
        findings = lint_source(
            "import time\n\ndef f():\n    return time.time()\n",
            Path("src/repro/core/mod.py"),
        )
        report = LintReport(findings=findings, files_scanned=1)
        text = format_text(report)
        assert "src/repro/core/mod.py:4" in text
        assert "RPR102" in text
        assert "1 file(s) scanned" in text


# ---------------------------------------------------------------------------
# RPR101 — unseeded RNG in datapath modules
# ---------------------------------------------------------------------------


class TestRPR101:
    DATAPATH = "src/repro/crossbar/mod.py"

    def test_unseeded_default_rng_triggers(self):
        snippet = "import numpy as np\nrng = np.random.default_rng()\n"
        assert len(findings_for("RPR101", snippet, self.DATAPATH)) == 1

    def test_module_level_np_random_triggers(self):
        snippet = "import numpy as np\nnoise = np.random.normal(0.0, 1.0)\n"
        assert len(findings_for("RPR101", snippet, self.DATAPATH)) == 1

    def test_global_random_module_triggers(self):
        snippet = "import random\nvalue = random.random()\n"
        assert len(findings_for("RPR101", snippet, self.DATAPATH)) == 1

    def test_unseeded_random_instance_triggers(self):
        snippet = "import random\nrng = random.Random()\n"
        assert len(findings_for("RPR101", snippet, self.DATAPATH)) == 1

    def test_seeded_rng_does_not_trigger(self):
        snippet = (
            "import numpy as np\nimport random\n"
            "rng = np.random.default_rng(1234)\n"
            "seq = np.random.SeedSequence(7)\n"
            "r = random.Random(42)\n"
        )
        assert findings_for("RPR101", snippet, self.DATAPATH) == []

    def test_outside_datapath_does_not_trigger(self):
        snippet = "import numpy as np\nrng = np.random.default_rng()\n"
        assert findings_for("RPR101", snippet, "src/repro/serve/mod.py") == []


# ---------------------------------------------------------------------------
# RPR102 — wall clock for durations
# ---------------------------------------------------------------------------


class TestRPR102:
    def test_time_time_in_serve_triggers(self):
        snippet = "import time\nstart = time.time()\n"
        assert len(findings_for("RPR102", snippet, "src/repro/serve/mod.py")) == 1

    def test_time_time_in_core_triggers(self):
        snippet = "import time\nstart = time.time()\n"
        assert len(findings_for("RPR102", snippet, "src/repro/core/mod.py")) == 1

    def test_monotonic_clocks_do_not_trigger(self):
        snippet = "import time\na = time.perf_counter()\nb = time.monotonic()\n"
        assert findings_for("RPR102", snippet, "src/repro/serve/mod.py") == []

    def test_outside_scope_does_not_trigger(self):
        snippet = "import time\nstart = time.time()\n"
        assert findings_for("RPR102", snippet, "src/repro/photonics/mod.py") == []


# ---------------------------------------------------------------------------
# RPR103 — blocking call under a lock
# ---------------------------------------------------------------------------


class TestRPR103:
    def test_sleep_under_lock_triggers(self):
        snippet = """
        import time

        def f(self):
            with self._lock:
                time.sleep(0.1)
        """
        assert len(findings_for("RPR103", snippet)) == 1

    def test_queue_get_under_lock_triggers(self):
        snippet = """
        def f(self):
            with self._lock:
                item = self._free.get(timeout=1.0)
        """
        assert len(findings_for("RPR103", snippet)) == 1

    def test_future_result_under_lock_triggers(self):
        snippet = """
        def f(self):
            with self._lock:
                value = future.result()
        """
        assert len(findings_for("RPR103", snippet)) == 1

    def test_foreign_acquire_under_lock_triggers(self):
        snippet = """
        def f(self):
            with self._lock:
                self._other_lock.acquire()
        """
        assert len(findings_for("RPR103", snippet)) == 1

    def test_condition_wait_on_held_condition_does_not_trigger(self):
        # Condition.wait releases the lock it is waiting on — the one
        # legitimate blocking call inside its own `with` block.
        snippet = """
        def f(self):
            with self._cond:
                while not self._ready:
                    self._cond.wait(0.5)
        """
        assert findings_for("RPR103", snippet) == []

    def test_str_join_and_dict_get_do_not_trigger(self):
        snippet = """
        def f(self):
            with self._lock:
                label = ", ".join(self._names)
                value = self._cache.get("key")
        """
        assert findings_for("RPR103", snippet) == []

    def test_blocking_call_outside_lock_does_not_trigger(self):
        snippet = """
        import time

        def f(self):
            with self._lock:
                depth = len(self._queue)
            time.sleep(0.1)
        """
        assert findings_for("RPR103", snippet) == []


# ---------------------------------------------------------------------------
# RPR104 — unnamed / implicit-daemon threads
# ---------------------------------------------------------------------------


class TestRPR104:
    def test_thread_without_name_triggers(self):
        snippet = "import threading\nt = threading.Thread(target=f, daemon=True)\n"
        found = findings_for("RPR104", snippet)
        assert len(found) == 1 and "name=" in found[0].message

    def test_thread_without_daemon_triggers(self):
        snippet = "import threading\nt = threading.Thread(target=f, name='worker')\n"
        found = findings_for("RPR104", snippet)
        assert len(found) == 1 and "daemon=" in found[0].message

    def test_fully_specified_thread_does_not_trigger(self):
        snippet = (
            "import threading\n"
            "t = threading.Thread(target=f, name='worker', daemon=True)\n"
        )
        assert findings_for("RPR104", snippet) == []


# ---------------------------------------------------------------------------
# RPR105 — broad except that swallows the error
# ---------------------------------------------------------------------------


class TestRPR105:
    def test_swallowing_broad_except_triggers(self):
        snippet = """
        def f():
            try:
                work()
            except Exception:
                pass
        """
        assert len(findings_for("RPR105", snippet)) == 1

    def test_bare_except_triggers(self):
        snippet = """
        def f():
            try:
                work()
            except:
                return None
        """
        assert len(findings_for("RPR105", snippet)) == 1

    def test_reraise_does_not_trigger(self):
        snippet = """
        def f():
            try:
                work()
            except Exception:
                cleanup()
                raise
        """
        assert findings_for("RPR105", snippet) == []

    def test_routing_the_exception_does_not_trigger(self):
        snippet = """
        def f(self):
            try:
                work()
            except Exception as error:
                self.telemetry.record_failure(error)
        """
        assert findings_for("RPR105", snippet) == []

    def test_narrow_except_does_not_trigger(self):
        snippet = """
        def f():
            try:
                work()
            except OSError:
                pass
        """
        assert findings_for("RPR105", snippet) == []


# ---------------------------------------------------------------------------
# RPR106 — unlocked mutation in @thread_shared classes
# ---------------------------------------------------------------------------


class TestRPR106:
    def test_unlocked_attribute_write_triggers(self):
        snippet = """
        import threading
        from repro.concurrency import thread_shared

        @thread_shared
        class Shared:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                self._count += 1
        """
        found = findings_for("RPR106", snippet)
        assert len(found) == 1 and "_count" in found[0].message

    def test_unlocked_container_mutation_triggers(self):
        snippet = """
        import threading
        from repro.concurrency import thread_shared

        @thread_shared
        class Shared:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def push(self, item):
                self._items.append(item)
        """
        assert len(findings_for("RPR106", snippet)) == 1

    def test_locked_write_does_not_trigger(self):
        snippet = """
        import threading
        from repro.concurrency import thread_shared

        @thread_shared
        class Shared:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                with self._lock:
                    self._count += 1
        """
        assert findings_for("RPR106", snippet) == []

    def test_init_and_locked_helpers_are_exempt(self):
        snippet = """
        import threading
        from repro.concurrency import thread_shared

        @thread_shared
        class Shared:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def _bump_locked(self):
                self._count += 1

            def bump(self):
                with self._lock:
                    self._bump_locked()
        """
        assert findings_for("RPR106", snippet) == []

    def test_unannotated_class_does_not_trigger(self):
        snippet = """
        import threading

        class Unshared:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                self._count += 1
        """
        assert findings_for("RPR106", snippet) == []


# ---------------------------------------------------------------------------
# the shipped tree + the CLI
# ---------------------------------------------------------------------------


class TestAcceptance:
    def test_shipped_source_tree_lints_clean(self):
        report = run_lint([SRC_ROOT])
        assert report.files_scanned > 50
        assert report.unsuppressed == [], format_text(report)

    def test_every_suppression_in_src_is_still_needed(self):
        # A stale `# repro: noqa` (nothing fires on that line any more) is
        # masked dead weight; this keeps the justified list minimal.
        report = run_lint([SRC_ROOT])
        assert report.suppressed, "expected the documented justified suppressions"
        for finding in report.suppressed:
            assert finding.code in RULE_REGISTRY

    def test_cli_exit_zero_on_clean_tree(self, capsys):
        assert main(["lint", str(SRC_ROOT)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_exit_one_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "core" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import time\nstart = time.time()\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "RPR102" in capsys.readouterr().out

    def test_cli_json_format(self, tmp_path, capsys):
        bad = tmp_path / "serve" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import threading\nt = threading.Thread(target=min)\n")
        assert main(["lint", "--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"RPR104": 1}

    def test_cli_select_filters_rules(self, tmp_path, capsys):
        bad = tmp_path / "serve" / "bad.py"
        bad.parent.mkdir()
        bad.write_text(
            "import time\nimport threading\n"
            "start = time.time()\n"
            "t = threading.Thread(target=min)\n"
        )
        assert main(["lint", "--select", "RPR104", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RPR104" in out and "RPR102" not in out

    def test_cli_show_suppressed(self, tmp_path, capsys):
        bad = tmp_path / "serve" / "bad.py"
        bad.parent.mkdir()
        bad.write_text(
            "import time\nstart = time.time()  # repro: noqa[RPR102]\n"
        )
        assert main(["lint", "--show-suppressed", str(tmp_path)]) == 0
        assert "[suppressed]" in capsys.readouterr().out
