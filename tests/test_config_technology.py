"""Unit tests for TechnologyConfig validation and derived quantities."""

import pytest

from repro.config.technology import (
    MMI_CROSSING_LOSS_DB_AS_PRINTED,
    SRAM_AREA_MM2_PER_MB_AS_PRINTED,
    TechnologyConfig,
)
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_loss_constants(self):
        tech = TechnologyConfig()
        assert tech.grating_coupler_loss_db == pytest.approx(2.0)
        assert tech.splitter_tree_loss_db == pytest.approx(0.8)
        assert tech.waveguide_loss_db_per_cm == pytest.approx(3.0)
        assert tech.odac_oma_penalty_db == pytest.approx(4.0)
        assert tech.laser_wall_plug_efficiency == pytest.approx(0.15)

    def test_paper_energy_constants(self):
        tech = TechnologyConfig()
        assert tech.odac_driver_energy_per_sample_j == pytest.approx(168e-15)
        assert tech.tia_power_w == pytest.approx(2.25e-3)
        assert tech.adc_power_w == pytest.approx(25e-3)
        assert tech.serdes_energy_per_bit_j == pytest.approx(100e-15)
        assert tech.sram_energy_per_bit_j == pytest.approx(50e-15)
        assert tech.dram_energy_per_bit_j == pytest.approx(3.9e-12)
        assert tech.dram_pcie_energy_per_bit_j == pytest.approx(15e-12)
        assert tech.pcm_programming_energy_j == pytest.approx(100e-12)
        assert tech.pcm_programming_time_s == pytest.approx(100e-9)

    def test_mmi_crossing_default_uses_cited_device_not_printed_value(self):
        tech = TechnologyConfig()
        assert tech.mmi_crossing_loss_db < MMI_CROSSING_LOSS_DB_AS_PRINTED
        assert tech.mmi_crossing_loss_db == pytest.approx(0.018)

    def test_printed_constants_are_available_for_sensitivity_studies(self):
        assert MMI_CROSSING_LOSS_DB_AS_PRINTED == pytest.approx(1.8)
        assert SRAM_AREA_MM2_PER_MB_AS_PRINTED == pytest.approx(0.45)

    def test_int6_precision_defaults(self):
        tech = TechnologyConfig()
        assert tech.weight_bits == 6
        assert tech.activation_bits == 6
        assert tech.weight_levels == 64
        assert tech.pcm_levels == 64


class TestDerived:
    def test_unit_cell_area(self):
        tech = TechnologyConfig(unit_cell_pitch_m=30e-6)
        assert tech.unit_cell_area_mm2 == pytest.approx(0.0009)

    def test_odac_driver_power_at_reference_rate(self):
        tech = TechnologyConfig()
        assert tech.odac_driver_power_w_at == pytest.approx(1.68e-3)

    def test_with_updates_creates_modified_copy(self):
        base = TechnologyConfig()
        changed = base.with_updates(weight_bits=8, adc_power_w=10e-3)
        assert changed.weight_bits == 8
        assert changed.adc_power_w == pytest.approx(10e-3)
        assert base.weight_bits == 6  # original untouched

    def test_with_updates_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError):
            TechnologyConfig().with_updates(not_a_field=1.0)


class TestValidation:
    def test_rejects_zero_efficiency(self):
        with pytest.raises(ConfigurationError):
            TechnologyConfig(laser_wall_plug_efficiency=0.0)

    def test_rejects_efficiency_above_one(self):
        with pytest.raises(ConfigurationError):
            TechnologyConfig(laser_wall_plug_efficiency=1.5)

    def test_rejects_negative_loss(self):
        with pytest.raises(ConfigurationError):
            TechnologyConfig(grating_coupler_loss_db=-1.0)

    def test_rejects_bad_pcm_levels(self):
        with pytest.raises(ConfigurationError):
            TechnologyConfig(pcm_levels=1)

    def test_rejects_bad_pcm_transmission_range(self):
        with pytest.raises(ConfigurationError):
            TechnologyConfig(pcm_min_transmission=0.9, pcm_max_transmission=0.5)

    def test_rejects_bad_precision(self):
        with pytest.raises(ConfigurationError):
            TechnologyConfig(weight_bits=0)

    def test_rejects_accumulator_narrower_than_output(self):
        with pytest.raises(ConfigurationError):
            TechnologyConfig(accumulator_bits=4, output_bits=6)

    def test_rejects_bad_parallelism(self):
        with pytest.raises(ConfigurationError):
            TechnologyConfig(pcm_program_parallelism="diagonal")

    def test_rejects_inverted_laser_limits(self):
        with pytest.raises(ConfigurationError):
            TechnologyConfig(laser_min_output_power_w=2.0, laser_max_output_power_w=1.0)
