"""Unit tests for the coherent receiver, phase shifter and laser models."""

import math

import pytest

from repro.errors import DeviceModelError
from repro.photonics import (
    BalancedPhotodiode,
    CoherentReceiverFrontEnd,
    LaserSource,
    ThermalPhaseShifter,
)


class TestBalancedPhotodiode:
    def test_balanced_current_formula(self):
        pd = BalancedPhotodiode(responsivity_a_per_w=1.0)
        current = pd.balanced_current(1e-3, 1e-6)
        assert current == pytest.approx(2.0 * math.sqrt(1e-3 * 1e-6))

    def test_balanced_current_grows_with_both_powers(self):
        pd = BalancedPhotodiode()
        assert pd.balanced_current(1e-3, 4e-6) > pd.balanced_current(1e-3, 1e-6)
        assert pd.balanced_current(4e-3, 1e-6) > pd.balanced_current(1e-3, 1e-6)

    def test_shot_noise_grows_with_power(self):
        pd = BalancedPhotodiode()
        assert pd.shot_noise_current_a(1e-3) > pd.shot_noise_current_a(1e-6)

    def test_rejects_negative_power(self):
        with pytest.raises(DeviceModelError):
            BalancedPhotodiode().balanced_current(-1.0, 1e-6)


class TestCoherentReceiverFrontEnd:
    def test_snr_improves_with_signal_power(self):
        rx = CoherentReceiverFrontEnd()
        assert rx.snr(1e-3, 1e-5) > rx.snr(1e-3, 1e-7)

    def test_effective_bits_monotonic_in_signal(self):
        rx = CoherentReceiverFrontEnd()
        assert rx.effective_bits(1e-3, 1e-5) >= rx.effective_bits(1e-3, 1e-7)

    def test_minimum_signal_power_achieves_target_bits(self):
        rx = CoherentReceiverFrontEnd()
        target = 6.0
        power = rx.minimum_signal_power_for_bits(target, lo_power_w=1e-3)
        assert rx.effective_bits(1e-3, power) >= target - 0.05

    def test_minimum_signal_power_zero_for_zero_bits(self):
        assert CoherentReceiverFrontEnd().minimum_signal_power_for_bits(0.0) == 0.0

    def test_shot_noise_limited_photon_count_reasonable(self):
        rx = CoherentReceiverFrontEnd()
        photons = rx.shot_noise_limited_photons_per_symbol(6.0)
        assert 100 < photons < 1e6

    def test_output_voltage_scales_with_transimpedance(self):
        small = CoherentReceiverFrontEnd(tia_transimpedance_ohm=1e3)
        large = CoherentReceiverFrontEnd(tia_transimpedance_ohm=10e3)
        assert large.output_voltage(1e-3, 1e-6) == pytest.approx(
            10 * small.output_voltage(1e-3, 1e-6)
        )


class TestThermalPhaseShifter:
    def test_power_for_pi_phase(self):
        ps = ThermalPhaseShifter(power_per_pi_w=20e-3)
        assert ps.power_for_phase(math.pi) == pytest.approx(20e-3)
        assert ps.power_for_phase(math.pi / 2) == pytest.approx(10e-3)

    def test_apply_rotates_phase(self):
        ps = ThermalPhaseShifter(insertion_loss_db=0.0)
        out = ps.apply(1.0 + 0j, math.pi / 2)
        assert out.real == pytest.approx(0.0, abs=1e-12)
        assert out.imag == pytest.approx(1.0)

    def test_correction_phase_cancels_error(self):
        ps = ThermalPhaseShifter()
        error = 0.7
        correction = ps.correction_phase(error)
        assert (error + correction) % (2 * math.pi) == pytest.approx(0.0, abs=1e-12)

    def test_apply_rejects_out_of_range_phase(self):
        with pytest.raises(DeviceModelError):
            ThermalPhaseShifter().apply(1.0, 100.0)


class TestLaserSource:
    def test_electrical_power_uses_wall_plug_efficiency(self):
        laser = LaserSource(wall_plug_efficiency=0.15)
        assert laser.electrical_power_w(0.15) == pytest.approx(1.0)

    def test_optical_power_round_trip(self):
        laser = LaserSource(wall_plug_efficiency=0.25)
        assert laser.optical_power_w(laser.electrical_power_w(0.1)) == pytest.approx(0.1)

    def test_clamp_raises_below_minimum_to_minimum(self):
        laser = LaserSource(min_output_power_w=1e-3)
        assert laser.clamp_output_power(1e-6) == pytest.approx(1e-3)

    def test_clamp_rejects_requests_above_maximum(self):
        laser = LaserSource(max_output_power_w=1.0)
        with pytest.raises(DeviceModelError):
            laser.clamp_output_power(2.0)

    def test_rin_fraction_scales_with_bandwidth(self):
        laser = LaserSource()
        assert laser.rin_power_fraction(10e9) == pytest.approx(10 * laser.rin_power_fraction(1e9))

    def test_rejects_bad_efficiency(self):
        with pytest.raises(DeviceModelError):
            LaserSource(wall_plug_efficiency=0.0)
