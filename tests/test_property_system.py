"""Property-based tests on the end-to-end system model (cheap LeNet workload)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChipConfig, SramConfig
from repro.nn import build_lenet5
from repro.perf.metrics import evaluate_runtime
from repro.scalesim.simulator import simulate_network

NETWORK = build_lenet5()

array_dim = st.sampled_from([8, 16, 32, 64])
batch = st.sampled_from([1, 2, 4, 8, 16])
cores = st.sampled_from([1, 2])


def make_config(rows, columns, batch_size, num_cores, input_mb=0.5):
    return ChipConfig(
        rows=rows,
        columns=columns,
        batch_size=batch_size,
        num_cores=num_cores,
        sram=SramConfig(input_mb=input_mb, filter_mb=0.25, output_mb=0.25, accumulator_mb=0.25),
    )


class TestSystemInvariants:
    @given(array_dim, array_dim, batch, cores)
    @settings(max_examples=30, deadline=None)
    def test_metrics_are_positive_and_consistent(self, rows, columns, batch_size, num_cores):
        config = make_config(rows, columns, batch_size, num_cores)
        runtime = simulate_network(NETWORK, config)
        metrics = evaluate_runtime(runtime)
        assert metrics.inferences_per_second > 0
        assert metrics.power_w > 0
        assert metrics.area_mm2 > 0
        assert metrics.energy_per_inference_j > 0
        assert 0 < metrics.mac_utilization <= 1.0
        assert metrics.ips_per_watt == pytest.approx(
            metrics.inferences_per_second / metrics.power_w
        )
        # Energy conservation: average power times latency equals batch energy.
        assert metrics.power_w * runtime.batch_latency_s == pytest.approx(
            metrics.energy_per_inference_j * runtime.batch_size, rel=1e-9
        )

    @given(array_dim, array_dim, batch)
    @settings(max_examples=20, deadline=None)
    def test_dual_core_never_reduces_ips_and_keeps_ips_per_watt(self, rows, columns, batch_size):
        single = evaluate_runtime(
            simulate_network(NETWORK, make_config(rows, columns, batch_size, 1))
        )
        dual = evaluate_runtime(
            simulate_network(NETWORK, make_config(rows, columns, batch_size, 2))
        )
        assert dual.inferences_per_second >= single.inferences_per_second * (1 - 1e-9)
        # Energy-centric power model: efficiency stays within a modest band.
        # (It can legitimately drift upwards on tiny programming-bound configs,
        # where halving the runtime also halves the static-energy share.)
        assert 0.7 < dual.ips_per_watt / single.ips_per_watt < 1.5

    @given(array_dim, batch)
    @settings(max_examples=20, deadline=None)
    def test_throughput_never_decreases_with_array_size(self, columns, batch_size):
        small = simulate_network(NETWORK, make_config(16, columns, batch_size, 2))
        large = simulate_network(NETWORK, make_config(64, columns, batch_size, 2))
        assert large.inferences_per_second >= small.inferences_per_second * (1 - 1e-9)
        assert large.total_compute_cycles <= small.total_compute_cycles

    @given(array_dim, array_dim, st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_batch_does_not_change_per_inference_compute(self, rows, columns, batch_size):
        one = simulate_network(NETWORK, make_config(rows, columns, 1, 1))
        many = simulate_network(NETWORK, make_config(rows, columns, batch_size, 1))
        assert many.total_compute_cycles == pytest.approx(
            one.total_compute_cycles * batch_size, rel=1e-12
        )
        # Programming passes per *batch* are batch-independent, so per-inference
        # programming work strictly shrinks with batching.
        assert many.total_programming_passes == one.total_programming_passes

    @given(array_dim, array_dim, batch)
    @settings(max_examples=20, deadline=None)
    def test_bigger_input_sram_never_increases_dram_traffic_or_power(
        self, rows, columns, batch_size
    ):
        starved = simulate_network(
            NETWORK, make_config(rows, columns, batch_size, 2, input_mb=0.03125)
        )
        roomy = simulate_network(
            NETWORK, make_config(rows, columns, batch_size, 2, input_mb=4.0)
        )
        assert roomy.total_dram_bits <= starved.total_dram_bits + 1e-6

    @given(array_dim, array_dim, batch)
    @settings(max_examples=15, deadline=None)
    def test_pcie_dram_only_changes_power_not_throughput(self, rows, columns, batch_size):
        hbm_cfg = make_config(rows, columns, batch_size, 2)
        pcie_cfg = hbm_cfg.with_updates(dram_kind="pcie")
        hbm = evaluate_runtime(simulate_network(NETWORK, hbm_cfg))
        pcie = evaluate_runtime(simulate_network(NETWORK, pcie_cfg))
        assert pcie.power_w >= hbm.power_w
        # Throughput may only change if the PCIe bandwidth bound bites.
        assert pcie.inferences_per_second <= hbm.inferences_per_second * (1 + 1e-9)
