"""Unit tests for the directional-coupler model."""

import pytest

from repro.errors import DeviceModelError
from repro.photonics import DirectionalCoupler


class TestCouplerSplitting:
    def test_fifty_fifty_coupler_splits_field_equally(self):
        dc = DirectionalCoupler(kappa=0.5, excess_loss_db=0.0)
        through, cross = dc.split(1.0 + 0j)
        assert abs(through) == pytest.approx(abs(cross))
        assert abs(through) == pytest.approx(0.5**0.5)

    def test_power_conservation_without_excess_loss(self):
        for kappa in (0.0, 0.1, 0.37, 0.5, 0.9, 1.0):
            dc = DirectionalCoupler(kappa=kappa, excess_loss_db=0.0)
            assert dc.through_power + dc.cross_power == pytest.approx(1.0)
            assert dc.is_power_conserving()

    def test_excess_loss_reduces_both_outputs(self):
        lossless = DirectionalCoupler(kappa=0.3, excess_loss_db=0.0)
        lossy = DirectionalCoupler(kappa=0.3, excess_loss_db=0.5)
        assert lossy.through_power < lossless.through_power
        assert lossy.cross_power < lossless.cross_power
        assert lossy.is_power_conserving()

    def test_cross_port_has_quadrature_phase(self):
        dc = DirectionalCoupler(kappa=0.5, excess_loss_db=0.0)
        _, cross = dc.split(1.0 + 0j)
        assert cross.real == pytest.approx(0.0, abs=1e-12)
        assert cross.imag > 0

    def test_full_coupling_routes_everything_to_cross_port(self):
        dc = DirectionalCoupler(kappa=1.0, excess_loss_db=0.0)
        through, cross = dc.split(1.0)
        assert abs(through) == pytest.approx(0.0)
        assert abs(cross) == pytest.approx(1.0)


class TestCouplerCombining:
    def test_combine_adds_injected_field(self):
        dc = DirectionalCoupler(kappa=0.25, excess_loss_db=0.0)
        combined = dc.combine(1.0 + 0j, 0.0 + 0j)
        only_injection = dc.combine(0.0 + 0j, 1.0 + 0j)
        assert abs(combined) == pytest.approx((1 - 0.25) ** 0.5)
        assert abs(only_injection) == pytest.approx(0.25**0.5)


class TestCouplerValidation:
    def test_rejects_kappa_outside_unit_interval(self):
        with pytest.raises(DeviceModelError):
            DirectionalCoupler(kappa=-0.1)
        with pytest.raises(DeviceModelError):
            DirectionalCoupler(kappa=1.1)

    def test_rejects_negative_excess_loss(self):
        with pytest.raises(DeviceModelError):
            DirectionalCoupler(kappa=0.5, excess_loss_db=-0.1)
