"""Unit tests for the per-layer SRAM/DRAM traffic model."""

import pytest

from repro.config import ChipConfig, SramConfig
from repro.memory.hierarchy import MemorySystem
from repro.nn import ConvLayer, Network, TensorShape
from repro.nn.im2col import conv_to_gemm
from repro.scalesim.tiling import GemmTiling
from repro.scalesim.traffic import compute_layer_traffic


def build_single_conv_network(height=16, width=16, channels=8, out_channels=16):
    layer = ConvLayer("conv", out_channels=out_channels, kernel_size=3, padding=1, bias=False)
    return Network("single_conv", TensorShape(height, width, channels), [layer])


def traffic_for(config: ChipConfig, is_first=True, network=None):
    network = network or build_single_conv_network()
    info = network.shape_infos[0]
    gemm = conv_to_gemm(info.layer, info.input_shape)
    tiling = GemmTiling(gemm=gemm, rows=config.rows, columns=config.columns)
    return (
        compute_layer_traffic(info, gemm, tiling, config, is_first_crossbar_layer=is_first),
        gemm,
        tiling,
        info,
    )


class TestWeightsTraffic:
    def test_weights_fetched_once_per_batch(self):
        config = ChipConfig(rows=16, columns=16, batch_size=4)
        traffic, gemm, _, _ = traffic_for(config)
        weight_bits = gemm.weight_elements * config.technology.weight_bits
        assert traffic.filter_sram_write_bits == pytest.approx(weight_bits)
        assert traffic.filter_sram_read_bits == pytest.approx(weight_bits)
        # DRAM reads include weights + first-layer inputs.
        assert traffic.dram_read_bits >= weight_bits


class TestInputTraffic:
    def test_first_layer_input_always_comes_from_dram(self):
        config = ChipConfig(rows=16, columns=16, batch_size=2)
        traffic, gemm, _, info = traffic_for(config, is_first=True)
        input_bits = info.input_shape.num_elements * 6 * 2
        weight_bits = gemm.weight_elements * 6
        assert traffic.dram_read_bits == pytest.approx(input_bits + weight_bits)

    def test_interior_layer_input_forwarded_on_chip_when_it_fits(self):
        config = ChipConfig(
            rows=16,
            columns=16,
            batch_size=2,
            sram=SramConfig(input_mb=8.0, filter_mb=1.0, output_mb=8.0, accumulator_mb=1.0),
        )
        traffic, gemm, _, _ = traffic_for(config, is_first=False)
        weight_bits = gemm.weight_elements * 6
        # Output SRAM (8 MB) holds the entire small input: no activation DRAM traffic.
        assert traffic.dram_read_bits == pytest.approx(weight_bits)

    def test_input_sram_reads_scale_with_column_tiles(self):
        small_cols = ChipConfig(rows=16, columns=4, batch_size=1)
        large_cols = ChipConfig(rows=16, columns=16, batch_size=1)
        traffic_small, gemm, tiling_small, _ = traffic_for(small_cols)
        traffic_large, _, tiling_large, _ = traffic_for(large_cols)
        assert tiling_small.n_tiles > tiling_large.n_tiles
        assert traffic_small.input_sram_read_bits > traffic_large.input_sram_read_bits

    def test_refetch_penalty_when_input_exceeds_input_sram(self):
        # Tiny input SRAM forces re-fetches for every extra column tile.
        tiny_sram = SramConfig(input_mb=0.01, filter_mb=0.5, output_mb=0.01, accumulator_mb=0.5)
        roomy_sram = SramConfig(input_mb=8.0, filter_mb=0.5, output_mb=0.01, accumulator_mb=0.5)
        network = build_single_conv_network(32, 32, 16, out_channels=64)
        starved = ChipConfig(rows=16, columns=8, batch_size=8, sram=tiny_sram)
        roomy = ChipConfig(rows=16, columns=8, batch_size=8, sram=roomy_sram)
        traffic_starved, *_ = traffic_for(starved, is_first=False, network=network)
        traffic_roomy, *_ = traffic_for(roomy, is_first=False, network=network)
        assert traffic_starved.dram_read_bits > traffic_roomy.dram_read_bits


class TestOutputAndPsumTraffic:
    def test_output_spills_when_output_sram_too_small(self):
        small_out = ChipConfig(
            rows=16,
            columns=16,
            batch_size=8,
            sram=SramConfig(input_mb=8.0, filter_mb=1.0, output_mb=0.01, accumulator_mb=1.0),
        )
        big_out = ChipConfig(
            rows=16,
            columns=16,
            batch_size=8,
            sram=SramConfig(input_mb=8.0, filter_mb=1.0, output_mb=8.0, accumulator_mb=1.0),
        )
        spill, *_ = traffic_for(small_out)
        no_spill, *_ = traffic_for(big_out)
        assert spill.dram_write_bits > 0
        assert no_spill.dram_write_bits == pytest.approx(0.0)

    def test_accumulator_traffic_scales_with_k_tiles(self):
        one_k_tile = ChipConfig(rows=128, columns=16, batch_size=1)
        many_k_tiles = ChipConfig(rows=16, columns=16, batch_size=1)
        traffic_one, _, tiling_one, _ = traffic_for(one_k_tile)
        traffic_many, _, tiling_many, _ = traffic_for(many_k_tiles)
        assert tiling_one.k_tiles == 1
        assert tiling_many.k_tiles > 1
        assert traffic_one.accumulator_sram_read_bits == pytest.approx(0.0)
        assert traffic_many.accumulator_sram_read_bits > 0
        assert traffic_many.accumulator_sram_write_bits > traffic_one.accumulator_sram_write_bits


class TestRecordConversion:
    def test_record_totals_match_traffic(self):
        config = ChipConfig(rows=16, columns=16, batch_size=2)
        traffic, *_ = traffic_for(config)
        record = traffic.to_record()
        assert record.bits(MemorySystem.DRAM) == pytest.approx(traffic.dram_bits)
        assert record.total_bits == pytest.approx(traffic.sram_bits + traffic.dram_bits)

    def test_all_traffic_is_non_negative(self):
        config = ChipConfig(rows=8, columns=8, batch_size=1)
        traffic, *_ = traffic_for(config)
        assert traffic.sram_bits >= 0
        assert traffic.dram_bits >= 0
