"""Unit tests for the latency model (single vs dual core, DRAM bound)."""

import pytest

from repro.config import ChipConfig
from repro.errors import SimulationError
from repro.nn.im2col import GemmShape
from repro.scalesim.latency import compute_layer_latency
from repro.scalesim.tiling import GemmTiling


def tiling_for(m=1000, k=256, n=256, rows=128, columns=128):
    return GemmTiling(gemm=GemmShape("layer", m=m, k=k, n=n), rows=rows, columns=columns)


class TestCycleAccounting:
    def test_compute_cycles_match_tiling(self):
        config = ChipConfig(rows=128, columns=128, batch_size=4, num_cores=1)
        tiling = tiling_for()
        latency = compute_layer_latency("layer", tiling, config)
        assert latency.compute_cycles == tiling.compute_cycles(4)
        assert latency.programming_passes == tiling.num_tiles

    def test_single_core_latency_is_programming_plus_compute(self):
        config = ChipConfig(rows=128, columns=128, batch_size=4, num_cores=1)
        tiling = tiling_for()
        latency = compute_layer_latency("layer", tiling, config)
        assert latency.latency_s == pytest.approx(
            latency.programming_time_s + latency.compute_time_s
        )

    def test_dual_core_hides_programming_when_compute_is_longer(self):
        # compute per tile (m * batch cycles at 10 GHz) >> 100 ns programming.
        config = ChipConfig(rows=128, columns=128, batch_size=32, num_cores=2)
        tiling = tiling_for(m=4000)
        latency = compute_layer_latency("layer", tiling, config)
        exposed_overhead = latency.latency_s - latency.compute_time_s
        assert exposed_overhead == pytest.approx(config.programming_time_per_array_s, rel=1e-6)

    def test_dual_core_halves_programming_stall_when_compute_is_tiny(self):
        config = ChipConfig(rows=128, columns=128, batch_size=1, num_cores=2)
        tiling = tiling_for(m=10)  # 10 cycles of compute vs 1000 cycles programming
        latency = compute_layer_latency("layer", tiling, config)
        programming = config.programming_time_per_array_s
        compute_tile = 10 * config.mac_cycle_time_s
        tiles = tiling.num_tiles
        expected = ((tiles + 1) // 2) * (programming + compute_tile) + (
            compute_tile if tiles % 2 == 0 else 0.0
        )
        assert latency.latency_s == pytest.approx(expected)
        # The two cores overlap their programming passes, so the layer runs in
        # roughly half the single-core programming time.
        single = compute_layer_latency(
            "layer", tiling, config.with_updates(num_cores=1)
        )
        assert latency.latency_s < 0.6 * single.latency_s

    def test_dual_core_formula_matches_event_driven_scheduler(self):
        from repro.crossbar.dual_core import DualCoreCrossbar, ProgrammingJob

        config = ChipConfig(rows=128, columns=128, batch_size=2, num_cores=2)
        for m in (10, 500, 1000, 5000):
            tiling = tiling_for(m=m)
            latency = compute_layer_latency("layer", tiling, config)
            jobs = [
                ProgrammingJob(
                    f"tile{i}",
                    programming_time_s=config.programming_time_per_array_s,
                    compute_time_s=tiling.compute_cycles_per_tile(2) * config.mac_cycle_time_s,
                )
                for i in range(tiling.num_tiles)
            ]
            scheduled = DualCoreCrossbar(2).makespan_s(jobs)
            assert latency.latency_s == pytest.approx(scheduled, rel=1e-9)

    def test_dual_core_never_slower_than_single_core(self):
        tiling = tiling_for(m=300)
        for batch in (1, 4, 32):
            single = compute_layer_latency(
                "l", tiling, ChipConfig(rows=128, columns=128, batch_size=batch, num_cores=1)
            )
            dual = compute_layer_latency(
                "l", tiling, ChipConfig(rows=128, columns=128, batch_size=batch, num_cores=2)
            )
            assert dual.latency_s <= single.latency_s + 1e-15


class TestDramBound:
    def test_large_dram_traffic_bounds_latency(self):
        config = ChipConfig(rows=128, columns=128, batch_size=1, num_cores=2)
        tiling = tiling_for(m=10)
        huge_traffic = 1e12  # bits
        latency = compute_layer_latency("layer", tiling, config, dram_bits=huge_traffic)
        assert latency.dram_bound
        assert latency.latency_s == pytest.approx(
            huge_traffic / config.technology.dram_bandwidth_bits_per_s
        )

    def test_no_dram_bound_without_traffic(self):
        config = ChipConfig(rows=128, columns=128, batch_size=1)
        latency = compute_layer_latency("layer", tiling_for(), config, dram_bits=0.0)
        assert not latency.dram_bound

    def test_rejects_negative_dram_bits(self):
        config = ChipConfig()
        with pytest.raises(SimulationError):
            compute_layer_latency("layer", tiling_for(), config, dram_bits=-1.0)

    def test_rejects_bad_bandwidth(self):
        config = ChipConfig()
        with pytest.raises(SimulationError):
            compute_layer_latency(
                "layer", tiling_for(), config, dram_bits=1.0, dram_bandwidth_bits_per_s=0.0
            )
