"""Tests for the simulation framework cache and the sweep utilities."""

import pytest

from repro.core.simulation import SimulationFramework
from repro.core.sweep import best_by, sweep_array_sizes, sweep_batch_sizes, sweep_input_sram
from repro.errors import SimulationError
from repro.nn import build_lenet5


@pytest.fixture(scope="module")
def lenet_framework():
    return SimulationFramework(build_lenet5())


class TestSimulationFramework:
    def test_evaluate_caches_results(self, lenet_framework, tiny_config):
        lenet_framework.clear_cache()
        first = lenet_framework.evaluate(tiny_config)
        assert lenet_framework.cache_size == 1
        second = lenet_framework.evaluate(tiny_config)
        assert first is second

    def test_equal_configs_share_cache_entries(self, lenet_framework, tiny_config):
        lenet_framework.clear_cache()
        lenet_framework.evaluate(tiny_config)
        lenet_framework.evaluate(tiny_config.with_updates())  # equal copy
        assert lenet_framework.cache_size == 1

    def test_different_configs_get_distinct_entries(self, lenet_framework, tiny_config):
        lenet_framework.clear_cache()
        lenet_framework.evaluate(tiny_config)
        lenet_framework.evaluate(tiny_config.with_updates(batch_size=4))
        assert lenet_framework.cache_size == 2

    def test_cache_can_be_disabled(self, tiny_config):
        framework = SimulationFramework(build_lenet5(), cache=False)
        framework.evaluate(tiny_config)
        assert framework.cache_size == 0

    def test_requires_a_network(self):
        with pytest.raises(SimulationError):
            SimulationFramework(None)


class TestSweeps:
    def test_array_sweep_covers_grid(self, lenet_framework, tiny_config):
        results = sweep_array_sizes(
            build_lenet5(), tiny_config, rows_values=(8, 16), columns_values=(8, 16),
            framework=lenet_framework,
        )
        assert len(results) == 4
        assert {(r.value("rows"), r.value("columns")) for r in results} == {
            (8.0, 8.0), (8.0, 16.0), (16.0, 8.0), (16.0, 16.0)
        }

    def test_batch_sweep_with_core_counts(self, lenet_framework, tiny_config):
        results = sweep_batch_sizes(
            build_lenet5(), tiny_config, batch_sizes=(1, 4), num_cores_values=(1, 2),
            framework=lenet_framework,
        )
        assert len(results) == 4
        row = results[0].row()
        assert {"batch_size", "num_cores", "ips", "power_w"} <= set(row)

    def test_sram_sweep(self, lenet_framework, tiny_config):
        results = sweep_input_sram(
            build_lenet5(), tiny_config, input_sram_mb_values=(0.25, 1.0), batch_sizes=(2,),
            framework=lenet_framework,
        )
        assert len(results) == 2
        assert results[0].value("input_sram_mb") == pytest.approx(0.25)

    def test_best_by_selects_maximum(self, lenet_framework, tiny_config):
        results = sweep_array_sizes(
            build_lenet5(), tiny_config, rows_values=(8, 16), columns_values=(8,),
            framework=lenet_framework,
        )
        best = best_by(results, "ips")
        assert best.row()["ips"] == max(r.row()["ips"] for r in results)

    def test_best_by_rejects_unknown_metric_and_empty(self, lenet_framework, tiny_config):
        results = sweep_array_sizes(
            build_lenet5(), tiny_config, rows_values=(8,), columns_values=(8,),
            framework=lenet_framework,
        )
        with pytest.raises(SimulationError):
            best_by(results, "nonsense")
        with pytest.raises(SimulationError):
            best_by([], "ips")

    def test_empty_sweep_values_rejected(self, tiny_config):
        with pytest.raises(SimulationError):
            sweep_array_sizes(build_lenet5(), tiny_config, rows_values=(), columns_values=(8,))
        with pytest.raises(SimulationError):
            sweep_batch_sizes(build_lenet5(), tiny_config, batch_sizes=())
        with pytest.raises(SimulationError):
            sweep_input_sram(build_lenet5(), tiny_config, input_sram_mb_values=())
