"""Deterministic equivalence guard for the vectorized functional datapath.

The crossbar datapath was rebuilt around batched GEMM semantics (PR 1); this
module keeps a *slow reference* copy of the seed's per-vector / per-patch
implementations and asserts that, in noiseless mode, the vectorized
``matmul`` / ``linear`` / ``conv2d`` / pooling paths produce **bitwise
identical** outputs.  Any future ulp-level drift in the batched kernels that
leaks through the ADC quantiser fails these tests.
"""

import math

import numpy as np
import pytest

from repro.config import small_test_chip
from repro.core.accelerator import OpticalCrossbarAccelerator
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.crossbar import CrossbarArray, SignedCrossbarEngine
from repro.nn import build_lenet5
from repro.nn.im2col import conv_weights_matrix, im2col_matrix


# ---------------------------------------------------------------------------
# Seed (pre-vectorization) reference implementations, kept verbatim in spirit:
# one input vector / output pixel / pooling window at a time, GEMV kernels only.
# ---------------------------------------------------------------------------


def seed_array_matvec(array: CrossbarArray, vector: np.ndarray, quantize: bool = True):
    """The seed's CrossbarArray.matvec: modulate, GEMV, detect."""
    modulated = array.odac.modulate(np.asarray(vector, dtype=float))
    scale = array.laser_field / (array.rows * math.sqrt(array.columns))
    fields = scale * (modulated @ array.weights)
    raw = fields / scale
    if not quantize:
        return raw
    full_scale = array.adc_full_scale
    levels = (1 << array.technology.output_bits) - 1
    codes = np.clip(np.round(raw / full_scale * levels), 0, levels)
    return codes / levels * full_scale


def seed_array_matmul(array: CrossbarArray, inputs: np.ndarray, quantize: bool = True):
    """The seed's CrossbarArray.matmul: a Python loop of matvec calls."""
    return np.stack([seed_array_matvec(array, vector, quantize) for vector in inputs])


def seed_signed_matvec(engine: SignedCrossbarEngine, inputs: np.ndarray) -> np.ndarray:
    """The seed's SignedCrossbarEngine.matvec (per-vector scale, 4 passes)."""
    inputs = np.asarray(inputs, dtype=float)
    input_scale = float(np.max(np.abs(inputs)))
    if input_scale == 0.0:
        return np.zeros(engine.columns)
    normalised = inputs / input_scale
    positive_in = np.clip(normalised, 0.0, None)
    negative_in = np.clip(-normalised, 0.0, None)
    result = seed_array_matvec(engine.positive_array, positive_in) - seed_array_matvec(
        engine.negative_array, positive_in
    )
    if np.any(negative_in > 0):
        result -= seed_array_matvec(engine.positive_array, negative_in) - seed_array_matvec(
            engine.negative_array, negative_in
        )
    return result * engine.weight_scale * input_scale


def seed_signed_matmul(engine: SignedCrossbarEngine, inputs: np.ndarray) -> np.ndarray:
    return np.stack([seed_signed_matvec(engine, vector) for vector in inputs])


def seed_linear(config, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
    """The seed's OpticalCrossbarAccelerator.linear: re-program every tile per call."""
    weights = np.asarray(weights, dtype=float)
    inputs = np.asarray(inputs, dtype=float)
    single_vector = inputs.ndim == 1
    if single_vector:
        inputs = inputs[None, :]
    k, n = weights.shape
    rows, columns = config.rows, config.columns
    num_vectors = inputs.shape[0]
    result = np.zeros((num_vectors, n))
    for k_start in range(0, k, rows):
        k_end = min(k_start + rows, k)
        tile_rows = k_end - k_start
        for n_start in range(0, n, columns):
            n_end = min(n_start + columns, n)
            tile_cols = n_end - n_start
            tile = np.zeros((rows, columns))
            tile[:tile_rows, :tile_cols] = weights[k_start:k_end, n_start:n_end]
            engine = SignedCrossbarEngine(rows, columns, technology=config.technology)
            engine.program(tile)
            padded_inputs = np.zeros((num_vectors, rows))
            padded_inputs[:, :tile_rows] = inputs[:, k_start:k_end]
            partial = seed_signed_matmul(engine, padded_inputs)
            result[:, n_start:n_end] += partial[:, :tile_cols]
    return result[0] if single_vector else result


def seed_im2col(feature_map: np.ndarray, kernel_size: int, stride: int = 1, padding: int = 0):
    """The seed's per-patch im2col loop."""
    feature_map = np.asarray(feature_map, dtype=float)
    if padding:
        feature_map = np.pad(
            feature_map, ((padding, padding), (padding, padding), (0, 0)), mode="constant"
        )
    padded_h, padded_w = feature_map.shape[:2]
    out_h = (padded_h - kernel_size) // stride + 1
    out_w = (padded_w - kernel_size) // stride + 1
    rows = []
    for out_y in range(out_h):
        for out_x in range(out_w):
            y0 = out_y * stride
            x0 = out_x * stride
            patch = feature_map[y0 : y0 + kernel_size, x0 : x0 + kernel_size, :]
            rows.append(patch.reshape(-1))
    return np.stack(rows, axis=0)


def seed_pool(tensor: np.ndarray, kernel: int, stride: int, padding: int, kind: str):
    """The seed's per-window pooling loops."""
    if padding:
        pad_value = -np.inf if kind == "max" else 0.0
        tensor = np.pad(
            tensor,
            ((padding, padding), (padding, padding), (0, 0)),
            mode="constant",
            constant_values=pad_value,
        )
    height, width, channels = tensor.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    output = np.empty((out_h, out_w, channels))
    for y in range(out_h):
        for x in range(out_w):
            window = tensor[y * stride : y * stride + kernel, x * stride : x * stride + kernel, :]
            output[y, x, :] = window.max(axis=(0, 1)) if kind == "max" else window.mean(axis=(0, 1))
    return output


def seed_conv2d(config, feature_map: np.ndarray, weights: np.ndarray, stride: int, padding: int):
    """The seed's conv2d: per-patch im2col + per-call tile programming."""
    kernel = np.asarray(weights).shape[0]
    unrolled = seed_im2col(feature_map, kernel, stride, padding)
    flat_weights = conv_weights_matrix(weights)
    product = seed_linear(config, flat_weights, unrolled)
    feature_map = np.asarray(feature_map, dtype=float)
    out_h = (feature_map.shape[0] + 2 * padding - kernel) // stride + 1
    out_w = (feature_map.shape[1] + 2 * padding - kernel) // stride + 1
    return product.reshape(out_h, out_w, flat_weights.shape[1])


# ---------------------------------------------------------------------------
# Equivalence assertions
# ---------------------------------------------------------------------------


class TestArrayEquivalence:
    def test_batched_matmul_bitwise_matches_per_vector_loop(self):
        rng = np.random.default_rng(0)
        array = CrossbarArray(64, 64)
        array.program_weights(rng.uniform(0, 1, (64, 64)))
        inputs = rng.uniform(0, 1, (64, 64))
        batched = array.matmul(inputs)
        reference = seed_array_matmul(array, inputs)
        assert batched.dtype == reference.dtype
        assert np.array_equal(batched, reference)

    def test_batched_matmul_many_shapes(self):
        rng = np.random.default_rng(1)
        for rows, columns, num in [(8, 8, 3), (16, 12, 31), (33, 7, 65), (5, 40, 2)]:
            array = CrossbarArray(rows, columns)
            array.program_weights(rng.uniform(0, 1, (rows, columns)))
            inputs = rng.uniform(0, 1, (num, rows))
            assert np.array_equal(array.matmul(inputs), seed_array_matmul(array, inputs))

    def test_matvec_bitwise_matches_seed_matvec(self):
        rng = np.random.default_rng(2)
        array = CrossbarArray(32, 24)
        array.program_weights(rng.uniform(0, 1, (32, 24)))
        for _ in range(10):
            vector = rng.uniform(0, 1, 32)
            assert np.array_equal(array.matvec(vector), seed_array_matvec(array, vector))

    def test_weights_only_noise_model_keeps_bitwise_guarantee(self):
        # weight_programming_std does not enter the field datapath, so the
        # batched path must still match the per-vector loop bitwise.
        from repro.crossbar import CrossbarNoiseModel

        rng = np.random.default_rng(20)
        model = CrossbarNoiseModel(weight_programming_std=0.05)
        array = CrossbarArray(64, 64, noise_model=model)
        array.program_weights(rng.uniform(0, 1, (64, 64)))
        inputs = rng.uniform(0, 1, (64, 64))
        batched = array.matmul(inputs)
        per_vector = np.stack([array.matvec(vector) for vector in inputs])
        assert np.array_equal(batched, per_vector)

    def test_analog_path_close_to_per_vector(self):
        # The unquantised (analog inspection) path only promises ulp-level
        # agreement between GEMM and GEMV kernels, not bitwise identity.
        rng = np.random.default_rng(3)
        array = CrossbarArray(48, 48)
        array.program_weights(rng.uniform(0, 1, (48, 48)))
        inputs = rng.uniform(0, 1, (16, 48))
        batched = array.matmul(inputs, quantize_output=False)
        reference = seed_array_matmul(array, inputs, quantize=False)
        np.testing.assert_allclose(batched, reference, rtol=1e-12, atol=1e-15)


class TestSignedEquivalence:
    def test_mixed_sign_batch_bitwise(self):
        rng = np.random.default_rng(4)
        engine = SignedCrossbarEngine(24, 16)
        engine.program(rng.normal(size=(24, 16)))
        inputs = rng.normal(size=(40, 24))
        inputs[5] = 0.0  # zero vector inside a mixed batch
        inputs[11] = np.abs(inputs[11])  # all-positive vector inside a mixed batch
        assert np.array_equal(engine.matmul(inputs), seed_signed_matmul(engine, inputs))

    def test_nonnegative_batch_bitwise(self):
        rng = np.random.default_rng(5)
        engine = SignedCrossbarEngine(16, 16)
        engine.program(rng.normal(size=(16, 16)))
        inputs = rng.uniform(0, 1, (20, 16))
        assert np.array_equal(engine.matmul(inputs), seed_signed_matmul(engine, inputs))


class TestAcceleratorEquivalence:
    @pytest.fixture()
    def config(self):
        return small_test_chip()

    def test_linear_bitwise_matches_seed_tiling(self, config):
        rng = np.random.default_rng(6)
        accelerator = OpticalCrossbarAccelerator(config)
        weights = rng.normal(size=(20, 11))  # forces tiling on the 8x8 chip
        inputs = rng.uniform(-1, 1, (9, 20))
        assert np.array_equal(
            accelerator.linear(weights, inputs), seed_linear(config, weights, inputs)
        )
        # Repeated call through the warm tile cache stays identical.
        assert np.array_equal(
            accelerator.linear(weights, inputs), seed_linear(config, weights, inputs)
        )

    def test_conv2d_bitwise_matches_seed(self, config):
        rng = np.random.default_rng(7)
        accelerator = OpticalCrossbarAccelerator(config)
        fmap = rng.uniform(0, 1, (7, 6, 3))
        weights = rng.normal(size=(3, 3, 3, 5))
        for stride, padding in [(1, 0), (1, 1), (2, 1)]:
            optical = accelerator.conv2d(fmap, weights, stride=stride, padding=padding)
            reference = seed_conv2d(config, fmap, weights, stride=stride, padding=padding)
            assert np.array_equal(optical, reference)

    def test_batched_conv2d_bitwise_matches_per_image(self, config):
        rng = np.random.default_rng(8)
        accelerator = OpticalCrossbarAccelerator(config)
        fmaps = rng.uniform(0, 1, (4, 6, 6, 2))
        weights = rng.normal(size=(3, 3, 2, 4))
        batched = accelerator.conv2d(fmaps, weights, stride=1, padding=1)
        per_image = np.stack(
            [seed_conv2d(config, fmap, weights, stride=1, padding=1) for fmap in fmaps]
        )
        assert np.array_equal(batched, per_image)


class TestPoolingAndIm2colEquivalence:
    def test_im2col_bitwise_matches_loop(self):
        rng = np.random.default_rng(9)
        for (h, w, c), k, s, p in [
            ((6, 6, 3), 3, 1, 1),
            ((8, 5, 2), 2, 2, 0),
            ((7, 9, 4), 3, 3, 2),
            ((4, 4, 1), 4, 1, 0),
        ]:
            fmap = rng.normal(size=(h, w, c))
            assert np.array_equal(
                im2col_matrix(fmap, k, s, p), seed_im2col(fmap, k, s, p)
            )

    def test_pooling_bitwise_matches_loop(self):
        from repro.core.inference import _avg_pool, _max_pool

        rng = np.random.default_rng(10)
        for (h, w, c), k, s, p in [
            ((8, 8, 3), 2, 2, 0),
            ((11, 9, 4), 3, 2, 1),
            ((7, 7, 2), 3, 1, 0),
        ]:
            batch = rng.normal(size=(3, h, w, c))
            vec_max = _max_pool(batch, k, s, p)
            vec_avg = _avg_pool(batch, k, s, p)
            for i in range(batch.shape[0]):
                assert np.array_equal(vec_max[i], seed_pool(batch[i], k, s, p, "max"))
                assert np.array_equal(vec_avg[i], seed_pool(batch[i], k, s, p, "avg"))


class TestEndToEndEquivalence:
    def test_noiseless_lenet_bitwise_identical_to_seed_execution(self):
        """Full noiseless functional LeNet: batched engine == seed per-step loops."""
        network = build_lenet5(input_size=12)
        weights = generate_random_weights(network, seed=6, scale=0.3)
        config = small_test_chip(rows=64, columns=64)
        engine = FunctionalInferenceEngine(network, weights, config)
        rng = np.random.default_rng(7)
        images = rng.uniform(0, 1, (3, 12, 12, 1))

        def seed_lenet(image):
            # conv1 (pad 2) -> avg pool -> conv2 -> avg pool -> fc1/fc2/fc3,
            # mirroring the seed FunctionalInferenceEngine._execute layer loop.
            current = seed_conv2d(config, image, weights["conv1"], stride=1, padding=2)
            current = np.maximum(current, 0.0)
            current = seed_pool(current, 2, 2, 0, "avg")
            current = seed_conv2d(config, current, weights["conv2"], stride=1, padding=0)
            current = np.maximum(current, 0.0)
            current = seed_pool(current, 2, 2, 0, "avg")
            vector = current.reshape(-1)
            vector = np.maximum(seed_linear(config, weights["fc1"], vector), 0.0)
            vector = np.maximum(seed_linear(config, weights["fc2"], vector), 0.0)
            return seed_linear(config, weights["fc3"], vector)

        expected = np.stack([seed_lenet(image) for image in images])
        per_image = np.stack([engine.run(image) for image in images])
        assert np.array_equal(per_image, expected)
        batched = engine.run_batch(images)
        assert np.array_equal(batched, expected)

    def test_run_batch_bitwise_matches_per_image_run(self):
        network = build_lenet5(input_size=12)
        weights = generate_random_weights(network, seed=11, scale=0.3)
        engine = FunctionalInferenceEngine(
            network, weights, small_test_chip(rows=32, columns=32)
        )
        rng = np.random.default_rng(12)
        images = rng.uniform(0, 1, (5, 12, 12, 1))
        batched = engine.run_batch(images)
        per_image = np.stack([engine.run(image) for image in images])
        assert np.array_equal(batched, per_image)
        reference_batched = engine.run_batch_reference(images)
        reference_per_image = np.stack([engine.run_reference(image) for image in images])
        assert np.array_equal(reference_batched, reference_per_image)
