"""The exception hierarchy must allow catching all library errors at once."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exception_type",
    [
        errors.ConfigurationError,
        errors.DeviceModelError,
        errors.ProgrammingError,
        errors.SimulationError,
        errors.WorkloadError,
        errors.CapacityError,
        errors.OptimizationError,
    ],
)
def test_all_errors_derive_from_repro_error(exception_type):
    assert issubclass(exception_type, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exception_type("boom")


def test_repro_error_is_an_exception():
    assert issubclass(errors.ReproError, Exception)
