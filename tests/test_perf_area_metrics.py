"""Unit tests for the area model and the metrics roll-up."""

import pytest

from repro.config import ChipConfig, optimal_chip
from repro.errors import SimulationError
from repro.perf import AreaModel, evaluate_runtime
from repro.scalesim.simulator import simulate_network


class TestAreaModel:
    def test_sram_dominates_area_at_the_optimal_point(self, optimal_config):
        breakdown = AreaModel(optimal_config).breakdown()
        assert breakdown.dominant_component() == "sram"
        assert breakdown.fraction("sram") > 0.5

    def test_total_area_in_paper_ballpark(self, optimal_config):
        # Paper: 121 mm^2; the reproduction should be within ~2x.
        total = AreaModel(optimal_config).total_area_mm2()
        assert 60.0 < total < 250.0

    def test_dual_core_duplicates_photonics_but_not_sram(self):
        single = AreaModel(optimal_chip(num_cores=1)).breakdown()
        dual = AreaModel(optimal_chip(num_cores=2)).breakdown()
        assert dual.component("photonic_array") == pytest.approx(
            2 * single.component("photonic_array")
        )
        assert dual.component("adc") == pytest.approx(2 * single.component("adc"))
        assert dual.component("sram") == pytest.approx(single.component("sram"))

    def test_area_grows_with_array_size(self):
        small = AreaModel(ChipConfig(rows=32, columns=32)).total_area_mm2()
        large = AreaModel(ChipConfig(rows=256, columns=256)).total_area_mm2()
        assert large > small

    def test_exceeds_cap(self, optimal_config):
        model = AreaModel(optimal_config)
        assert model.exceeds(10.0)
        assert not model.exceeds(10_000.0)
        with pytest.raises(SimulationError):
            model.exceeds(0.0)

    def test_grouped_area_covers_total(self, optimal_config):
        breakdown = AreaModel(optimal_config).breakdown()
        assert sum(breakdown.grouped().values()) == pytest.approx(breakdown.total_mm2)


class TestMetricsRollup:
    def test_metrics_fields_consistent(self, optimal_metrics, optimal_runtime):
        assert optimal_metrics.inferences_per_second == pytest.approx(
            optimal_runtime.inferences_per_second
        )
        assert optimal_metrics.ips_per_watt == pytest.approx(
            optimal_metrics.inferences_per_second / optimal_metrics.power_w
        )
        assert optimal_metrics.effective_tops_per_watt == pytest.approx(
            optimal_metrics.effective_tops / optimal_metrics.power_w
        )
        assert optimal_metrics.ips_per_mm2 == pytest.approx(
            optimal_metrics.inferences_per_second / optimal_metrics.area_mm2
        )

    def test_effective_tops_below_peak(self, optimal_metrics, optimal_config):
        assert optimal_metrics.effective_tops < optimal_config.peak_tops * optimal_config.num_cores

    def test_summary_contains_headline_metrics(self, optimal_metrics):
        summary = optimal_metrics.summary()
        for key in ("ips", "power_w", "ips_per_watt", "area_mm2", "feasible"):
            assert key in summary

    def test_evaluate_runtime_guards_config_mismatch(self, optimal_runtime):
        with pytest.raises(SimulationError):
            evaluate_runtime(optimal_runtime, ChipConfig(rows=16, columns=16))

    def test_evaluate_runtime_accepts_equal_config(self, optimal_runtime, optimal_config):
        metrics = evaluate_runtime(optimal_runtime, optimal_chip())
        assert metrics.config == optimal_config

    def test_feasibility_reflects_laser_budget(self, resnet50):
        huge = ChipConfig(rows=512, columns=512, batch_size=4)
        runtime = simulate_network(resnet50, huge)
        metrics = evaluate_runtime(runtime)
        assert not metrics.feasible
