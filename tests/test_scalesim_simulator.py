"""Integration-level tests of the dataflow simulator on real networks."""

import pytest

from repro.config import ChipConfig, optimal_chip, small_test_chip
from repro.errors import SimulationError
from repro.nn import build_lenet5
from repro.scalesim import CrossbarDataflowSimulator
from repro.scalesim.simulator import simulate_network


class TestSimulatorOnLeNet:
    @pytest.fixture(scope="class")
    def runtime(self, ):
        return simulate_network(build_lenet5(), small_test_chip())

    def test_one_runtime_entry_per_crossbar_layer(self, runtime):
        assert len(runtime.layers) == len(build_lenet5().crossbar_layers)

    def test_total_macs_match_network(self, runtime):
        network = build_lenet5()
        assert runtime.total_macs == pytest.approx(
            network.total_macs * runtime.batch_size
        )

    def test_ips_positive_and_consistent_with_latency(self, runtime):
        assert runtime.inferences_per_second > 0
        assert runtime.inferences_per_second == pytest.approx(
            runtime.batch_size / runtime.batch_latency_s
        )

    def test_utilisation_in_unit_interval(self, runtime):
        assert 0 < runtime.mac_utilization <= 1.0

    def test_traffic_record_contains_all_structures(self, runtime):
        record = runtime.traffic_record
        for name in ("input_sram", "filter_sram", "output_sram", "accumulator_sram", "dram"):
            assert record.bits(name) >= 0
        assert record.total_bits > 0

    def test_layer_summaries_and_summary(self, runtime):
        summaries = runtime.layer_summaries()
        assert len(summaries) == len(runtime.layers)
        assert all(row["compute_cycles"] > 0 for row in summaries)
        top = runtime.summary()
        assert top["inferences_per_second"] == pytest.approx(runtime.inferences_per_second)


class TestSimulatorOnResNet(object):
    def test_resnet_runtime_has_54_crossbar_layers(self, optimal_runtime):
        assert len(optimal_runtime.layers) == 54

    def test_compute_cycles_exceed_ideal_bound(self, optimal_runtime, resnet50, optimal_config):
        ideal = resnet50.total_macs * optimal_config.batch_size / optimal_config.array_size
        assert optimal_runtime.total_compute_cycles >= ideal

    def test_ips_in_paper_ballpark(self, optimal_runtime):
        # Paper reports 36,382 IPS for this configuration; the reproduction
        # should land in the same ballpark (tens of thousands).
        assert 15_000 < optimal_runtime.inferences_per_second < 60_000

    def test_dram_traffic_dominated_by_activation_spills(self, optimal_runtime, resnet50):
        weight_bits = resnet50.total_weights * 6
        per_batch_weight_bits = weight_bits  # weights fetched once per batch
        assert optimal_runtime.total_dram_bits > 2 * per_batch_weight_bits

    def test_programming_passes_positive(self, optimal_runtime):
        assert optimal_runtime.total_programming_passes > 54  # at least one per layer

    def test_simulate_layer_by_name(self, resnet50, optimal_config):
        simulator = CrossbarDataflowSimulator(optimal_config)
        layer_runtime = simulator.simulate_layer(resnet50, "conv1")
        assert layer_runtime.layer_name == "conv1"
        assert layer_runtime.compute_cycles > 0

    def test_simulate_layer_rejects_non_crossbar_layer(self, resnet50, optimal_config):
        simulator = CrossbarDataflowSimulator(optimal_config)
        with pytest.raises(SimulationError):
            simulator.simulate_layer(resnet50, "maxpool")


class TestArchitecturalTrends:
    def test_larger_array_needs_fewer_cycles(self, resnet50):
        small = simulate_network(resnet50, ChipConfig(rows=32, columns=32, batch_size=4))
        large = simulate_network(resnet50, ChipConfig(rows=128, columns=128, batch_size=4))
        assert large.total_compute_cycles < small.total_compute_cycles

    def test_dual_core_ips_at_least_single_core(self, resnet50):
        single = simulate_network(resnet50, optimal_chip(num_cores=1, batch_size=4))
        dual = simulate_network(resnet50, optimal_chip(num_cores=2, batch_size=4))
        assert dual.inferences_per_second >= single.inferences_per_second

    def test_batch_amortises_programming_for_single_core(self, resnet50):
        small_batch = simulate_network(resnet50, optimal_chip(num_cores=1, batch_size=1))
        big_batch = simulate_network(resnet50, optimal_chip(num_cores=1, batch_size=32))
        assert big_batch.inferences_per_second > small_batch.inferences_per_second

    def test_lenet_fc_dominated_network_still_simulates(self):
        runtime = simulate_network(build_lenet5(), ChipConfig(rows=64, columns=64, batch_size=8))
        assert runtime.inferences_per_second > 0
