"""Tests for the online inference-serving subsystem (``repro.serve``).

Everything here carries the ``serving`` marker, so ``pytest -m serving`` runs
the whole lane as a smoke sweep; the tests also run as part of tier-1.
Covered: the shared executor-spec parser, the micro-batcher's flush /
backpressure edge cases, in-order delivery under parallel executors, bitwise
equivalence of served outputs against direct ``run_batch``, the ``process:N``
pool on a LeNet workload, thread-safety of the accelerator's functional
statistics, SLO telemetry, arrival processes and the serve/loadgen CLI.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.config import small_test_chip
from repro.core.accelerator import OpticalCrossbarAccelerator
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.errors import QueueOverflowError, ServeError, SimulationError
from repro.nn import build_lenet5
from repro.serve import (
    AdaptiveFlushPolicy,
    AnalyticalCostModel,
    EngineReplicaSpec,
    EngineWorkerPool,
    ExecutorSpec,
    FixedFlushPolicy,
    InferenceServer,
    LoadGenerator,
    MicroBatcher,
    ServeTelemetry,
    bursty_arrivals,
    latency_summary,
    make_flush_policy,
    merge_functional_statistics,
    parse_executor_spec,
    poisson_arrivals,
)

pytestmark = pytest.mark.serving

#: Serving-scale chip: big enough that LeNet tiles into a handful of plans.
_CHIP = dict(rows=32, columns=32, num_cores=2)


@pytest.fixture(scope="module")
def lenet_workload():
    network = build_lenet5()
    weights = generate_random_weights(network, seed=0, scale=0.3)
    config = small_test_chip(**_CHIP)
    images = np.random.default_rng(1).uniform(
        0.0, 1.0, (12,) + network.input_shape.as_tuple()
    )
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    return network, weights, config, images, direct


def _server(lenet_workload, **overrides):
    network, weights, config, _, _ = lenet_workload
    options = dict(max_batch=4, max_wait_s=0.005)
    options.update(overrides)
    return InferenceServer(network, weights, config, **options)


# ---------------------------------------------------------------------------
# executor-spec parser (shared by serve and infer --workers)
# ---------------------------------------------------------------------------


class TestExecutorSpecParser:
    @pytest.mark.parametrize(
        "value, kind, count",
        [
            ("serial", "serial", 1),
            ("thread", "thread", None),
            ("thread:3", "thread", 3),
            ("process", "process", None),
            ("process:2", "process", 2),
            (4, "thread", 4),
            ("4", "thread", 4),
        ],
    )
    def test_accepted_spellings(self, value, kind, count):
        spec = parse_executor_spec(value)
        assert (spec.kind, spec.count) == (kind, count)

    @pytest.mark.parametrize(
        "value",
        ["bogus", "", "thread:0", "thread:-1", "thread:x", "process:",
         "serial:2", "process:1.5", "0", "-3", 0, -1, True, 2.5, None],
    )
    def test_malformed_specs_raise_simulation_error(self, value):
        with pytest.raises(SimulationError, match="executor"):
            parse_executor_spec(value)

    def test_round_trips_and_resolution(self):
        assert str(parse_executor_spec("process:2")) == "process:2"
        assert str(parse_executor_spec("thread")) == "thread"
        assert str(parse_executor_spec("serial")) == "serial"
        assert parse_executor_spec("thread").resolved_count(default=7) == 7
        assert parse_executor_spec("thread:3").resolved_count(default=7) == 3
        spec = ExecutorSpec("serial")
        assert parse_executor_spec(spec) is spec


# ---------------------------------------------------------------------------
# micro-batcher edge cases
# ---------------------------------------------------------------------------


class TestMicroBatcher:
    def test_flush_on_full_returns_immediately(self):
        batcher = MicroBatcher(max_batch=4, max_wait_s=5.0, capacity=16)
        for index in range(6):
            batcher.submit(np.full(2, index))
        start = time.monotonic()
        batch = batcher.next_batch()
        elapsed = time.monotonic() - start
        assert [request.seq for request in batch] == [0, 1, 2, 3]
        assert elapsed < 1.0  # did not wait for max_wait_s
        assert batcher.depth == 2

    def test_flush_on_timeout_returns_partial_batch(self):
        batcher = MicroBatcher(max_batch=8, max_wait_s=0.05, capacity=16)
        batcher.submit(np.zeros(2))
        batcher.submit(np.ones(2))
        start = time.monotonic()
        batch = batcher.next_batch()
        elapsed = time.monotonic() - start
        assert len(batch) == 2
        assert elapsed >= 0.02  # waited for more work before flushing
        assert elapsed < 2.0

    def test_zero_wait_flushes_greedily(self):
        batcher = MicroBatcher(max_batch=8, max_wait_s=0.0, capacity=16)
        batcher.submit(np.zeros(2))
        assert len(batcher.next_batch()) == 1

    def test_overflow_raises_when_not_blocking(self):
        batcher = MicroBatcher(max_batch=2, max_wait_s=0.0, capacity=2)
        batcher.submit(np.zeros(2))
        batcher.submit(np.zeros(2))
        with pytest.raises(QueueOverflowError, match="full"):
            batcher.submit(np.zeros(2), block=False)
        with pytest.raises(QueueOverflowError, match="full"):
            batcher.submit(np.zeros(2), timeout=0.01)

    def test_backpressure_unblocks_when_consumer_drains(self):
        batcher = MicroBatcher(max_batch=2, max_wait_s=0.0, capacity=2)
        batcher.submit(np.zeros(2))
        batcher.submit(np.zeros(2))
        admitted = threading.Event()

        def producer():
            batcher.submit(np.zeros(2))  # blocks until the consumer drains
            admitted.set()

        thread = threading.Thread(target=producer)
        thread.start()
        try:
            assert not admitted.wait(0.05)  # still blocked: queue is full
            assert len(batcher.next_batch()) == 2
            assert admitted.wait(2.0)
        finally:
            thread.join(2.0)
        assert batcher.depth == 1

    def test_close_refuses_new_requests_but_drains_queued(self):
        batcher = MicroBatcher(max_batch=4, max_wait_s=0.0, capacity=8)
        batcher.submit(np.zeros(2))
        batcher.close()
        with pytest.raises(ServeError, match="closed"):
            batcher.submit(np.zeros(2))
        assert len(batcher.next_batch()) == 1
        assert batcher.next_batch(poll_timeout_s=0.01) is None

    def test_invalid_policy_parameters_rejected(self):
        with pytest.raises(SimulationError):
            MicroBatcher(max_batch=0)
        with pytest.raises(SimulationError):
            MicroBatcher(max_wait_s=-0.1)
        with pytest.raises(SimulationError):
            MicroBatcher(max_batch=8, capacity=4)


# ---------------------------------------------------------------------------
# flush policies
# ---------------------------------------------------------------------------


class TestFlushPolicies:
    def test_fixed_policy_target_and_deadline(self):
        policy = FixedFlushPolicy(max_batch=6, max_wait_s=0.25)
        assert policy.target_batch() == 6
        assert policy.flush_deadline(10.0) == pytest.approx(10.25)
        assert policy.snapshot() == {
            "policy": "fixed",
            "max_batch": 6,
            "max_wait_s": 0.25,
        }

    def test_make_flush_policy_spellings(self):
        fixed = make_flush_policy("fixed", max_batch=3, max_wait_s=0.1)
        assert isinstance(fixed, FixedFlushPolicy) and fixed.max_batch == 3
        adaptive = make_flush_policy("adaptive", slo_s=0.2, max_batch=12)
        assert isinstance(adaptive, AdaptiveFlushPolicy)
        assert adaptive.slo_s == 0.2 and adaptive.max_batch_cap == 12
        passthrough = FixedFlushPolicy()
        assert make_flush_policy(passthrough) is passthrough
        with pytest.raises(SimulationError, match="flush policy"):
            make_flush_policy("bogus")

    def test_adaptive_uncalibrated_is_optimistic(self):
        policy = AdaptiveFlushPolicy(slo_s=0.1, max_batch_cap=16, safety=0.5)
        assert policy.target_batch() == 16  # no scale yet: cap applies
        assert policy.estimate_service_s(4) is None
        # full (safety-scaled) budget available while uncalibrated
        assert policy.flush_deadline(5.0) == pytest.approx(5.05)
        assert policy.snapshot()["calibrated"] is False

    def test_adaptive_calibration_tunes_target_batch(self):
        model = AnalyticalCostModel(fixed_units=1.0, per_image_units=1.0)
        policy = AdaptiveFlushPolicy(
            slo_s=1.0, cost_model=model, max_batch_cap=16, safety=0.5, ewma_alpha=1.0
        )
        # one 1-image batch took 0.2 s -> scale 0.1 s/unit -> largest B with
        # 0.1 * (1 + B) <= 0.5 is B = 4
        policy.observe_batch(1, 0.2)
        assert policy.target_batch() == 4
        assert policy.estimate_service_s(4) == pytest.approx(0.5)
        # the deadline reserves the predicted service time out of the budget
        assert policy.flush_deadline(7.0) == pytest.approx(7.0)
        # a much slower service time shrinks the target to the floor of 1
        policy.observe_batch(1, 2.0)
        assert policy.target_batch() == 1
        # a much faster one grows it back to the cap
        policy.observe_batch(8, 0.009)
        assert policy.target_batch() == 16
        snapshot = policy.snapshot()
        assert snapshot["calibrated"] is True
        assert snapshot["observed_batches"] == 3

    def test_adaptive_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            AdaptiveFlushPolicy(slo_s=0.0)
        with pytest.raises(SimulationError):
            AdaptiveFlushPolicy(slo_s=0.1, max_batch_cap=0)
        with pytest.raises(SimulationError):
            AdaptiveFlushPolicy(slo_s=0.1, safety=1.5)
        with pytest.raises(SimulationError):
            AdaptiveFlushPolicy(slo_s=0.1, ewma_alpha=0.0)
        with pytest.raises(SimulationError):
            AnalyticalCostModel(fixed_units=1.0, per_image_units=0.0)
        with pytest.raises(SimulationError):
            AnalyticalCostModel(fixed_units=-1.0, per_image_units=1.0)

    def test_analytical_cost_model_from_workload(self, lenet_workload):
        network, weights, config, _, _ = lenet_workload
        model = AnalyticalCostModel.from_workload(network, weights, config)
        assert model.per_image_units > 0
        assert model.fixed_units >= 0
        # affine and increasing in the batch size
        assert model.units(2) > model.units(1)
        assert model.units(4) - model.units(2) == pytest.approx(
            2 * model.per_image_units
        )

    def test_batcher_flush_reasons(self):
        flushes = []
        batcher = MicroBatcher(
            policy=FixedFlushPolicy(max_batch=2, max_wait_s=0.02),
            capacity=8,
            on_flush=lambda reason, size: flushes.append((reason, size)),
        )
        batcher.submit(np.zeros(2))
        batcher.submit(np.zeros(2))
        batcher.next_batch()  # two queued, target two -> flush-on-full
        batcher.submit(np.zeros(2))
        batcher.next_batch()  # partial batch that waits out the deadline
        batcher.submit(np.zeros(2))
        batcher.close()
        batcher.next_batch()  # closed with a partial batch queued
        assert flushes == [("full", 2), ("deadline", 1), ("close", 1)]

    def test_batcher_clamps_adaptive_target_to_capacity(self):
        policy = AdaptiveFlushPolicy(slo_s=10.0, max_batch_cap=64)
        batcher = MicroBatcher(policy=policy, capacity=4)
        assert batcher.max_batch == 4  # uncalibrated cap 64, clamped
        assert batcher.max_wait_s is None  # adaptive has no fixed wait knob
        for _ in range(4):
            batcher.submit(np.zeros(2))
        assert len(batcher.next_batch()) == 4


class TestAdaptiveServing:
    def test_adaptive_server_bitwise_and_policy_stats(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _server(
            lenet_workload, policy="adaptive", slo_s=0.5, max_batch=16
        ) as server:
            served = server.serve_batch(images)
            stats = server.stats()
        assert np.array_equal(served, direct)
        assert stats["policy"]["policy"] == "adaptive"
        assert stats["policy"]["slo_s"] == pytest.approx(0.5)
        assert stats["policy"]["calibrated"] is True
        assert stats["telemetry"]["flush_reasons"]  # reasons were recorded

    def test_fixed_server_snapshot_reports_flush_reasons(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        with _server(lenet_workload, max_batch=len(images), max_wait_s=0.2) as server:
            server.serve_batch(images)
            snapshot = server.telemetry.snapshot()
        assert sum(snapshot["flush_reasons"].values()) == snapshot["batches"]
        assert set(snapshot["flush_reasons"]) <= {"full", "deadline", "close"}


# ---------------------------------------------------------------------------
# server: equivalence, ordering, errors
# ---------------------------------------------------------------------------


class TestInferenceServer:
    @pytest.mark.parametrize("executor", ["serial", "thread:2"])
    def test_served_outputs_bitwise_equal_run_batch(self, lenet_workload, executor):
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload, executor=executor) as server:
            served = server.serve_batch(images)
        assert np.array_equal(served, direct)

    def test_process_pool_served_outputs_bitwise_equal(self, lenet_workload):
        """The roadmap's process executor: replicas beyond the GIL, same bits."""
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload, executor="process:2") as server:
            served = server.serve_batch(images)
            stats = server.stats()
        assert np.array_equal(served, direct)
        assert stats["pool"]["replicas"] == 2
        assert stats["pool"]["executor"] == "process:2"
        assert sum(stats["pool"]["per_core_tile_dispatches"]) > 0

    def test_in_order_delivery_with_parallel_single_request_batches(
        self, lenet_workload
    ):
        _, _, _, images, direct = lenet_workload
        delivered = []
        network, weights, config, _, _ = lenet_workload
        server = InferenceServer(
            network,
            weights,
            config,
            executor="thread:4",
            max_batch=1,  # every request its own batch -> completions can race
            max_wait_s=0.0,
            on_response=lambda seq, output: delivered.append(seq),
        )
        with server:
            served = server.serve_batch(images)
        assert delivered == sorted(delivered) == list(range(len(images)))
        assert np.array_equal(served, direct)

    def test_raising_on_response_callback_does_not_stall_delivery(
        self, lenet_workload
    ):
        _, _, _, images, direct = lenet_workload
        network, weights, config, _, _ = lenet_workload
        delivered = []

        def callback(seq, output):
            delivered.append(seq)
            raise RuntimeError("listener bug")

        server = InferenceServer(
            network, weights, config, max_batch=4, max_wait_s=0.005,
            on_response=callback,
        )
        with server:
            served = server.serve_batch(images)
        assert np.array_equal(served, direct)
        assert delivered == list(range(len(images)))

    def test_pool_statistics_exclude_warmup_traffic(self, lenet_workload):
        """Reported counters describe served work only, for every executor."""
        per_executor = {}
        for executor in ("serial", "process:2"):
            # max_batch=1 pins the micro-batch boundaries, so the served tile
            # dispatch count is deterministic and comparable across executors.
            with _server(
                lenet_workload, executor=executor, max_batch=1, max_wait_s=0.0
            ) as server:
                zero_traffic = server.stats()["pool"]
                assert zero_traffic.get("sharded_dispatches", 0) == 0
                _, _, _, images, _ = lenet_workload
                server.serve_batch(images)
                served = server.stats()["pool"]
            assert sum(served["per_core_tile_dispatches"]) > 0
            per_executor[executor] = sum(served["per_core_tile_dispatches"])
        # identical traffic -> identical served tile counts across executors
        assert per_executor["serial"] == per_executor["process:2"]

    def test_submit_validates_shape_and_lifecycle(self, lenet_workload):
        with _server(lenet_workload) as server:
            with pytest.raises(ServeError, match="shape"):
                server.submit(np.zeros((3, 3, 1)))
        with pytest.raises(ServeError, match="not running"):
            server.submit(np.zeros(server.network.input_shape.as_tuple()))
        unstarted = _server(lenet_workload)
        with pytest.raises(ServeError, match="not running"):
            unstarted.submit(np.zeros(unstarted.network.input_shape.as_tuple()))

    def test_stop_drains_queued_requests(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        server = _server(lenet_workload, max_wait_s=0.2, max_batch=64).start()
        futures = [server.submit(image) for image in images]
        server.stop()  # closes admission, flushes the partial batch
        served = np.stack([future.result(timeout=10.0) for future in futures])
        assert np.array_equal(served, direct)
        histogram = server.telemetry.snapshot()["batch_size_histogram"]
        assert histogram == {len(images): 1}

    def test_telemetry_counts_and_batch_histogram(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        with _server(lenet_workload, max_batch=4, max_wait_s=0.2) as server:
            server.serve_batch(images)  # sequential submits still batch up
            snapshot = server.telemetry.snapshot()
        assert snapshot["requests_admitted"] == len(images)
        assert snapshot["requests_completed"] == len(images)
        assert snapshot["throughput_rps"] > 0
        sizes = snapshot["batch_size_histogram"]
        assert sum(size * count for size, count in sizes.items()) == len(images)
        assert snapshot["latency_p99_s"] >= snapshot["latency_p50_s"] >= 0


# ---------------------------------------------------------------------------
# worker pool + satellite guards
# ---------------------------------------------------------------------------


class TestEngineWorkerPool:
    def test_run_batch_sharded_matches_direct(self, lenet_workload):
        network, weights, config, images, direct = lenet_workload
        replica = EngineReplicaSpec(network=network, weights=weights, config=config)
        with EngineWorkerPool(replica, "process:2") as pool:
            sharded = pool.run_batch_sharded(images)
            stats = pool.statistics()
        assert np.array_equal(sharded, direct)
        # each process replica programs its own tile plans
        assert stats["replicas"] == 2
        assert stats["tile_cache_misses"] >= 2

    def test_merge_functional_statistics(self):
        merged = merge_functional_statistics(
            [
                {"programming_events": 2, "per_core_tile_dispatches": (1, 2)},
                {"programming_events": 3, "per_core_tile_dispatches": (4, 5)},
            ]
        )
        assert merged["programming_events"] == 5
        assert merged["per_core_tile_dispatches"] == (5, 7)
        assert merge_functional_statistics([]) == {}

    def test_closed_pool_rejects_submissions(self, lenet_workload):
        network, weights, config, images, _ = lenet_workload
        replica = EngineReplicaSpec(network=network, weights=weights, config=config)
        pool = EngineWorkerPool(replica, "serial")
        pool.close()
        with pytest.raises(ServeError, match="closed"):
            pool.submit(images[:1])


class TestSatelliteGuards:
    def test_run_batch_rejects_empty_batches(self, lenet_workload):
        network, weights, config, _, _ = lenet_workload
        engine = FunctionalInferenceEngine(network, weights, config)
        for empty in ([], np.empty((0,) + network.input_shape.as_tuple())):
            with pytest.raises(SimulationError, match="empty"):
                engine.run_batch(empty)

    def test_functional_statistics_thread_safe_under_concurrent_linear(self):
        """Concurrent GEMMs must not lose counter increments."""
        accelerator = OpticalCrossbarAccelerator(
            small_test_chip(rows=16, columns=16, num_cores=2)
        )
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(40, 24))  # 3 x 2 = 6 tiles
        inputs = rng.uniform(size=(4, 40))
        calls_per_thread, num_threads = 25, 4

        def worker():
            for _ in range(calls_per_thread):
                accelerator.linear(weights, inputs)

        threads = [threading.Thread(target=worker) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total_calls = calls_per_thread * num_threads
        stats = accelerator.functional_statistics()
        assert stats["sharded_dispatches"] == total_calls
        assert stats["tile_cache_misses"] == 1
        assert stats["tile_cache_hits"] == total_calls - 1
        assert sum(stats["per_core_tile_dispatches"]) == total_calls * 6


# ---------------------------------------------------------------------------
# telemetry + arrival processes + load generator
# ---------------------------------------------------------------------------


class TestTelemetry:
    def test_latency_summary_matches_numpy_percentiles(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(0.01, size=200)
        summary = latency_summary(samples)
        for q in (50, 95, 99):
            assert summary[f"latency_p{q}_s"] == pytest.approx(
                float(np.percentile(samples, q))
            )
        assert summary["latency_mean_s"] == pytest.approx(float(samples.mean()))

    def test_empty_summary_is_zeroed(self):
        summary = latency_summary([])
        assert summary["latency_p99_s"] == 0.0
        assert summary["latency_max_s"] == 0.0

    def test_snapshot_aggregates_all_sections(self):
        telemetry = ServeTelemetry()
        telemetry.record_admission(queue_depth=3)
        telemetry.record_admission(queue_depth=5)
        telemetry.record_rejection()
        telemetry.record_batch(size=2, service_time_s=0.25)
        telemetry.record_response(0.1)
        telemetry.record_response(0.3)
        snapshot = telemetry.snapshot()
        assert snapshot["requests_admitted"] == 2
        assert snapshot["requests_rejected"] == 1
        assert snapshot["requests_completed"] == 2
        assert snapshot["queue_depth_max"] == 5
        assert snapshot["queue_depth_mean"] == pytest.approx(4.0)
        assert snapshot["batch_size_histogram"] == {2: 1}
        assert snapshot["mean_batch_size"] == pytest.approx(2.0)
        assert snapshot["service_time_s"] == pytest.approx(0.25)
        assert snapshot["latency_p50_s"] == pytest.approx(0.2)


class TestArrivalProcesses:
    def test_poisson_offsets_are_sorted_and_rate_scaled(self):
        offsets = poisson_arrivals(1000.0, 500, seed=4)
        assert offsets[0] == 0.0
        assert np.all(np.diff(offsets) >= 0)
        mean_gap = offsets[-1] / (len(offsets) - 1)
        assert 0.5e-3 < mean_gap < 2.0e-3  # ~1/rate

    def test_bursty_long_run_rate_and_burst_structure(self):
        rate, burst_length, burst_factor = 1000.0, 8, 10.0
        offsets = bursty_arrivals(
            rate, 400, seed=5, burst_length=burst_length, burst_factor=burst_factor
        )
        gaps = np.diff(offsets)
        on_gap = 1.0 / (rate * burst_factor)
        # within a burst, arrivals come burst_factor times faster than the mean
        assert np.isclose(np.median(gaps), on_gap)
        long_run_rate = len(offsets) / offsets[-1]
        assert 0.5 * rate < long_run_rate < 2.0 * rate

    def test_bursty_short_trace_still_gets_an_off_gap(self):
        """burst_length clamps so a short trace is not one giant 10x burst."""
        rate, factor = 500.0, 10.0
        offsets = bursty_arrivals(rate, 8, seed=6, burst_length=8, burst_factor=factor)
        long_run_rate = len(offsets) / offsets[-1]
        assert long_run_rate < 0.5 * rate * factor
        gaps = np.diff(offsets)
        assert gaps.max() > 2 * gaps.min()  # an OFF gap exists

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            poisson_arrivals(0.0, 10)
        with pytest.raises(SimulationError):
            poisson_arrivals(100.0, 0)
        with pytest.raises(SimulationError):
            bursty_arrivals(100.0, 10, burst_factor=1.0)
        with pytest.raises(SimulationError):
            bursty_arrivals(100.0, 10, burst_length=0)


class TestLoadGenerator:
    def test_open_loop_poisson_bitwise_and_telemetry(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload, executor="thread:2") as server:
            report = LoadGenerator(server).run_open_loop(
                images, poisson_arrivals(800.0, len(images), seed=2)
            )
        assert np.array_equal(report.outputs, direct)
        assert report.requests == len(images)
        assert report.achieved_rps > 0
        telemetry = report.server["telemetry"]
        assert telemetry["requests_completed"] == len(images)
        assert report.client_latency["latency_p99_s"] >= report.client_latency["latency_p50_s"]

    def test_open_loop_sheds_on_overflow_when_requested(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        server = _server(
            lenet_workload, max_batch=2, max_wait_s=0.0, queue_capacity=2
        )
        with server:
            # all-at-once arrivals against a 2-deep queue must shed load
            report = LoadGenerator(server).run_open_loop(
                images, np.zeros(len(images)), shed_on_overflow=True
            )
        assert report.rejected > 0
        assert report.requests + report.rejected == len(images)
        assert len(report.outputs) == report.requests
        assert report.server["telemetry"]["requests_rejected"] == report.rejected

    def test_closed_loop_reassembles_outputs_in_image_order(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload, executor="thread:2") as server:
            report = LoadGenerator(server).run_closed_loop(images, concurrency=3)
        assert np.array_equal(report.outputs, direct)
        assert report.loop == "closed"
        assert report.requests == len(images)
        summary = report.summary()
        assert summary["client_latency_p50_s"] >= 0
        assert summary["server"]["telemetry"]["requests_completed"] == len(images)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestServingCli:
    _chip = ["--rows", "32", "--columns", "32"]

    def test_serve_json_reports_slo_and_bitwise_match(self, capsys):
        code = main(
            ["serve", "--network", "lenet5", "--requests", "6", "--rate", "800",
             "--executor", "thread:2", "--json"] + self._chip
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["bitwise_match_vs_run_batch"] is True
        assert summary["requests"] == 6
        assert summary["achieved_rps"] > 0
        assert summary["latency_p99_ms"] >= summary["latency_p50_ms"]
        assert sum(summary["per_core_tile_dispatches"]) > 0

    def test_serve_text_report(self, capsys):
        code = main(
            ["serve", "--network", "lenet5", "--requests", "4", "--rate", "500",
             "--arrival", "bursty"] + self._chip
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "latency p50/p95/p99" in output
        assert "bitwise-identical" in output

    def test_loadgen_closed_sweep(self, capsys):
        code = main(
            ["loadgen", "--network", "lenet5", "--mode", "closed",
             "--concurrency", "1,2", "--requests", "4", "--json"] + self._chip
        )
        assert code == 0
        sweep = json.loads(capsys.readouterr().out)
        assert sweep["mode"] == "closed"
        assert [point["load"] for point in sweep["points"]] == [1, 2]
        assert all(point["bitwise_match_vs_run_batch"] for point in sweep["points"])

    def test_infer_accepts_process_workers(self, capsys):
        code = main(
            ["infer", "--network", "lenet5", "--images", "4",
             "--workers", "process:2", "--json"] + self._chip
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["workers"] == "process:2"
        assert sum(summary["per_core_tile_dispatches"]) > 0

    def test_infer_process_matches_serial_bitwise(self, capsys):
        base = ["infer", "--network", "lenet5", "--images", "4", "--json"] + self._chip
        assert main(base) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(base + ["--workers", "process:2"]) == 0
        process = json.loads(capsys.readouterr().out)
        assert process["mean_relative_error"] == serial["mean_relative_error"]
        assert process["top1_match_rate"] == serial["top1_match_rate"]

    @pytest.mark.parametrize("spec", ["process:0", "bogus:3", "serial:2", "0"])
    def test_infer_rejects_malformed_executor_specs(self, spec):
        with pytest.raises(SystemExit):
            main(["infer", "--network", "lenet5", "--images", "1", "--workers", spec])

    @pytest.mark.parametrize(
        "option",
        [
            ["--rate", "0"],
            ["--rate", "-5"],
            ["--requests", "0"],
            ["--max-batch", "0"],
            ["--max-wait-ms", "-1"],
            ["--queue-capacity", "0"],
        ],
    )
    def test_serve_rejects_invalid_options_as_usage_errors(self, option):
        with pytest.raises(SystemExit):
            main(["serve", "--network", "lenet5"] + option)

    @pytest.mark.parametrize("clients", ["2.7", "0", "1,0", "x"])
    def test_loadgen_rejects_non_integer_concurrency(self, clients):
        with pytest.raises(SystemExit):
            main(
                ["loadgen", "--network", "lenet5", "--mode", "closed",
                 "--concurrency", clients]
            )
