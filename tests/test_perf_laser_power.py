"""Unit tests for the laser-power solver."""

import pytest

from repro.config import ChipConfig
from repro.perf import LaserPowerModel


class TestLaserPowerSolver:
    def test_required_power_grows_with_array_size(self):
        small = LaserPowerModel(ChipConfig(rows=32, columns=32)).required_optical_power_w()
        medium = LaserPowerModel(ChipConfig(rows=128, columns=128)).required_optical_power_w()
        large = LaserPowerModel(ChipConfig(rows=256, columns=256)).required_optical_power_w()
        assert small < medium < large

    def test_growth_is_superlinear_in_array_cells(self):
        p64 = LaserPowerModel(ChipConfig(rows=64, columns=64)).required_optical_power_w()
        p256 = LaserPowerModel(ChipConfig(rows=256, columns=256)).required_optical_power_w()
        cells_ratio = (256 * 256) / (64 * 64)
        assert p256 / p64 > cells_ratio

    def test_electrical_power_uses_wall_plug_efficiency(self):
        model = LaserPowerModel(ChipConfig(rows=64, columns=64))
        result = model.solve()
        assert result.electrical_power_w == pytest.approx(
            result.clamped_optical_power_w / 0.15
        )

    def test_receiver_power_meets_sensitivity_when_feasible(self):
        model = LaserPowerModel(ChipConfig(rows=128, columns=128))
        result = model.solve()
        assert result.feasible
        assert result.receiver_power_w >= model.technology.receiver_sensitivity_w * 0.999

    def test_minimum_laser_power_floor_applies_to_tiny_arrays(self):
        model = LaserPowerModel(ChipConfig(rows=2, columns=2))
        result = model.solve()
        assert result.clamped_optical_power_w >= model.technology.laser_min_output_power_w

    def test_huge_arrays_are_flagged_infeasible(self):
        model = LaserPowerModel(ChipConfig(rows=1024, columns=1024))
        result = model.solve()
        assert not result.feasible
        assert result.clamped_optical_power_w == pytest.approx(
            model.technology.laser_max_output_power_w
        )

    def test_optimal_config_laser_power_is_small_fraction_of_chip_power(self, optimal_metrics):
        # At the 128x128 point the paper's power is dominated by DRAM, not the laser.
        assert optimal_metrics.laser.electrical_power_w < 0.1 * optimal_metrics.power_w

    def test_as_dict_contains_budget_terms(self):
        result = LaserPowerModel(ChipConfig(rows=32, columns=32)).solve()
        data = result.as_dict()
        assert {"excess_loss_db", "total_loss_db", "electrical_power_w"} <= set(data)

    def test_average_case_budget_needs_less_power(self):
        config = ChipConfig(rows=128, columns=128)
        worst = LaserPowerModel(config, worst_case=True).required_optical_power_w()
        average = LaserPowerModel(config, worst_case=False).required_optical_power_w()
        assert average < worst
