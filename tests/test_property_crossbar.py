"""Property-based tests for the functional crossbar and its coupling design."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.crossbar import CrossbarArray, design_input_coupling, design_output_coupling
from repro.crossbar.dual_core import DualCoreCrossbar, ProgrammingJob


class TestCouplingDesignProperties:
    @given(st.integers(1, 512))
    @settings(max_examples=60, deadline=None)
    def test_input_coupling_distributes_power_equally(self, columns):
        k_in = design_input_coupling(columns)
        remaining = 1.0
        for kappa in k_in:
            tapped = remaining * kappa
            assert tapped == pytest.approx(1.0 / columns, rel=1e-9)
            remaining *= 1.0 - kappa
        assert remaining == pytest.approx(0.0, abs=1e-9)

    @given(st.integers(1, 512))
    @settings(max_examples=60, deadline=None)
    def test_output_coupling_weighs_all_rows_equally(self, rows):
        k_out = design_output_coupling(rows)
        # Work in log-space to stay accurate for large N.  Walking from the
        # bottom row upwards, `log_tail` accumulates the through-transmissions
        # a row's contribution must still traverse on its way to the detector.
        log_tail = 0.0
        contributions = []
        for i in reversed(range(rows)):
            contributions.append(0.5 * math.log(k_out[i]) + log_tail)
            if k_out[i] < 1.0:
                log_tail += 0.5 * math.log1p(-k_out[i])
        expected = -0.5 * math.log(rows)
        assert np.allclose(contributions, expected, atol=1e-9)


class TestCrossbarMatvecProperties:
    @given(
        st.integers(2, 24),
        st.integers(1, 16),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_matvec_matches_quantised_linear_algebra(self, rows, columns, data):
        weights = data.draw(
            arrays(float, (rows, columns), elements=st.floats(0.0, 1.0, allow_nan=False))
        )
        inputs = data.draw(
            arrays(float, (rows,), elements=st.floats(0.0, 1.0, allow_nan=False))
        )
        array = CrossbarArray(rows, columns)
        array.program_weights(weights)
        analog = array.matvec(inputs, quantize_output=False)
        reference = array.weights.T @ array.odac.modulate(inputs)
        assert np.allclose(analog, reference, atol=1e-9)
        # Outputs are bounded by the array's physical full scale.
        quantised = array.matvec(inputs, quantize_output=True)
        assert np.all(quantised >= 0.0) and np.all(quantised <= rows + 1e-9)

    @given(st.integers(2, 16), st.integers(2, 16))
    @settings(max_examples=30, deadline=None)
    def test_zero_weights_or_inputs_give_zero_output(self, rows, columns):
        array = CrossbarArray(rows, columns)
        array.program_weights(np.zeros((rows, columns)))
        assert np.allclose(array.matvec(np.ones(rows), quantize_output=False), 0.0)
        array.program_weights(np.ones((rows, columns)))
        assert np.allclose(array.matvec(np.zeros(rows), quantize_output=False), 0.0)

    @given(st.integers(2, 12), st.integers(1, 12), st.data())
    @settings(max_examples=30, deadline=None)
    def test_monotonicity_in_inputs(self, rows, columns, data):
        """Increasing any non-negative input never decreases any output."""
        weights = data.draw(
            arrays(float, (rows, columns), elements=st.floats(0.0, 1.0, allow_nan=False))
        )
        inputs = data.draw(
            arrays(float, (rows,), elements=st.floats(0.0, 0.9, allow_nan=False))
        )
        index = data.draw(st.integers(0, rows - 1))
        array = CrossbarArray(rows, columns)
        array.program_weights(weights)
        base = array.matvec(inputs, quantize_output=False)
        bumped_inputs = inputs.copy()
        bumped_inputs[index] = min(1.0, bumped_inputs[index] + 0.1)
        bumped = array.matvec(bumped_inputs, quantize_output=False)
        assert np.all(bumped >= base - 1e-12)


class TestDualCoreScheduleProperties:
    job_list = st.lists(
        st.builds(
            ProgrammingJob,
            name=st.just("job"),
            programming_time_s=st.floats(0.0, 1e-5),
            compute_time_s=st.floats(0.0, 1e-5),
        ),
        min_size=1,
        max_size=30,
    )

    @given(job_list)
    @settings(max_examples=60, deadline=None)
    def test_dual_core_between_half_and_full_single_core_time(self, jobs):
        jobs = [
            ProgrammingJob(f"job{i}", job.programming_time_s, job.compute_time_s)
            for i, job in enumerate(jobs)
        ]
        single = DualCoreCrossbar(1).makespan_s(jobs)
        dual = DualCoreCrossbar(2).makespan_s(jobs)
        assert dual <= single + 1e-15
        assert dual >= 0.5 * single - 1e-15
        total_compute = sum(job.compute_time_s for job in jobs)
        assert dual >= total_compute - 1e-15
