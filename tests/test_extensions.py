"""Tests for the extension modules: sensitivity analysis, Pareto frontier,
tile-schedule extraction, roofline model and the MLP workload builder."""

import pytest

from repro.analysis.sensitivity import (
    DEFAULT_PARAMETERS,
    TechnologySensitivityAnalysis,
    sensitivity_rows,
)
from repro.config import default_sweep_chip, optimal_chip, small_test_chip
from repro.core.pareto import frontier_rows, pareto_frontier
from repro.core.simulation import SimulationFramework
from repro.core.sweep import sweep_array_sizes
from repro.errors import SimulationError
from repro.nn import build_lenet5, build_mlp
from repro.perf.roofline import RooflineModel
from repro.scalesim import network_tile_jobs, schedule_summary, scheduled_batch_latency_s
from repro.scalesim.simulator import simulate_network


class TestSensitivityAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self):
        return TechnologySensitivityAnalysis(build_lenet5(), small_test_chip())

    def test_entries_cover_requested_parameters(self, analysis):
        parameters = ("dram_energy_per_bit_j", "adc_power_w", "sram_energy_per_bit_j")
        entries = analysis.analyze(parameters)
        assert {entry.parameter for entry in entries} == set(parameters)

    def test_entries_sorted_by_swing(self, analysis):
        entries = analysis.analyze(("dram_energy_per_bit_j", "adc_power_w", "tia_power_w"))
        swings = [entry.swing for entry in entries]
        assert swings == sorted(swings, reverse=True)

    def test_increasing_dram_energy_reduces_ips_per_watt(self, analysis):
        entry = next(
            e for e in analysis.analyze(("dram_energy_per_bit_j",)) if e.parameter == "dram_energy_per_bit_j"
        )
        assert entry.metric_at_high < entry.baseline_metric < entry.metric_at_low

    def test_rows_helper_and_relative_swing(self):
        rows = sensitivity_rows(
            build_lenet5(), small_test_chip(), parameters=("adc_power_w", "sram_energy_per_bit_j")
        )
        assert len(rows) == 2
        assert all(row["relative_swing"] >= 0 for row in rows)

    def test_default_parameter_list_is_valid(self):
        config = small_test_chip()
        for name in DEFAULT_PARAMETERS:
            assert hasattr(config.technology, name)

    def test_unknown_parameter_and_metric_rejected(self):
        analysis = TechnologySensitivityAnalysis(build_lenet5(), small_test_chip())
        with pytest.raises(SimulationError):
            analysis.analyze(("not_a_parameter",))
        bad_metric = TechnologySensitivityAnalysis(
            build_lenet5(), small_test_chip(), metric="nonsense"
        )
        with pytest.raises(SimulationError):
            bad_metric.analyze(("adc_power_w",))

    def test_most_sensitive_parameter_for_optimal_point_is_memory_related(
        self, resnet50, resnet_framework
    ):
        analysis = TechnologySensitivityAnalysis(
            resnet50, optimal_chip(), framework=resnet_framework
        )
        top = analysis.most_sensitive_parameter(
            ("dram_energy_per_bit_j", "adc_power_w", "tia_power_w", "odac_driver_energy_per_sample_j")
        )
        # DRAM dominates the power budget, so IPS/W is most sensitive to it.
        assert top == "dram_energy_per_bit_j"


class TestParetoFrontier:
    @pytest.fixture(scope="class")
    def sweep(self):
        network = build_lenet5()
        framework = SimulationFramework(network)
        return sweep_array_sizes(
            network,
            small_test_chip(),
            rows_values=(8, 16, 32),
            columns_values=(8, 16, 32),
            framework=framework,
        )

    def test_frontier_is_subset_and_non_dominated(self, sweep):
        frontier = pareto_frontier(sweep, objectives=("ips", "power_w"))
        assert 1 <= len(frontier) <= len(sweep)
        # No frontier point dominates another.
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                assert not (
                    a.objectives["ips"] >= b.objectives["ips"]
                    and a.objectives["power_w"] <= b.objectives["power_w"]
                    and (
                        a.objectives["ips"] > b.objectives["ips"]
                        or a.objectives["power_w"] < b.objectives["power_w"]
                    )
                )

    def test_frontier_sorted_by_first_objective(self, sweep):
        frontier = pareto_frontier(sweep, objectives=("ips", "power_w"))
        ips_values = [point.objectives["ips"] for point in frontier]
        assert ips_values == sorted(ips_values, reverse=True)

    def test_best_ips_point_is_always_on_the_frontier(self, sweep):
        frontier = pareto_frontier(sweep, objectives=("ips", "power_w"))
        best_ips = max(result.row()["ips"] for result in sweep)
        assert any(point.objectives["ips"] == pytest.approx(best_ips) for point in frontier)

    def test_three_objective_frontier(self, sweep):
        frontier = pareto_frontier(sweep, objectives=("ips", "power_w", "area_mm2"))
        assert len(frontier) >= len(pareto_frontier(sweep, objectives=("ips", "power_w")))

    def test_frontier_rows_flatten(self, sweep):
        frontier = pareto_frontier(sweep, objectives=("ips", "power_w"))
        rows = frontier_rows(frontier)
        assert rows and {"rows", "columns", "ips", "power_w"} <= set(rows[0])

    def test_validation(self, sweep):
        with pytest.raises(SimulationError):
            pareto_frontier([], objectives=("ips", "power_w"))
        with pytest.raises(SimulationError):
            pareto_frontier(sweep, objectives=("ips",))
        with pytest.raises(SimulationError):
            pareto_frontier(sweep, objectives=("ips", "mac_utilization"))


class TestTileSchedule:
    @pytest.fixture(scope="class")
    def runtime(self):
        return simulate_network(build_lenet5(), small_test_chip(num_cores=2))

    def test_job_count_matches_programming_passes(self, runtime):
        jobs = network_tile_jobs(runtime)
        assert len(jobs) == runtime.total_programming_passes

    def test_scheduled_latency_close_to_analytical(self, runtime):
        scheduled = scheduled_batch_latency_s(runtime)
        analytical = runtime.batch_latency_s
        # The event-driven schedule can only be faster (cross-layer overlap)
        # and should be within a modest factor of the closed form.
        assert scheduled <= analytical * (1 + 1e-9)
        assert scheduled > 0.5 * analytical

    def test_schedule_summary_keys(self, runtime):
        summary = schedule_summary(runtime)
        assert summary["num_tiles"] == runtime.total_programming_passes
        assert summary["speedup"] >= 1.0
        assert summary["dual_core_makespan_s"] <= summary["single_core_makespan_s"]

    def test_single_core_schedule_matches_analytical_exactly(self):
        runtime = simulate_network(build_lenet5(), small_test_chip(num_cores=1))
        scheduled = scheduled_batch_latency_s(runtime, num_cores=1)
        # For a single core the schedule is strictly serial; the only
        # difference from the analytical sum is the (absent) DRAM bound.
        assert scheduled == pytest.approx(runtime.batch_latency_s, rel=1e-9)


class TestRoofline:
    def test_machine_balance_and_roof(self, optimal_config):
        roofline = RooflineModel(optimal_config)
        balance = roofline.machine_balance_macs_per_bit
        assert balance > 0
        assert roofline.attainable_macs_per_second(balance) == pytest.approx(
            roofline.peak_macs_per_second, rel=1e-9
        )
        assert roofline.attainable_macs_per_second(balance / 10) == pytest.approx(
            roofline.peak_macs_per_second / 10, rel=1e-9
        )

    def test_layer_points_and_summary(self, optimal_runtime, optimal_config):
        roofline = RooflineModel(optimal_config)
        points = roofline.layer_points(optimal_runtime)
        assert len(points) == len(optimal_runtime.layers)
        assert all(p.bound in ("compute", "memory") for p in points)
        summary = roofline.summary(optimal_runtime)
        assert 0.0 <= summary["memory_bound_fraction"] <= 1.0
        assert summary["achieved_macs_per_second"] <= summary["peak_macs_per_second"]

    def test_config_mismatch_rejected(self, optimal_runtime):
        with pytest.raises(SimulationError):
            RooflineModel(default_sweep_chip()).layer_points(optimal_runtime)

    def test_negative_intensity_rejected(self, optimal_config):
        with pytest.raises(SimulationError):
            RooflineModel(optimal_config).attainable_macs_per_second(-1.0)


class TestMlpBuilder:
    def test_structure_and_counts(self):
        network = build_mlp(input_features=784, hidden_features=(512, 256), num_classes=10)
        assert network.output_shape.channels == 10
        # 784*512 + 512 + 512*256 + 256 + 256*10 + 10 parameters.
        assert network.total_weights == 784 * 512 + 512 + 512 * 256 + 256 + 256 * 10 + 10
        assert network.total_macs == 784 * 512 + 512 * 256 + 256 * 10

    def test_all_compute_layers_are_dense(self):
        network = build_mlp()
        assert all(info.layer.__class__.__name__ == "DenseLayer" for info in network.crossbar_layers)

    def test_mlp_simulates_on_the_accelerator(self):
        runtime = simulate_network(build_mlp(hidden_features=(256,), num_classes=100),
                                   small_test_chip(batch_size=4))
        assert runtime.inferences_per_second > 0
        # With no convolutional reuse, programming passes dominate cycles at
        # small batch: there is at least one pass per dense layer.
        assert runtime.total_programming_passes >= 2

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            build_mlp(input_features=0)
