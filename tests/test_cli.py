"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import WORKLOADS, build_network, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["workloads"])
        assert args.command == "workloads"

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_chip_arguments_have_paper_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.rows == 128 and args.columns == 128
        assert args.batch == 32 and args.cores == 2
        assert args.input_sram_mb == pytest.approx(26.3)

    def test_build_network_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_network("resnet999")

    def test_every_registered_workload_builds(self):
        for name in WORKLOADS:
            assert build_network(name).total_macs > 0


class TestCommands:
    def test_evaluate_text_report(self, capsys):
        code = main(["evaluate", "--network", "lenet5", "--rows", "16", "--columns", "16",
                     "--batch", "2", "--input-sram-mb", "0.5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "IPS" in output and "Power breakdown" in output

    def test_evaluate_json_summary(self, capsys):
        code = main(["evaluate", "--network", "lenet5", "--rows", "16", "--columns", "16",
                     "--batch", "2", "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["rows"] == 16
        assert summary["ips"] > 0

    def test_compare_prints_both_systems(self, capsys):
        code = main(["compare", "--network", "lenet5", "--rows", "32", "--columns", "32",
                     "--batch", "4"])
        assert code == 0
        output = capsys.readouterr().out
        assert "This work" in output and "NVIDIA A100" in output

    def test_workloads_lists_all_networks(self, capsys):
        code = main(["workloads"])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("resnet50", "vgg16", "lenet5"):
            assert name in output

    def test_figure_writes_csv(self, tmp_path, capsys):
        output_file = tmp_path / "fig7a.csv"
        code = main(["figure", "--name", "fig7a", "--network", "lenet5",
                     "--output", str(output_file)])
        assert code == 0
        content = output_file.read_text()
        assert "batch_size" in content.splitlines()[0]

    def test_figure_table1_prints_json(self, capsys):
        code = main(["figure", "--name", "table1", "--network", "lenet5"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert "rows" in data and "ratios" in data

    def test_infer_json_summary(self, capsys):
        code = main(["infer", "--network", "lenet5", "--images", "2",
                     "--rows", "32", "--columns", "32", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["images"] == 2
        assert data["programming_events"] > 0
        assert 0.0 <= data["top1_match_rate"] <= 1.0
        assert data["images_per_second"] > 0

    def test_infer_text_report_mentions_cache(self, capsys):
        code = main(["infer", "--network", "lenet5", "--images", "2",
                     "--rows", "32", "--columns", "32"])
        assert code == 0
        output = capsys.readouterr().out
        assert "PCM programming events" in output
        assert "images/s" in output

    def test_infer_rejects_non_positive_images(self):
        with pytest.raises(SystemExit):
            main(["infer", "--network", "lenet5", "--images", "0"])

    @pytest.mark.multicore
    def test_infer_workers_thread_matches_serial(self, capsys):
        base = ["infer", "--network", "lenet5", "--images", "2",
                "--rows", "32", "--columns", "32", "--json"]
        assert main(base) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(base + ["--workers", "thread"]) == 0
        threaded = json.loads(capsys.readouterr().out)
        assert threaded["workers"] == "thread"
        assert threaded["mean_relative_error"] == serial["mean_relative_error"]
        assert threaded["per_core_tile_dispatches"] == serial["per_core_tile_dispatches"]
        assert sum(threaded["per_core_tile_dispatches"]) > 0

    @pytest.mark.multicore
    def test_infer_text_report_mentions_core_dispatches(self, capsys):
        code = main(["infer", "--network", "lenet5", "--images", "2",
                     "--rows", "32", "--columns", "32", "--workers", "2"])
        assert code == 0
        assert "tile GEMMs per crossbar core" in capsys.readouterr().out

    def test_infer_rejects_bad_workers(self):
        with pytest.raises(SystemExit):
            main(["infer", "--network", "lenet5", "--images", "1", "--workers", "0"])
        with pytest.raises(SystemExit):
            main(["infer", "--network", "lenet5", "--images", "1", "--workers", "bogus"])
