"""Unit tests for the waveguide propagation model."""

import cmath

import pytest

from repro.errors import DeviceModelError
from repro.photonics import Waveguide


class TestWaveguideLoss:
    def test_loss_scales_linearly_with_length(self):
        one_cm = Waveguide(length_m=0.01, loss_db_per_cm=3.0)
        two_cm = Waveguide(length_m=0.02, loss_db_per_cm=3.0)
        assert one_cm.loss_db == pytest.approx(3.0)
        assert two_cm.loss_db == pytest.approx(6.0)

    def test_power_transmission_of_3db_segment(self):
        wg = Waveguide(length_m=0.01, loss_db_per_cm=3.0)
        assert wg.power_transmission == pytest.approx(0.5, rel=5e-3)

    def test_field_transmission_is_sqrt_of_power(self):
        wg = Waveguide(length_m=0.005)
        assert wg.field_transmission == pytest.approx(wg.power_transmission**0.5)

    def test_zero_length_is_lossless(self):
        wg = Waveguide(length_m=0.0)
        assert wg.power_transmission == pytest.approx(1.0)
        assert wg.phase_rad == pytest.approx(0.0)


class TestWaveguidePropagation:
    def test_propagate_applies_loss_and_phase(self):
        wg = Waveguide(length_m=100e-6)
        out = wg.propagate(1.0 + 0j)
        assert abs(out) == pytest.approx(wg.field_transmission)
        assert cmath.phase(out) == pytest.approx(
            cmath.phase(cmath.exp(-1j * wg.phase_rad))
        )

    def test_group_delay_positive_and_plausible(self):
        wg = Waveguide(length_m=3.84e-3)  # a 128-cell row at 30 um pitch
        assert 1e-12 < wg.group_delay_s < 1e-9


class TestWaveguideValidation:
    def test_rejects_negative_length(self):
        with pytest.raises(DeviceModelError):
            Waveguide(length_m=-1e-6)

    def test_rejects_negative_loss(self):
        with pytest.raises(DeviceModelError):
            Waveguide(length_m=1e-6, loss_db_per_cm=-3.0)

    def test_rejects_bad_wavelength(self):
        with pytest.raises(DeviceModelError):
            Waveguide(length_m=1e-6, wavelength_m=0.0)
