"""Async HTTP front-end lane (``pytest -m asynchttp``).

Covered: NDJSON streaming responses (in-order delivery, byte-for-byte
equality with the non-streamed body item-wise, bitwise equality vs a direct
``run_batch`` across executors and both IPC transports), SSE progress
events, raw-socket keep-alive + pipelining, client connection-pool reuse,
queue-overflow backpressure as ``429 + Retry-After``, the wire-side
telemetry counters, and the chaos subset replayed against the asyncio
front-end (replica SIGKILL mid-batch with zero lost requests, breaker shed
as 503, ``--legacy-http`` CLI fallback).  The legacy front-end's explicit
rejection of ``stream`` is pinned here too.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.parse

import numpy as np
import pytest

from repro.cli import main
from repro.config import small_test_chip
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.errors import BadRequestError, CircuitOpenError, ServeError
from repro.nn import build_lenet5
from repro.serve import (
    AsyncServeHTTPServer,
    CircuitBreakerPolicy,
    HTTPInferenceClient,
    InferenceServer,
    LoadGenerator,
    ModelDefinition,
    ModelRegistry,
    ServeHTTPServer,
    encode_array_b64,
)

pytestmark = pytest.mark.asynchttp

_CHIP = dict(rows=32, columns=32, num_cores=2)


@pytest.fixture(scope="module")
def lenet_workload():
    network = build_lenet5()
    weights = generate_random_weights(network, seed=0, scale=0.3)
    config = small_test_chip(**_CHIP)
    images = np.random.default_rng(1).uniform(
        0.0, 1.0, (8,) + network.input_shape.as_tuple()
    )
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    return network, weights, config, images, direct


def _server(lenet_workload, **overrides) -> InferenceServer:
    network, weights, config, _, _ = lenet_workload
    options = dict(max_batch=4, max_wait_s=0.005)
    options.update(overrides)
    return InferenceServer(network, weights, config, **options)


def _faulty_server(lenet_workload, **model_options) -> InferenceServer:
    """A single-model server whose definition carries fault/breaker knobs."""
    network, weights, config, _, _ = lenet_workload
    options = dict(max_batch=4, max_wait_s=0.005)
    options.update(model_options)
    registry = ModelRegistry(
        [
            ModelDefinition(
                name="lenet5", network=network, weights=dict(weights), config=config,
                **options,
            )
        ]
    )
    return InferenceServer(registry=registry)


def _raw_post(url: str, payload: dict):
    """POST and return ``(status, headers, body_bytes)`` without retries."""
    parts = urllib.parse.urlsplit(url)
    connection = http.client.HTTPConnection(parts.hostname, parts.port, timeout=30.0)
    try:
        body = json.dumps(payload).encode("utf-8")
        connection.request(
            "POST", "/v1/infer", body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestStreaming:
    def test_streamed_items_byte_equal_non_streamed_npy(self, lenet_workload):
        """Acceptance: streamed and non-streamed responses byte-compare equal
        item-wise — the streamed ``output_npy_b64`` string for item *i* is the
        exact base64 serialization of row *i* of the non-streamed batch."""
        _, _, _, images, _ = lenet_workload
        payload = {"images_npy_b64": encode_array_b64(images), "block": True}
        with _server(lenet_workload) as server:
            with AsyncServeHTTPServer(server) as front:
                status, _, plain = _raw_post(front.url, payload)
                assert status == 200
                status, headers, streamed = _raw_post(
                    front.url, {**payload, "stream": True}
                )
                assert status == 200
                assert headers.get("Content-Type") == "application/x-ndjson"
        from repro.serve import decode_array_b64

        batch = decode_array_b64(json.loads(plain)["outputs_npy_b64"])
        lines = [json.loads(line) for line in streamed.splitlines() if line]
        assert lines[-1]["done"] is True
        assert lines[-1]["count"] == len(images)
        items = lines[:-1]
        assert [item["index"] for item in items] == list(range(len(images)))
        for index, item in enumerate(items):
            # string equality of the base64 payloads == byte equality
            assert item["output_npy_b64"] == encode_array_b64(batch[index])

    def test_streamed_json_items_equal_non_streamed_rows(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        payload = {"images": images.tolist(), "block": True}
        with _server(lenet_workload) as server:
            with AsyncServeHTTPServer(server) as front:
                _, _, plain = _raw_post(front.url, payload)
                _, _, streamed = _raw_post(front.url, {**payload, "stream": True})
        outputs = json.loads(plain)["outputs"]
        items = [json.loads(line) for line in streamed.splitlines() if line][:-1]
        assert [item["output"] for item in items] == outputs

    @pytest.mark.parametrize(
        "executor, ipc",
        [("serial", None), ("thread:2", None), ("process:2", "pickle"), ("process:2", "shm")],
    )
    def test_streamed_bitwise_vs_run_batch_all_executors(
        self, lenet_workload, executor, ipc
    ):
        """Acceptance: bitwise-identical outputs through the async front-end
        for every executor spec and both IPC transports."""
        _, _, _, images, direct = lenet_workload
        overrides = dict(executor=executor)
        if ipc is not None:
            overrides["ipc"] = ipc
        with _server(lenet_workload, **overrides) as server:
            with AsyncServeHTTPServer(server) as front:
                with HTTPInferenceClient(front.url, encoding="npy_b64") as client:
                    plain = client.infer_batch(images)
                    streamed = client.infer_batch(images, stream=True)
        assert np.array_equal(plain, direct)
        assert np.array_equal(streamed, direct)

    def test_stream_yields_index_output_pairs_in_order(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload) as server:
            with AsyncServeHTTPServer(server) as front:
                with HTTPInferenceClient(front.url) as client:
                    pairs = list(client.infer_stream(images))
        assert [index for index, _ in pairs] == list(range(len(images)))
        assert np.array_equal(np.stack([row for _, row in pairs]), direct)

    def test_legacy_front_end_rejects_stream_with_400(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        with _server(lenet_workload) as server:
            with ServeHTTPServer(server) as front:
                status, _, body = _raw_post(
                    front.url, {"images": images.tolist(), "stream": True}
                )
                assert status == 400
                assert json.loads(body)["type"] == "BadRequestError"
                with HTTPInferenceClient(front.url) as client:
                    with pytest.raises(BadRequestError, match="stream"):
                        client.infer_batch(images, stream=True)


class TestSSEProgress:
    def test_events_report_progress_then_done(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload) as server:
            with AsyncServeHTTPServer(server) as front:
                with HTTPInferenceClient(front.url) as client:
                    done = threading.Event()
                    collected = []

                    def subscribe():
                        # subscribes while the batch is in flight
                        collected.extend(client.events("sse-req"))
                        done.set()

                    rows = []
                    stream = client.infer_stream(images, request_id="sse-req")
                    first = next(stream)
                    watcher = threading.Thread(target=subscribe, daemon=True)
                    watcher.start()
                    rows = [first] + list(stream)
                    assert done.wait(30.0), "SSE subscriber never saw 'done'"
        assert np.array_equal(np.stack([r for _, r in rows]), direct)
        assert collected, "no SSE events received"
        final = collected[-1]
        assert final["event"] == "done"
        assert final["data"]["status"] == "done"
        assert final["data"]["completed"] == len(images)
        assert final["data"]["failed"] == 0
        assert all(event["data"]["request_id"] == "sse-req" for event in collected)

    def test_late_subscriber_gets_immediate_done(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        with _server(lenet_workload) as server:
            with AsyncServeHTTPServer(server) as front:
                with HTTPInferenceClient(front.url) as client:
                    client.infer_batch(
                        images[:2], stream=False
                    )  # no request_id: nothing registered
                    list(client.infer_stream(images[:2], request_id="finished"))
                    events = list(client.events("finished"))
        assert len(events) == 1
        assert events[0]["event"] == "done"
        assert events[0]["data"]["total"] == 2

    def test_unknown_request_id_is_404(self, lenet_workload):
        with _server(lenet_workload) as server:
            with AsyncServeHTTPServer(server) as front:
                with HTTPInferenceClient(front.url, max_retries=0) as client:
                    with pytest.raises(ServeError, match="HTTP 404"):
                        list(client.events("never-registered"))


class TestKeepAliveAndPipelining:
    def test_raw_socket_pipelined_requests_answered_in_order(self, lenet_workload):
        """Two requests written back-to-back before reading anything: the
        front-end answers both, in order, on the same connection."""
        with _server(lenet_workload) as server:
            with AsyncServeHTTPServer(server) as front:
                with socket.create_connection(("127.0.0.1", front.port), 30.0) as sock:
                    request = (
                        b"GET /healthz HTTP/1.1\r\n"
                        b"Host: x\r\nAccept: */*\r\n\r\n"
                    )
                    sock.sendall(request + request)  # pipelined
                    sock.settimeout(30.0)
                    buffer = b""
                    deadline = time.monotonic() + 30.0
                    while buffer.count(b'"status"') < 2 and time.monotonic() < deadline:
                        chunk = sock.recv(65536)
                        if not chunk:
                            break
                        buffer += chunk
        assert buffer.count(b"HTTP/1.1 200 OK") == 2
        assert b"Connection: keep-alive" in buffer

    def test_client_pool_reuses_one_connection(self, lenet_workload):
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload) as server:
            with AsyncServeHTTPServer(server) as front:
                with HTTPInferenceClient(front.url) as client:
                    for image in images:
                        client.infer(image)  # sequential: one socket suffices
                    transport = client.transport_stats()
                    snapshot = front.telemetry.snapshot()
        assert transport["connections_opened"] == 1
        assert transport["connections_reused"] == len(images) - 1
        assert snapshot["connections_opened"] == 1
        assert snapshot["requests"].get("/v1/infer 200") == len(images)

    def test_client_pool_reuses_connection_across_streams_and_sse(
        self, lenet_workload
    ):
        """Streamed NDJSON and SSE responses return their socket to the pool.

        Regression: ``infer_stream`` stops iterating ``_ndjson_items`` the
        moment it sees the terminal item, closing the generator at the yield —
        the drain-and-mark-reusable step must therefore run *before* that
        yield, or every stream leaks its pooled connection.
        """
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload) as server:
            with AsyncServeHTTPServer(server) as front:
                with HTTPInferenceClient(front.url, encoding="npy_b64") as client:
                    batch = client.infer_batch(images)
                    rows = dict(client.infer_stream(images, request_id="pool"))
                    for event in client.events("pool"):
                        if event["event"] == "done":
                            break  # early-exit consumer: worst case for reuse
                    client.healthz()
                    transport = client.transport_stats()
        np.testing.assert_array_equal(batch, direct)
        np.testing.assert_array_equal(
            np.stack([rows[i] for i in range(len(images))]), direct
        )
        assert transport["connections_opened"] == 1, transport
        assert transport["connections_idle"] == 1, transport

    def test_telemetry_counts_streams_and_sse(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        with _server(lenet_workload) as server:
            with AsyncServeHTTPServer(server) as front:
                with HTTPInferenceClient(front.url) as client:
                    list(client.infer_stream(images, request_id="telemetry"))
                    list(client.events("telemetry"))
                    # the server records the SSE counters just after the
                    # client read the last event: allow it a beat
                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline:
                        snapshot = front.telemetry.snapshot()
                        if snapshot["sse_streams"] >= 1:
                            break
                        time.sleep(0.02)
        assert snapshot["streams_started"] == 1
        assert snapshot["stream_items"] == len(images)
        assert snapshot["sse_streams"] == 1
        assert snapshot["sse_events"] >= 1

    def test_metrics_expose_frontend_families(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        with _server(lenet_workload) as server:
            with AsyncServeHTTPServer(server) as front:
                with HTTPInferenceClient(front.url) as client:
                    client.infer(images[0])
                parts = urllib.parse.urlsplit(front.url)
                connection = http.client.HTTPConnection(
                    parts.hostname, parts.port, timeout=30.0
                )
                try:
                    connection.request("GET", "/metrics")
                    text = connection.getresponse().read().decode("utf-8")
                finally:
                    connection.close()
        assert "repro_http_connections_opened_total" in text
        assert 'repro_http_requests_total{frontend="async",route="/v1/infer"' in text


class TestBackpressure:
    def test_queue_overflow_is_429_with_retry_after_header(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        server = _server(
            lenet_workload, max_batch=2, max_wait_s=0.0, queue_capacity=2
        )
        with server:
            with AsyncServeHTTPServer(server) as front:
                saw_429 = None
                # non-blocking floods shed once the 2-deep queue fills
                for _ in range(12):
                    status, headers, body = _raw_post(
                        front.url,
                        {"images": images.tolist(), "block": False},
                    )
                    if status == 429:
                        saw_429 = (headers, json.loads(body))
                        break
        assert saw_429 is not None, "flood never produced a 429"
        headers, payload = saw_429
        assert payload["type"] == "QueueOverflowError"
        retry_after = headers.get("Retry-After")
        assert retry_after is not None, "429 without Retry-After hint"
        assert int(retry_after) >= 1

    def test_retry_after_hint_tracks_service_time(self, lenet_workload):
        """The hint grows with observed batch service time and queue depth."""
        with _server(lenet_workload) as server:
            batcher = server._runtime(None).batcher
            assert batcher.retry_after_hint_s() == 1.0  # no samples yet: default
            batcher.observe_batch(4, 0.2)
            hint = batcher.retry_after_hint_s()
            assert 0.05 <= hint <= 30.0
            batcher.observe_batch(4, 10.0)  # EWMA moves toward slow batches
            assert server.admission_retry_after_s() > hint


class TestAsyncChaos:
    @pytest.mark.parametrize("ipc", ["pickle", "shm"])
    def test_replica_sigkill_mid_run_zero_lost_bitwise_over_async_http(
        self, lenet_workload, ipc
    ):
        """Chaos acceptance: process replicas crash every few batches while a
        closed-loop client drives the async front-end — nothing is lost and
        every output stays bitwise identical, over both IPC transports."""
        _, _, _, images, direct = lenet_workload
        server = _faulty_server(
            lenet_workload,
            executor="process:2",
            max_batch=2,
            faults=["crash:every=5"],
            dispatch_timeout_s=120.0,
            max_attempts=3,
            backoff_base_s=0.01,
            ipc=ipc,
        )
        flood = np.concatenate([images, images])
        with server:
            with AsyncServeHTTPServer(server) as front:
                with HTTPInferenceClient(
                    front.url, timeout_s=120.0, encoding="npy_b64"
                ) as client:
                    report = LoadGenerator(client).run_closed_loop(
                        flood, concurrency=4
                    )
            stats = server.stats()
        assert report.requests == len(flood)  # zero lost requests
        assert np.array_equal(report.outputs, np.concatenate([direct, direct]))
        faults = stats["pool"]["faults"]
        assert faults["injection"]["injected"]["crash"] >= 1
        assert faults["replica_restarts"] >= 1
        assert faults["batches_failed"] == 0

    def test_open_breaker_is_503_circuit_open_over_async_http(self, lenet_workload):
        _, _, _, images, _ = lenet_workload
        server = _faulty_server(
            lenet_workload,
            executor="thread:1",
            faults=["crash"],
            max_attempts=1,
            backoff_base_s=0.0,
            breaker=CircuitBreakerPolicy(
                failure_threshold=0.5, window=4, min_samples=1, recovery_s=60.0,
            ),
        )
        with server, AsyncServeHTTPServer(server) as front:
            client = HTTPInferenceClient(front.url, timeout_s=120.0, max_retries=0)
            try:
                with pytest.raises(ServeError):
                    client.infer(images[0])  # trips the breaker
                with pytest.raises(CircuitOpenError) as excinfo:
                    client.infer(images[0])  # now shed at admission
                health = client.healthz()
            finally:
                client.close()
        assert excinfo.value.retry_after_s >= 1.0  # Retry-After round-tripped
        assert health["status"] == "down"

    def test_stopped_engine_maps_to_503_mid_keep_alive(self, lenet_workload):
        """A pooled keep-alive connection outlives the engine: requests on it
        surface the lifecycle 503, not a hung socket."""
        _, _, _, images, _ = lenet_workload
        server = _server(lenet_workload).start()
        with AsyncServeHTTPServer(server) as front:
            with HTTPInferenceClient(front.url, max_retries=0) as client:
                client.infer(images[0])
                server.stop()
                with pytest.raises(ServeError, match="HTTP 503"):
                    client.infer(images[0])


class TestLegacyCliFallback:
    def test_serve_legacy_http_round_trip(self, tmp_path):
        """``--legacy-http`` keeps the threaded front-end reachable (and
        stream-free) for one release."""
        ready_file = tmp_path / "serve-url.txt"
        result = {}

        def run():
            result["code"] = main(
                [
                    "serve", "--network", "lenet5", "--rows", "32", "--columns", "32",
                    "--http", "0", "--legacy-http",
                    "--allow-remote-shutdown", "--ready-file", str(ready_file),
                ]
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 60.0
        url = None
        while time.monotonic() < deadline:
            if ready_file.exists():
                url = ready_file.read_text().strip()
                if url:
                    break
            time.sleep(0.1)
        assert url, "serve --http 0 --legacy-http never published its URL"
        client = HTTPInferenceClient(url, timeout_s=30.0)
        try:
            health = None
            while time.monotonic() < deadline:
                try:
                    health = client.healthz()
                    break
                except ServeError:
                    time.sleep(0.1)
            assert health is not None, "legacy HTTP front-end never came up"
            image = np.random.default_rng(7).uniform(0.0, 1.0, (28, 28, 1))
            with pytest.raises(BadRequestError, match="stream"):
                client.infer_batch(image[None], stream=True)
            assert client.infer(image).shape[-1] == 10
            client.shutdown_remote()
        finally:
            client.close()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert result["code"] == 0
