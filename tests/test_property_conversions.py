"""Property-based tests (hypothesis) for unit conversions and quantisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import constants
from repro.nn.quant import dequantize, quantize_tensor, quantize_to_unit_range, split_signed_matrix
from repro.photonics.pcm import quantize_weight_matrix


class TestDecibelProperties:
    @given(st.floats(min_value=-80.0, max_value=80.0))
    def test_db_linear_round_trip(self, db):
        assert constants.linear_to_db(constants.db_to_linear(db)) == pytest.approx(db, abs=1e-9)

    @given(st.floats(min_value=0.0, max_value=200.0))
    def test_loss_transmission_round_trip(self, loss_db):
        transmission = constants.loss_db_to_transmission(loss_db)
        assert 0.0 < transmission <= 1.0
        assert constants.transmission_to_loss_db(transmission) == pytest.approx(loss_db, abs=1e-6)

    @given(st.floats(min_value=0.0, max_value=100.0), st.floats(min_value=0.0, max_value=100.0))
    def test_losses_compose_additively_in_db(self, loss_a, loss_b):
        combined = constants.loss_db_to_transmission(loss_a + loss_b)
        separate = constants.loss_db_to_transmission(loss_a) * constants.loss_db_to_transmission(loss_b)
        assert combined == pytest.approx(separate, rel=1e-9)

    @given(st.floats(min_value=1e-9, max_value=1e3))
    def test_dbm_watt_round_trip(self, watts):
        assert constants.dbm_to_watts(constants.watts_to_dbm(watts)) == pytest.approx(watts, rel=1e-9)

    @given(st.floats(min_value=0.0, max_value=120.0))
    def test_field_transmission_squares_to_power_transmission(self, loss_db):
        field = constants.field_transmission_from_loss_db(loss_db)
        assert field**2 == pytest.approx(constants.loss_db_to_transmission(loss_db), rel=1e-9)


class TestQuantisationProperties:
    @given(
        arrays(
            dtype=float,
            shape=st.tuples(st.integers(1, 20), st.integers(1, 20)),
            elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        ),
        st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantize_dequantize_error_bounded_by_half_lsb(self, tensor, bits):
        codes, params = quantize_tensor(tensor, bits=bits)
        restored = dequantize(codes, params)
        assert np.all(codes >= 0) and np.all(codes <= params.max_code)
        assert np.max(np.abs(restored - tensor)) <= params.scale / 2 + 1e-9

    @given(
        arrays(
            dtype=float,
            shape=st.tuples(st.integers(1, 16), st.integers(1, 16)),
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_pcm_weight_quantisation_is_idempotent_and_bounded(self, weights):
        quantised = quantize_weight_matrix(weights, levels=64)
        again = quantize_weight_matrix(quantised, levels=64)
        assert np.allclose(quantised, again)
        assert np.all(quantised >= 0.0) and np.all(quantised <= 1.0)
        assert np.max(np.abs(quantised - weights)) <= 0.5 / 63 + 1e-9

    @given(
        arrays(
            dtype=float,
            shape=st.integers(1, 200),
            elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_unit_range_quantisation_reconstruction(self, tensor):
        quantised, scale = quantize_to_unit_range(tensor, bits=6)
        assert np.all(quantised >= 0.0) and np.all(quantised <= 1.0)
        assert np.max(np.abs(quantised * scale - tensor)) <= scale / 63 / 2 + 1e-6

    @given(
        arrays(
            dtype=float,
            shape=st.tuples(st.integers(1, 10), st.integers(1, 10)),
            elements=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_signed_split_invariants(self, matrix):
        positive, negative = split_signed_matrix(matrix)
        assert np.allclose(positive - negative, matrix)
        assert np.all(positive >= 0) and np.all(negative >= 0)
        assert np.all(positive * negative == 0)
