"""Unit tests for the SRAM/DRAM models, traffic counters and memory system."""

import pytest

from repro.config import ChipConfig, SramConfig
from repro.errors import CapacityError, SimulationError
from repro.memory import DRAMModel, MemorySystem, MemoryTrafficRecord, SRAMBlock, TrafficCounter


class TestTrafficCounter:
    def test_record_and_total(self):
        counter = TrafficCounter()
        counter.record_read(100)
        counter.record_write(50)
        assert counter.total_bits == pytest.approx(150)

    def test_energy(self):
        counter = TrafficCounter(bits_read=1000, bits_written=0)
        assert counter.energy_j(50e-15) == pytest.approx(5e-11)

    def test_merge_and_reset(self):
        a = TrafficCounter(bits_read=10)
        b = TrafficCounter(bits_written=20)
        merged = a.merge(b)
        assert merged.total_bits == pytest.approx(30)
        a.reset()
        assert a.total_bits == 0

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            TrafficCounter().record_read(-1)


class TestMemoryTrafficRecord:
    def test_bits_and_total(self):
        record = MemoryTrafficRecord({"dram": 100.0, "input_sram": 50.0})
        assert record.bits("dram") == pytest.approx(100.0)
        assert record.bits("missing") == 0.0
        assert record.total_bits == pytest.approx(150.0)

    def test_scaled_and_merged(self):
        record = MemoryTrafficRecord({"dram": 100.0})
        assert record.scaled(0.5).bits("dram") == pytest.approx(50.0)
        merged = record.merged(MemoryTrafficRecord({"dram": 1.0, "input_sram": 2.0}))
        assert merged.bits("dram") == pytest.approx(101.0)
        assert merged.bits("input_sram") == pytest.approx(2.0)

    def test_rejects_negative_traffic(self):
        with pytest.raises(SimulationError):
            MemoryTrafficRecord({"dram": -1.0})


class TestSRAMBlock:
    def test_capacity_and_fits(self):
        block = SRAMBlock("input_sram", capacity_mb=1.0)
        assert block.capacity_bits == pytest.approx(8 * 1024 * 1024)
        assert block.fits(1024)
        assert not block.fits(block.capacity_bits + 1)

    def test_read_write_energy_and_traffic(self):
        block = SRAMBlock("input_sram", capacity_mb=1.0)
        energy = block.read(1000) + block.write(500)
        assert energy == pytest.approx(1500 * 50e-15)
        assert block.traffic.total_bits == pytest.approx(1500)
        assert block.total_access_energy_j == pytest.approx(energy)

    def test_area_and_leakage_scale_with_capacity(self):
        small = SRAMBlock("x", 1.0)
        large = SRAMBlock("x", 4.0)
        assert large.area_mm2 == pytest.approx(4 * small.area_mm2)
        assert large.leakage_power_w == pytest.approx(4 * small.leakage_power_w)

    def test_occupancy_fraction(self):
        block = SRAMBlock("x", 1.0)
        assert block.occupancy_fraction(block.capacity_bits / 2) == pytest.approx(0.5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(CapacityError):
            SRAMBlock("x", 0.0)


class TestDRAMModel:
    def test_hbm_vs_pcie_energy(self):
        hbm = DRAMModel("hbm")
        pcie = DRAMModel("pcie")
        assert hbm.energy_per_bit_j == pytest.approx(3.9e-12)
        assert pcie.energy_per_bit_j == pytest.approx(15e-12)

    def test_pcie_bandwidth_is_capped(self):
        assert DRAMModel("pcie").bandwidth_bits_per_s <= 256e9
        assert DRAMModel("hbm").bandwidth_bits_per_s > 1e12

    def test_transfer_time(self):
        dram = DRAMModel("hbm")
        assert dram.transfer_time_s(dram.bandwidth_bits_per_s) == pytest.approx(1.0)

    def test_traffic_and_energy_accounting(self):
        dram = DRAMModel("hbm")
        energy = dram.read(1e9) + dram.write(1e9)
        assert energy == pytest.approx(2e9 * 3.9e-12)
        assert dram.total_access_energy_j == pytest.approx(energy)

    def test_rejects_unknown_kind(self):
        with pytest.raises(SimulationError):
            DRAMModel("optane")


class TestMemorySystem:
    @pytest.fixture()
    def system(self):
        config = ChipConfig(
            sram=SramConfig(input_mb=2.0, filter_mb=1.0, output_mb=0.5, accumulator_mb=0.5)
        )
        return MemorySystem(config)

    def test_block_capacities_follow_config(self, system):
        assert system.input_sram.capacity_mb == pytest.approx(2.0)
        assert system.filter_sram.capacity_mb == pytest.approx(1.0)
        assert set(system.sram_blocks) == {
            "input_sram",
            "filter_sram",
            "output_sram",
            "accumulator_sram",
        }

    def test_total_area_is_sum_of_blocks(self, system):
        assert system.total_sram_area_mm2 == pytest.approx(
            sum(block.area_mm2 for block in system.sram_blocks.values())
        )

    def test_energy_for_traffic_distinguishes_sram_and_dram(self, system):
        record = MemoryTrafficRecord({"dram": 1e6, "input_sram": 1e6})
        energies = system.energy_for_traffic(record)
        assert energies["dram"] == pytest.approx(1e6 * 3.9e-12)
        assert energies["input_sram"] == pytest.approx(1e6 * 50e-15)
        assert system.total_energy_for_traffic(record) == pytest.approx(
            energies["dram"] + energies["input_sram"]
        )
        assert system.dram_energy_for_traffic(record) == pytest.approx(energies["dram"])
        assert system.sram_energy_for_traffic(record) == pytest.approx(energies["input_sram"])

    def test_energy_for_traffic_rejects_unknown_structure(self, system):
        with pytest.raises(SimulationError):
            system.energy_for_traffic(MemoryTrafficRecord({"l3_cache": 1.0}))

    def test_working_set_queries(self, system):
        assert system.input_working_set_fits(1024)
        assert not system.filter_working_set_fits(system.filter_sram.capacity_bits * 2)
