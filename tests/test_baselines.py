"""Tests for the GPU, systolic, MZI-mesh and WDM baselines."""

import pytest

from repro.baselines import (
    IncoherentWDMCrossbarModel,
    MZIMeshONNModel,
    NVIDIA_A100,
    NVIDIA_T4,
    NVIDIA_V100,
    SystolicArrayAccelerator,
    known_gpu_references,
)
from repro.config import ChipConfig
from repro.errors import SimulationError
from repro.nn import build_lenet5


class TestGPUReferences:
    def test_a100_table1_values(self):
        assert NVIDIA_A100.resnet50_ips == pytest.approx(29_733)
        assert NVIDIA_A100.power_w == pytest.approx(396)
        assert NVIDIA_A100.die_area_mm2 == pytest.approx(826)
        assert NVIDIA_A100.ips_per_watt == pytest.approx(29_733 / 396)

    def test_reference_catalogue(self):
        refs = known_gpu_references()
        assert NVIDIA_A100 in refs and NVIDIA_V100 in refs and NVIDIA_T4 in refs
        assert all(ref.ips_per_watt > 0 for ref in refs)

    def test_as_dict(self):
        data = NVIDIA_A100.as_dict()
        assert data["name"] == "NVIDIA A100"
        assert data["peak_tops_per_watt"] > 1.0


class TestSystolicBaseline:
    @pytest.fixture(scope="class")
    def result(self):
        config = ChipConfig(rows=32, columns=32, batch_size=4)
        return SystolicArrayAccelerator(config).evaluate(build_lenet5())

    def test_metrics_present_and_positive(self, result):
        for key in ("ips", "power_w", "ips_per_watt", "area_mm2", "energy_per_inference_j"):
            assert result[key] > 0

    def test_mac_energy_is_a_visible_fraction(self, result):
        assert 0 < result["mac_energy_fraction"] < 1

    def test_systolic_runs_at_electronic_clock(self):
        config = ChipConfig(rows=32, columns=32, batch_size=4, mac_clock_hz=10e9)
        baseline = SystolicArrayAccelerator(config)
        assert baseline.config.mac_clock_hz == pytest.approx(1e9)
        assert baseline.config.num_cores == 1

    def test_optical_crossbar_has_higher_throughput_than_systolic(
        self, resnet_framework, optimal_config, resnet50
    ):
        optical = resnet_framework.evaluate(optimal_config)
        systolic = SystolicArrayAccelerator(optimal_config).evaluate(resnet50)
        # Same array dimensions, but the optical MAC runs 10x faster.
        assert optical.inferences_per_second > 3 * systolic["ips"]


class TestMZIMeshBaseline:
    def test_mzi_count_quadratic(self):
        model = MZIMeshONNModel()
        assert model.num_mzis(64) == 64 * 63 // 2
        assert model.num_mzis(128) / model.num_mzis(64) == pytest.approx(4.0, rel=0.05)

    def test_area_exceeds_a_few_cm2_for_large_meshes(self):
        model = MZIMeshONNModel()
        # The paper's scalability argument: large MZI meshes exceed a few cm^2.
        assert model.weight_bank_area_mm2(256) > 300.0

    def test_pcm_crossbar_is_denser_than_mzi_mesh(self, optimal_config):
        from repro.perf.area import AreaModel

        mzi = MZIMeshONNModel()
        crossbar_photonics = AreaModel(optimal_config).photonic_array_area_mm2
        assert mzi.weight_bank_area_mm2(128) > 3 * crossbar_photonics

    def test_max_size_within_area(self):
        model = MZIMeshONNModel()
        n = model.max_size_within_area(100.0)
        assert model.weight_bank_area_mm2(n) <= 100.0
        assert model.weight_bank_area_mm2(n + 1) > 100.0

    def test_static_power_grows_quadratically(self):
        model = MZIMeshONNModel()
        assert model.static_power_w(128) / model.static_power_w(64) == pytest.approx(4.0, rel=0.05)

    def test_summary_and_validation(self):
        summary = MZIMeshONNModel().summary(64)
        assert summary["num_mzis"] == 2016
        with pytest.raises(SimulationError):
            MZIMeshONNModel().num_mzis(1)


class TestWDMBaseline:
    def test_wavelength_count_equals_rows(self):
        model = IncoherentWDMCrossbarModel()
        assert model.wavelengths_needed(128) == 128

    def test_large_arrays_are_infeasible(self):
        model = IncoherentWDMCrossbarModel(usable_band_nm=40, min_channel_spacing_nm=0.4)
        assert model.max_rows == 100
        assert model.is_feasible(64)
        assert not model.is_feasible(128)

    def test_comb_power_scales_with_rows(self):
        model = IncoherentWDMCrossbarModel()
        assert model.comb_power_w(128) == pytest.approx(2 * model.comb_power_w(64))

    def test_summary_flags_feasibility(self):
        summary = IncoherentWDMCrossbarModel().summary(256, 64)
        assert summary["feasible"] is False
        assert summary["ring_tuning_power_w"] > 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            IncoherentWDMCrossbarModel().wavelengths_needed(0)
        with pytest.raises(SimulationError):
            IncoherentWDMCrossbarModel(comb_efficiency=0.0)
