"""Tests for multi-core sharded execution of the functional GEMM datapath.

The ``multicore`` marker groups everything that exercises the sharded path;
the tier-1 run collects this file by default, so sharding regressions fail
every PR (``pytest -m multicore`` selects just these tests).
"""

import numpy as np
import pytest

from repro.config import small_test_chip
from repro.core.accelerator import OpticalCrossbarAccelerator
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.core.sharding import (
    ShardedExecutionEngine,
    compute_entries_per_core,
    resolve_worker_count,
)
from repro.crossbar import CrossbarNoiseModel
from repro.crossbar.dual_core import DualCoreCrossbar
from repro.errors import SimulationError
from repro.nn import build_lenet5

pytestmark = pytest.mark.multicore


def dual_core_chip(**overrides):
    """The 8x8 test chip with both crossbar cores enabled."""
    return small_test_chip(num_cores=2, **overrides)


class TestWorkerSpec:
    def test_serial_resolves_to_inline(self):
        assert resolve_worker_count("serial", 2) == 0

    def test_thread_resolves_to_one_worker_per_core(self):
        assert resolve_worker_count("thread", 2) == 2
        assert resolve_worker_count("thread", 1) == 1

    def test_explicit_count_passes_through(self):
        assert resolve_worker_count(5, 2) == 5

    @pytest.mark.parametrize("bad", [0, -1, "threads", "parallel", 1.5, True, None])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(SimulationError):
            resolve_worker_count(bad, 2)

    def test_accelerator_rejects_invalid_execution(self):
        with pytest.raises(SimulationError):
            OpticalCrossbarAccelerator(dual_core_chip(), execution="bogus")

    def test_engine_rejects_invalid_dimensions(self):
        with pytest.raises(SimulationError):
            ShardedExecutionEngine(0, 10e9)
        with pytest.raises(SimulationError):
            ShardedExecutionEngine(2, 0.0)


class TestRoundRobinAssignment:
    def test_assignment_alternates_like_the_dual_core_schedule(self):
        engine = ShardedExecutionEngine(2, 10e9)
        assert engine.core_assignment(5) == [0, 1, 0, 1, 0]

    def test_single_core_maps_everything_to_core_zero(self):
        engine = ShardedExecutionEngine(1, 10e9)
        assert engine.core_assignment(4) == [0, 0, 0, 0]

    def test_single_core_chip_dispatches_only_core_zero(self):
        accelerator = OpticalCrossbarAccelerator(small_test_chip())
        rng = np.random.default_rng(0)
        accelerator.linear(rng.normal(size=(20, 11)), rng.uniform(0, 1, (4, 20)))
        stats = accelerator.functional_statistics()
        assert stats["per_core_tile_dispatches"] == (6,)
        assert stats["sharded_dispatches"] == 1


class TestBitwiseEquivalence:
    """Acceptance criterion: sharded output == serial output, bitwise."""

    @pytest.fixture()
    def problem(self):
        rng = np.random.default_rng(1)
        # 20x11 weights -> a 3x2 tile grid on the 8x8 chip.
        return rng.normal(size=(20, 11)), rng.uniform(-1, 1, (7, 20))

    @pytest.mark.parametrize("execution", ["thread", 2, 3, 8])
    def test_sharded_linear_matches_serial(self, problem, execution):
        weights, inputs = problem
        serial = OpticalCrossbarAccelerator(dual_core_chip()).linear(weights, inputs)
        sharded = OpticalCrossbarAccelerator(
            dual_core_chip(), execution=execution
        ).linear(weights, inputs)
        assert np.array_equal(serial, sharded)

    def test_sharded_conv2d_matches_serial(self):
        rng = np.random.default_rng(2)
        fmaps = rng.uniform(0, 1, (3, 6, 6, 2))
        weights = rng.normal(size=(3, 3, 2, 4))
        serial = OpticalCrossbarAccelerator(dual_core_chip()).conv2d(
            fmaps, weights, stride=1, padding=1
        )
        sharded = OpticalCrossbarAccelerator(dual_core_chip(), execution="thread").conv2d(
            fmaps, weights, stride=1, padding=1
        )
        assert np.array_equal(serial, sharded)

    def test_noisy_sharded_execution_matches_serial(self, problem):
        weights, inputs = problem
        noise = CrossbarNoiseModel.pessimistic()
        serial = OpticalCrossbarAccelerator(
            dual_core_chip(), noise_model=noise, seed=11
        ).linear(weights, inputs)
        sharded = OpticalCrossbarAccelerator(
            dual_core_chip(), noise_model=noise, seed=11, execution="thread"
        ).linear(weights, inputs)
        assert np.array_equal(serial, sharded)

    def test_noisy_results_do_not_depend_on_plan_build_order(self, problem):
        weights, inputs = problem
        noise = CrossbarNoiseModel.pessimistic()
        rng = np.random.default_rng(3)
        other = rng.normal(size=(9, 9))
        first = OpticalCrossbarAccelerator(dual_core_chip(), noise_model=noise, seed=11)
        first.linear(other, rng.uniform(0, 1, (2, 9)))  # builds an unrelated plan first
        fresh = OpticalCrossbarAccelerator(dual_core_chip(), noise_model=noise, seed=11)
        assert np.array_equal(first.linear(weights, inputs), fresh.linear(weights, inputs))

    def test_sharded_inference_engine_matches_serial(self):
        network = build_lenet5(input_size=12)
        weights = generate_random_weights(network, seed=6, scale=0.3)
        config = small_test_chip(rows=32, columns=32, num_cores=2)
        images = np.random.default_rng(7).uniform(0, 1, (4, 12, 12, 1))
        serial = FunctionalInferenceEngine(network, weights, config).run_batch(images)
        sharded = FunctionalInferenceEngine(
            network, weights, config, execution="thread"
        ).run_batch(images)
        assert np.array_equal(serial, sharded)


class TestScheduleCrossCheck:
    """functional_statistics() must agree with DualCoreCrossbar's schedule."""

    def test_per_core_tile_counts_match_the_analytical_schedule(self):
        accelerator = OpticalCrossbarAccelerator(dual_core_chip(), execution="thread")
        rng = np.random.default_rng(4)
        weights = rng.normal(size=(20, 11))  # 6 tiles -> 3 per core
        inputs = rng.uniform(0, 1, (5, 20))
        accelerator.linear(weights, inputs)

        jobs = accelerator.programming_jobs(weights, inputs.shape[0])
        entries = DualCoreCrossbar(2).schedule(jobs)
        analytical_counts, analytical_busy = compute_entries_per_core(entries, 2)

        stats = accelerator.functional_statistics()
        assert stats["per_core_tile_dispatches"] == analytical_counts == (3, 3)
        assert stats["per_core_busy_time_s"] == pytest.approx(analytical_busy)

    def test_busy_time_accumulates_per_dispatch(self):
        accelerator = OpticalCrossbarAccelerator(dual_core_chip(), execution=2)
        rng = np.random.default_rng(5)
        weights = rng.normal(size=(16, 8))  # 2 tiles, one per core
        inputs = rng.uniform(0, 1, (3, 16))
        accelerator.linear(weights, inputs)
        first = accelerator.functional_statistics()
        accelerator.linear(weights, inputs)
        second = accelerator.functional_statistics()
        assert second["per_core_tile_dispatches"] == (2, 2)
        assert second["sharded_dispatches"] == 2
        for core in range(2):
            assert second["per_core_busy_time_s"][core] == pytest.approx(
                2 * first["per_core_busy_time_s"][core]
            )

    def test_schedule_summary_reports_dual_core_speedup(self):
        accelerator = OpticalCrossbarAccelerator(dual_core_chip())
        rng = np.random.default_rng(6)
        weights = rng.normal(size=(32, 8))  # 4 equal tiles
        summary = accelerator.analytical_schedule(weights, num_vectors=4)
        assert summary["dual_core_makespan_s"] < summary["single_core_makespan_s"]
        assert summary["speedup"] > 1.0

    def test_analytics_queries_leave_the_datapath_untouched(self):
        accelerator = OpticalCrossbarAccelerator(
            dual_core_chip(), max_cached_weight_plans=1
        )
        rng = np.random.default_rng(8)
        inference_weights = rng.normal(size=(8, 8))
        inputs = rng.uniform(0, 1, (2, 8))
        accelerator.linear(inference_weights, inputs)
        before = accelerator.functional_statistics()
        # Analytics on *uncached* weights must not count cache traffic,
        # accumulate programming stats, or evict the hot inference plan.
        accelerator.analytical_schedule(rng.normal(size=(16, 16)), num_vectors=3)
        accelerator.programming_jobs(rng.normal(size=(24, 8)), num_vectors=3)
        assert accelerator.functional_statistics() == before
        accelerator.linear(inference_weights, inputs)  # still cached: no re-program
        stats = accelerator.functional_statistics()
        assert stats["programming_events"] == before["programming_events"]
        assert stats["tile_cache_evictions"] == 0

    def test_programming_jobs_validate_num_vectors(self):
        accelerator = OpticalCrossbarAccelerator(dual_core_chip())
        with pytest.raises(SimulationError):
            accelerator.programming_jobs(np.eye(8), 0)
