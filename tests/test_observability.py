"""Tests for the observability subsystem (``repro.obs`` + its serve wiring).

Everything here carries the ``obs`` marker, so ``pytest -m obs`` runs the
lane on its own (CI also runs it under ``REPRO_SANITIZE=1``).  Covered: the
metrics registry's Prometheus text exposition (golden output, label
escaping, histogram bucket monotonicity), the tracer's sampling/ring
bounds, trace propagation across thread and ``process:N`` replica
boundaries (including a mid-batch replica restart), the exactly-tiling
stage breakdown, the telemetry satellites (bounded latency reservoir,
per-reason flush sizes, admission→delivery window), the slow-request log,
the ``/metrics`` + ``/v1/trace/{id}`` HTTP endpoints, the offline
trace-report command, and bitwise identity of served outputs with tracing
enabled.
"""

from __future__ import annotations

import io
import json
import math
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.config import small_test_chip
from repro.core.accelerator import OpticalCrossbarAccelerator
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.errors import ServeError, SimulationError
from repro.nn import build_lenet5
from repro.obs import (
    STAGES,
    MetricsRegistry,
    SlowRequestLog,
    Tracer,
    load_chrome_trace,
    summarize_chrome_trace,
)
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    format_value,
)
from repro.serve import (
    InferenceServer,
    LatencyReservoir,
    ModelDefinition,
    ModelRegistry,
    ServeHTTPServer,
    ServeTelemetry,
)

pytestmark = pytest.mark.obs

_CHIP = dict(rows=32, columns=32, num_cores=2)


@pytest.fixture(scope="module")
def lenet_workload():
    network = build_lenet5()
    weights = generate_random_weights(network, seed=0, scale=0.3)
    config = small_test_chip(**_CHIP)
    images = np.random.default_rng(1).uniform(
        0.0, 1.0, (8,) + network.input_shape.as_tuple()
    )
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    return network, weights, config, images, direct


def _serve_all(server, images):
    futures = [server.submit(image) for image in images]
    return np.stack([future.result() for future in futures])


def _wait_for_traces(tracer, count, timeout_s=10.0):
    """Traces finish just *after* the response future resolves (the deliver
    span covers the future hand-off), so tests wait for them explicitly."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        traces = tracer.traces()
        if len(traces) >= count:
            return traces
        time.sleep(0.002)
    raise AssertionError(
        f"only {len(tracer.traces())} of {count} traces finished within {timeout_s}s"
    )


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_prometheus_golden_text(self):
        registry = MetricsRegistry()
        requests = registry.counter("test_requests_total", "Requests.", ("outcome",))
        requests.labels(outcome="ok").inc(3)
        requests.labels(outcome="error").inc()
        depth = registry.gauge("test_queue_depth", "Queue depth.")
        depth.set(7)
        text = registry.render_prometheus()
        assert text == (
            "# HELP test_queue_depth Queue depth.\n"
            "# TYPE test_queue_depth gauge\n"
            "test_queue_depth 7\n"
            "# HELP test_requests_total Requests.\n"
            "# TYPE test_requests_total counter\n"
            'test_requests_total{outcome="ok"} 3\n'
            'test_requests_total{outcome="error"} 1\n'
        )

    def test_label_escaping(self):
        registry = MetricsRegistry()
        family = registry.counter("test_escapes_total", "Escapes.", ("path",))
        family.labels(path='a\\b"c\nd').inc()
        line = registry.render_prometheus().splitlines()[-1]
        assert line == 'test_escapes_total{path="a\\\\b\\"c\\nd"} 1'
        assert escape_label_value('x"y') == 'x\\"y'

    def test_format_value_specials(self):
        assert format_value(3.0) == "3"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"
        assert format_value(0.25) == "0.25"

    def test_histogram_buckets_cumulative_and_monotonic(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "test_latency_seconds", "Latency.", buckets=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        family = registry.collect()[0]
        buckets = [
            (labels["le"], value)
            for suffix, labels, value in family["samples"]
            if suffix == "_bucket"
        ]
        assert buckets == [("0.01", 1.0), ("0.1", 3.0), ("1", 4.0), ("+Inf", 5.0)]
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)  # cumulative ⇒ monotone non-decreasing
        by_suffix = {s: v for s, _, v in family["samples"] if s in ("_sum", "_count")}
        assert by_suffix["_count"] == 5.0
        assert math.isclose(by_suffix["_sum"], 5.605)

    def test_histogram_rejects_unsorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(SimulationError):
            registry.histogram("test_bad", "Bad.", buckets=(0.1, 0.1))

    def test_idempotent_creation_and_type_clash(self):
        registry = MetricsRegistry()
        first = registry.counter("test_total", "Doc.", ("a",))
        assert registry.counter("test_total", "Doc.", ("a",)) is first
        with pytest.raises(SimulationError):
            registry.gauge("test_total", "Doc.", ("a",))
        with pytest.raises(SimulationError):
            registry.counter("test_total", "Doc.", ("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(SimulationError):
            registry.counter("0bad", "Doc.")
        with pytest.raises(SimulationError):
            registry.counter("test_ok_total", "Doc.", ("le",))

    def test_collector_families_merge_by_name(self):
        registry = MetricsRegistry()

        def collector_a():
            return [
                {
                    "name": "test_merged_total",
                    "type": "counter",
                    "help": "Merged.",
                    "samples": [({"src": "a"}, 1.0)],
                }
            ]

        def collector_b():
            return [
                {
                    "name": "test_merged_total",
                    "type": "counter",
                    "help": "ignored duplicate help",
                    "samples": [({"src": "b"}, 2.0)],
                }
            ]

        registry.register_collector(collector_a)
        registry.register_collector(collector_b)
        (family,) = registry.collect()
        assert family["help"] == "Merged."
        assert sorted(labels["src"] for _, labels, _ in family["samples"]) == ["a", "b"]
        text = registry.render_prometheus()
        assert text.count("# HELP test_merged_total") == 1
        assert text.count("# TYPE test_merged_total") == 1

    def test_render_json_shape(self):
        registry = MetricsRegistry()
        registry.counter("test_one_total", "One.").inc()
        payload = registry.render_json()
        assert payload["test_one_total"]["type"] == "counter"
        (sample,) = payload["test_one_total"]["samples"]
        assert sample == {"name": "test_one_total", "labels": {}, "value": 1.0}


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_ring_is_bounded(self):
        tracer = Tracer(capacity=4)
        for _ in range(10):
            trace = tracer.start_trace()
            trace.finish(trace.start_s + 0.001)
        snap = tracer.snapshot()
        assert snap["started"] == 10
        assert snap["finished"] == 4
        assert snap["dropped"] == 6
        assert len(tracer.trace_ids()) == 4

    def test_sampling_zero_and_determinism(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.start_trace() is None
        assert tracer.snapshot()["sampled_out"] == 1
        picks = []
        for _ in range(2):
            sampler = Tracer(sample_rate=0.5, seed=7)
            picks.append(
                [sampler.start_trace() is not None for _ in range(32)]
            )
        assert picks[0] == picks[1]  # seeded sampling reproduces
        assert any(picks[0]) and not all(picks[0])

    def test_stage_durations_exclude_children(self):
        tracer = Tracer()
        trace = tracer.start_trace()
        t0 = trace.start_s
        trace.add_span("admit", t0, t0 + 0.001)
        execute = trace.add_span("replica_execute", t0 + 0.001, t0 + 0.003)
        trace.add_span(
            "replica_run", t0 + 0.001, t0 + 0.003, parent_id=execute.span_id
        )
        trace.finish(t0 + 0.003)
        durations = trace.stage_durations()
        assert set(durations) == {"admit", "replica_execute", "e2e"}
        assert math.isclose(durations["e2e"], 0.003, rel_tol=1e-9)

    def test_chrome_trace_shape(self, tmp_path):
        tracer = Tracer()
        trace = tracer.start_trace()
        trace.add_span("admit", trace.start_s, trace.start_s + 0.002)
        trace.finish(trace.start_s + 0.002)
        path = tmp_path / "trace.json"
        assert tracer.export_chrome(str(path)) == 1
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"request", "admit"}
        admit = next(e for e in complete if e["name"] == "admit")
        assert math.isclose(admit["dur"], 2000.0, rel_tol=1e-6)
        assert admit["args"]["trace_id"] == trace.trace_id


# ---------------------------------------------------------------------------
# telemetry satellites
# ---------------------------------------------------------------------------


class TestLatencyReservoir:
    def test_exact_below_capacity(self):
        reservoir = LatencyReservoir(capacity=64)
        values = [float(i) for i in range(50)]
        for value in values:
            reservoir.add(value)
        assert reservoir.count == 50
        assert not reservoir.saturated
        assert sorted(reservoir.values()) == values
        summary = reservoir.summary()
        assert summary["latency_max_s"] == 49.0
        assert math.isclose(summary["latency_mean_s"], np.mean(values))

    def test_bounded_above_capacity_with_exact_streaming_stats(self):
        reservoir = LatencyReservoir(capacity=32, seed=3)
        for i in range(10_000):
            reservoir.add(float(i))
        assert reservoir.count == 10_000
        assert reservoir.saturated
        assert len(reservoir.values()) == 32
        summary = reservoir.summary()
        # Exact even though the sample is bounded:
        assert summary["latency_max_s"] == 9999.0
        assert math.isclose(summary["latency_mean_s"], 4999.5)

    def test_telemetry_memory_is_bounded(self):
        telemetry = ServeTelemetry(reservoir_capacity=16)
        for i in range(1000):
            telemetry.record_admission(queue_depth=1)
            telemetry.record_response(float(i) / 1e3)
        snapshot = telemetry.snapshot()
        assert snapshot["requests_completed"] == 1000
        assert snapshot["latency_samples"] == 16
        assert snapshot["latency_sample_saturated"] is True
        assert math.isclose(snapshot["latency_max_s"], 0.999)


class TestTelemetrySatellites:
    def test_flush_sizes_tracked_per_reason(self):
        telemetry = ServeTelemetry()
        telemetry.record_flush("full", 8)
        telemetry.record_flush("full", 6)
        telemetry.record_flush("deadline", 2)
        snapshot = telemetry.snapshot()
        sizes = snapshot["flush_sizes"]
        assert sizes["full"] == {
            "batches": 2,
            "requests": 14,
            "mean_size": 7.0,
            "max_size": 8,
        }
        assert sizes["deadline"]["requests"] == 2
        # legacy per-reason batch counts unchanged
        assert snapshot["flush_reasons"] == {"full": 2, "deadline": 1}

    def test_window_spans_first_admission_to_last_delivery(self):
        clock = iter([10.0, 11.0, 12.0, 99.0]).__next__
        telemetry = ServeTelemetry(clock=clock)
        telemetry.record_admission(queue_depth=1)  # t=10 (first admission)
        telemetry.record_response(0.5)  # t=11
        telemetry.record_response(0.5)  # t=12 (last delivery)
        telemetry.record_scale_event(  # t=99 must NOT stretch the window
            direction="up",
            from_replicas=1,
            to_replicas=2,
            queue_depth=5,
            arrival_rps=10.0,
        )
        snapshot = telemetry.snapshot()
        assert snapshot["window_s"] == 2.0
        assert snapshot["throughput_rps"] == 1.0


# ---------------------------------------------------------------------------
# slow-request log
# ---------------------------------------------------------------------------


class TestSlowRequestLog:
    def test_emits_json_lines_over_threshold_only(self):
        stream = io.StringIO()
        log = SlowRequestLog(0.05, stream=stream, wall_clock=lambda: 1234.5)
        assert not log.observe(model="m", seq=0, latency_s=0.01)
        assert log.observe(
            model="m",
            seq=1,
            latency_s=0.075,
            trace_id="t-1",
            stages_s={"queue_wait": 0.06, "replica_execute": 0.015},
        )
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["event"] == "slow_request"
        assert entry["seq"] == 1
        assert entry["trace_id"] == "t-1"
        assert entry["latency_ms"] == 75.0
        assert entry["threshold_ms"] == 50.0
        assert entry["stages_ms"]["queue_wait"] == 60.0
        assert log.emitted == 1


# ---------------------------------------------------------------------------
# end-to-end: traced serving
# ---------------------------------------------------------------------------


class TestTracedServing:
    def test_trace_tiles_request_lifetime(self, lenet_workload):
        network, weights, config, images, direct = lenet_workload
        with InferenceServer(
            network, weights, config, max_batch=4, max_wait_s=0.005
        ) as server:
            outputs = _serve_all(server, images)
            traces = _wait_for_traces(server.tracer, len(images))
            snapshot = server.stats()
        assert np.array_equal(outputs, direct)  # tracing keeps outputs bitwise
        assert len(traces) == len(images)
        for trace in traces:
            durations = trace.stage_durations()
            assert set(STAGES) <= set(durations)
            stage_sum = sum(v for k, v in durations.items() if k != "e2e")
            # The stage spans tile the lifetime exactly: no gap > 1 ms.
            assert abs(stage_sum - durations["e2e"]) < 1e-3
        breakdown = snapshot["telemetry"]["stage_breakdown"]
        assert set(STAGES) <= set(breakdown)
        assert breakdown["replica_execute"]["count"] == len(images)
        mean_sum = sum(breakdown[stage]["mean_s"] for stage in STAGES)
        assert abs(mean_sum - breakdown["e2e"]["mean_s"]) < 1e-3

    def test_trace_tiles_exactly_through_shm_arena(self, lenet_workload):
        """Stage spans still tile the request lifetime when dispatch goes
        through the shared-memory arena, and the dispatch span says so."""
        network, weights, config, images, direct = lenet_workload
        with InferenceServer(
            network, weights, config,
            max_batch=4, max_wait_s=0.005, executor="process:2", ipc="shm",
        ) as server:
            outputs = _serve_all(server, images)
            traces = _wait_for_traces(server.tracer, len(images))
        assert np.array_equal(outputs, direct)  # zero-copy keeps outputs bitwise
        assert len(traces) == len(images)
        for trace in traces:
            durations = trace.stage_durations()
            assert set(STAGES) <= set(durations)
            stage_sum = sum(v for k, v in durations.items() if k != "e2e")
            # Slot acquire/write/read-back all happen inside the dispatch /
            # replica_execute windows, so the tiling stays gap-free.
            assert abs(stage_sum - durations["e2e"]) < 1e-3
            spans = {span.name: span for span in trace.spans()}
            assert spans["dispatch"].meta["ipc"] == "shm"

    def test_trace_propagates_across_process_boundary(self, lenet_workload):
        network, weights, config, images, direct = lenet_workload
        with InferenceServer(
            network, weights, config, max_batch=4, max_wait_s=0.005, executor="process:2"
        ) as server:
            outputs = _serve_all(server, images)
            traces = _wait_for_traces(server.tracer, len(images))
        assert np.array_equal(outputs, direct)
        import os

        parent_pid = os.getpid()
        for trace in traces:
            spans = {span.name: span for span in trace.spans()}
            assert "replica_run" in spans
            run = spans["replica_run"]
            execute = spans["replica_execute"]
            assert run.parent_id == execute.span_id
            assert run.span_id.startswith(f"p{run.meta['pid']}.")
            assert run.meta["pid"] != parent_pid
            # Rebased worker times stay inside the parent's execute window.
            assert run.start_s >= execute.start_s - 1e-3
            assert run.end_s <= execute.end_s + 1e-3

    def test_trace_records_mid_batch_restart(self, lenet_workload):
        network, weights, config, images, direct = lenet_workload
        registry = ModelRegistry(
            [
                ModelDefinition(
                    name="lenet5",
                    network=network,
                    weights=dict(weights),
                    config=config,
                    executor="thread:1",
                    max_batch=4,
                    max_wait_s=0.005,
                    faults=["corrupt:at=1"],
                    max_attempts=3,
                    backoff_base_s=0.0,
                )
            ]
        )
        with InferenceServer(registry=registry) as server:
            outputs = _serve_all(server, images[:4])
            traces = _wait_for_traces(server.tracer, 4)
        assert np.array_equal(outputs, direct[:4])
        names = [span.name for trace in traces for span in trace.spans()]
        assert "attempt" in names  # the failed attempt is visible
        assert "restart" in names  # and so is the replica replacement
        for trace in traces:
            spans = {span.name: span for span in trace.spans()}
            execute = spans["replica_execute"]
            attempt = spans["attempt"]
            restart = spans["restart"]
            assert attempt.parent_id == execute.span_id
            assert restart.parent_id == execute.span_id
            assert attempt.meta["error"] == "CorruptResultError"
            assert attempt.meta["attempt"] == 1

    def test_rejected_admissions_finish_the_trace(self, lenet_workload, monkeypatch):
        network, weights, config, images, _ = lenet_workload
        with InferenceServer(
            network, weights, config, max_batch=4, max_wait_s=0.005
        ) as server:
            runtime = server._runtime(None)

            def overflow(*args, **kwargs):
                raise ServeError("queue full")

            monkeypatch.setattr(runtime.batcher, "submit", overflow)
            with pytest.raises(ServeError):
                server.submit(images[0])
            snap = server.tracer.snapshot()
            assert snap["started"] == 1
            (trace,) = server.tracer.traces()
            payload = trace.as_dict()
        assert payload["finished"] is True
        assert payload["meta"]["outcome"] == "rejected"
        assert payload["meta"]["error"] == "ServeError"
        assert server.telemetry.snapshot()["requests_rejected"] == 1

    def test_stats_expose_tracer_and_metrics(self, lenet_workload):
        network, weights, config, images, _ = lenet_workload
        with InferenceServer(
            network, weights, config, max_batch=4, max_wait_s=0.005
        ) as server:
            _serve_all(server, images[:4])
            _wait_for_traces(server.tracer, 4)
            snapshot = server.stats()
        assert snapshot["tracer"]["finished"] == 4
        metrics = snapshot["metrics"]
        completed = next(
            sample["value"]
            for sample in metrics["repro_serve_requests_total"]["samples"]
            if sample["labels"].get("outcome") == "completed"
        )
        assert completed == 4.0
        assert "repro_traces_started_total" in metrics
        assert "repro_accelerator_programming_events_total" in metrics

    def test_tracing_disabled_leaves_no_tracer(self, lenet_workload):
        network, weights, config, images, direct = lenet_workload
        with InferenceServer(
            network, weights, config, max_batch=4, max_wait_s=0.005, tracing=False
        ) as server:
            outputs = _serve_all(server, images[:4])
            snapshot = server.stats()
        assert np.array_equal(outputs, direct[:4])
        assert server.tracer is None
        assert snapshot["tracer"] is None
        assert "stage_breakdown" in snapshot["telemetry"]
        assert snapshot["telemetry"]["stage_breakdown"] == {}


# ---------------------------------------------------------------------------
# HTTP endpoints
# ---------------------------------------------------------------------------


class TestObservabilityHTTP:
    def test_metrics_and_trace_endpoints(self, lenet_workload):
        network, weights, config, images, direct = lenet_workload
        with InferenceServer(
            network, weights, config, max_batch=4, max_wait_s=0.005
        ) as server:
            with ServeHTTPServer(server, port=0) as front:
                future = server.submit(images[0])
                future.result()
                _wait_for_traces(server.tracer, 1)
                response = urllib.request.urlopen(front.url + "/metrics")
                assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
                text = response.read().decode("utf-8")
                assert "# TYPE repro_serve_requests_total counter" in text
                assert 'repro_serve_requests_total{model="lenet5",outcome="completed"} 1' in text

                trace_id = server.tracer.trace_ids()[0]
                body = json.load(
                    urllib.request.urlopen(front.url + "/v1/trace/" + trace_id)
                )
                assert body["trace_id"] == trace_id
                assert body["finished"] is True
                names = [span["name"] for span in body["spans"]]
                for stage in STAGES:
                    assert stage in names

                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(front.url + "/v1/trace/does-not-exist")
                assert excinfo.value.code == 404


# ---------------------------------------------------------------------------
# offline report + CLI
# ---------------------------------------------------------------------------


class TestTraceReport:
    def test_report_round_trip(self, lenet_workload, tmp_path):
        network, weights, config, images, _ = lenet_workload
        path = tmp_path / "trace.json"
        with InferenceServer(
            network, weights, config, max_batch=4, max_wait_s=0.005
        ) as server:
            _serve_all(server, images)
            _wait_for_traces(server.tracer, len(images))
            assert server.export_trace(str(path)) == len(images)
        events = load_chrome_trace(str(path))
        summary = summarize_chrome_trace(events)
        assert summary["traces"] == len(images)
        assert summary["e2e"]["count"] == len(images)
        for stage in STAGES:
            assert summary["stages"][stage]["count"] == len(images)
        assert len(summary["slowest"]) == 5

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nope": 1}')
        with pytest.raises(SimulationError):
            load_chrome_trace(str(path))

    def test_cli_trace_report(self, lenet_workload, tmp_path, capsys):
        network, weights, config, images, _ = lenet_workload
        path = tmp_path / "trace.json"
        with InferenceServer(
            network, weights, config, max_batch=4, max_wait_s=0.005
        ) as server:
            _serve_all(server, images[:4])
            _wait_for_traces(server.tracer, 4)
            server.export_trace(str(path))
        assert main(["trace-report", str(path), "--top", "2", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["traces"] == 4
        assert len(summary["slowest"]) == 2
        assert main(["trace-report", str(path)]) == 0
        text = capsys.readouterr().out
        assert "end-to-end" in text
        assert "queue_wait" in text

    def test_cli_serve_trace_out_and_slow_ms(self, tmp_path, capsys):
        trace_path = tmp_path / "serve_trace.json"
        code = main(
            [
                "serve",
                "--network",
                "lenet5",
                "--rows",
                "32",
                "--columns",
                "32",
                "--requests",
                "6",
                "--rate",
                "2000",
                "--trace-out",
                str(trace_path),
                "--slow-ms",
                "0.001",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert trace_path.exists()
        events = load_chrome_trace(str(trace_path))
        assert summarize_chrome_trace(events)["traces"] == 6
        # --json stdout is pure JSON; the trace-export notice goes to stderr
        report = json.loads(captured.out)
        assert report["requests"] == 6
        assert "wrote 6 request traces" in captured.err
        # every request beats 1 µs, so the slow log saw all of them
        slow_lines = [
            json.loads(line)
            for line in captured.err.splitlines()
            if line.startswith('{"event": "slow_request"')
        ]
        assert len(slow_lines) == 6
        assert all("trace_id" in entry for entry in slow_lines)


# ---------------------------------------------------------------------------
# standalone accelerator exporter
# ---------------------------------------------------------------------------


class TestAcceleratorMetrics:
    def test_register_metrics_exports_functional_statistics(self):
        accelerator = OpticalCrossbarAccelerator(small_test_chip(**_CHIP))
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(24, 24))
        vectors = rng.normal(size=(4, 24))
        accelerator.linear(weights, vectors)
        registry = MetricsRegistry()
        accelerator.register_metrics(registry)
        text = registry.render_prometheus()
        stats = accelerator.functional_statistics()
        assert (
            f"repro_accelerator_programming_events_total {stats['programming_events']}"
            in text
        )
        assert 'repro_accelerator_tile_cache_total{event="miss"}' in text
        assert 'repro_accelerator_core_tile_dispatches_total{core="0"}' in text
