"""Unit tests for the analytical functional crossbar array."""

import math

import numpy as np
import pytest

from repro.config import TechnologyConfig
from repro.crossbar import CrossbarArray, design_input_coupling, design_output_coupling
from repro.errors import ProgrammingError, SimulationError


class TestCouplingDesign:
    def test_input_coupling_gives_equal_power_per_column(self):
        columns = 16
        k_in = design_input_coupling(columns)
        remaining = 1.0
        tapped = []
        for kappa in k_in:
            tapped.append(remaining * kappa)
            remaining *= 1.0 - kappa
        assert np.allclose(tapped, 1.0 / columns)
        assert k_in[-1] == pytest.approx(1.0)

    def test_output_coupling_gives_equal_weight_per_row(self):
        rows = 16
        k_out = design_output_coupling(rows)
        # Contribution of row i: sqrt(k_i) * prod_{l>i} sqrt(1 - k_l) must be 1/sqrt(N).
        contributions = []
        for i in range(rows):
            factor = math.sqrt(k_out[i])
            for later in range(i + 1, rows):
                factor *= math.sqrt(1.0 - k_out[later])
            contributions.append(factor)
        assert np.allclose(contributions, 1.0 / math.sqrt(rows))

    def test_rejects_bad_sizes(self):
        with pytest.raises(SimulationError):
            design_input_coupling(0)
        with pytest.raises(SimulationError):
            design_output_coupling(0)


class TestProgramming:
    def test_program_quantises_weights_to_64_levels(self):
        array = CrossbarArray(8, 8)
        rng = np.random.default_rng(0)
        weights = rng.uniform(0, 1, (8, 8))
        stored = array.program_weights(weights)
        codes = stored * 63
        assert np.allclose(codes, np.round(codes), atol=1e-9)
        assert np.max(np.abs(stored - weights)) <= 0.5 / 63 + 1e-12

    def test_programming_statistics_accumulate(self):
        array = CrossbarArray(4, 4)
        array.program_weights(np.zeros((4, 4)))
        array.program_weights(np.ones((4, 4)))
        stats = array.statistics()
        assert stats["programming_events"] == 2
        assert stats["programming_energy_j"] == pytest.approx(2 * 16 * 100e-12)
        assert stats["programming_time_s"] == pytest.approx(2 * 100e-9)

    def test_program_rejects_wrong_shape_and_range(self):
        array = CrossbarArray(4, 4)
        with pytest.raises(ProgrammingError):
            array.program_weights(np.zeros((4, 5)))
        with pytest.raises(ProgrammingError):
            array.program_weights(np.full((4, 4), 1.5))

    def test_compute_requires_programming(self):
        array = CrossbarArray(4, 4)
        with pytest.raises(SimulationError):
            array.matvec(np.zeros(4))


class TestMatvec:
    def test_matvec_matches_quantised_reference(self):
        rng = np.random.default_rng(1)
        array = CrossbarArray(16, 12)
        weights = rng.uniform(0, 1, (16, 12))
        inputs = rng.uniform(0, 1, 16)
        array.program_weights(weights)
        result = array.matvec(inputs, quantize_output=False)
        reference = array.weights.T @ array.odac.modulate(inputs)
        assert np.allclose(result, reference, atol=1e-9)

    def test_output_quantisation_error_bounded_by_adc_lsb(self):
        rng = np.random.default_rng(2)
        array = CrossbarArray(32, 8)
        array.program_weights(rng.uniform(0, 1, (32, 8)))
        inputs = rng.uniform(0, 1, 32)
        quantised = array.matvec(inputs, quantize_output=True)
        analog = array.matvec(inputs, quantize_output=False)
        lsb = 32 / 63  # full scale = rows, 6-bit ADC
        assert np.max(np.abs(quantised - analog)) <= lsb / 2 + 1e-9

    def test_column_fields_follow_equation_1_scaling(self):
        array = CrossbarArray(8, 4, laser_field=2.0)
        array.program_weights(np.ones((8, 4)))
        fields = array.column_fields(np.ones(8))
        expected = 2.0 / (8 * math.sqrt(4)) * 8  # all weights and inputs at 1
        assert np.allclose(fields, expected)

    def test_matmul_streams_multiple_vectors(self):
        rng = np.random.default_rng(3)
        array = CrossbarArray(8, 8)
        array.program_weights(rng.uniform(0, 1, (8, 8)))
        inputs = rng.uniform(0, 1, (5, 8))
        outputs = array.matmul(inputs, quantize_output=False)
        assert outputs.shape == (5, 8)
        assert np.allclose(outputs[2], array.matvec(inputs[2], quantize_output=False))

    def test_input_shape_validation(self):
        array = CrossbarArray(8, 8)
        array.program_weights(np.zeros((8, 8)))
        with pytest.raises(SimulationError):
            array.matvec(np.zeros(7))
        with pytest.raises(SimulationError):
            array.matmul(np.zeros((3, 7)))

    def test_higher_output_precision_reduces_error(self):
        rng = np.random.default_rng(4)
        weights = rng.uniform(0, 1, (32, 8))
        inputs = rng.uniform(0, 1, 32)
        errors = []
        for bits in (4, 6, 8):
            tech = TechnologyConfig(output_bits=bits, accumulator_bits=24)
            array = CrossbarArray(32, 8, technology=tech)
            array.program_weights(weights)
            quantised = array.matvec(inputs, quantize_output=True)
            analog = array.matvec(inputs, quantize_output=False)
            errors.append(float(np.max(np.abs(quantised - analog))))
        assert errors[0] > errors[1] > errors[2]
