"""The benchmark-trajectory export CI uses (``benchmarks/export_json.py``).

Part of the ``serving`` lane: the exporter serves real bursts through
``InferenceServer``, and CI uploads its output as the ``BENCH_serving.json``
artifact — so its schema is contract, not convention.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.serving

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def export_json_module():
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import export_json
    finally:
        sys.path.pop(0)
    return export_json


def test_export_writes_schema_ci_uploads(export_json_module, tmp_path, capsys):
    output = tmp_path / "BENCH_serving.json"
    code = export_json_module.main(["--output", str(output), "--requests", "6"])
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(output.read_text())

    assert set(payload) == {
        "meta",
        "serving",
        "robustness",
        "observability",
        "sharding",
        "ipc",
        "async_conn_scaling",
    }
    assert payload["meta"]["workload"] == "lenet5"
    for scenario in ("batch_1", "dynamic_batching"):
        burst = payload["serving"][scenario]
        assert burst["requests"] == 6
        assert burst["throughput_rps"] > 0
        assert burst["latency_p99_ms"] >= burst["latency_p50_ms"] > 0
        assert burst["bitwise_match_vs_run_batch"] is True
        assert sum(burst["flush_reasons"].values()) >= 1
    assert payload["serving"]["batching_speedup"] > 0
    robustness = payload["robustness"]
    assert robustness["injected"] == {"crash": 1}
    assert robustness["replica_restarts"] == 1
    assert robustness["batches_recovered"] == 1
    assert robustness["batches_failed"] == 0
    assert robustness["requests_failed"] == 0
    assert robustness["bitwise_match_vs_run_batch"] is True
    observability = payload["observability"]
    assert observability["traces_finished"] == 6
    assert observability["traces_dropped"] == 0
    stage_means = observability["stage_mean_ms"]
    assert stage_means["e2e"] > 0
    for stage in ("admit", "queue_wait", "replica_execute", "deliver"):
        assert stage in stage_means
    sharding = payload["sharding"]
    assert sharding["thread:2"]["bitwise_match_vs_serial"] is True
    assert sharding["speedup_thread_vs_serial"] > 0
    ipc = payload["ipc"]
    assert ipc["throughput_speedup_shm"] > 0
    assert "p99_delta_ms" in ipc
    for mode in ("pickle", "shm"):
        burst = ipc[mode]
        assert burst["throughput_rps"] > 0
        assert burst["bitwise_match_vs_run_batch"] is True
    assert ipc["shm"]["copy_bytes_avoided"] > 0
    assert ipc["shm"]["pickle_fallbacks"] == 0
    assert ipc["pickle"]["copy_bytes_avoided"] == 0
    scaling = payload["async_conn_scaling"]
    assert set(scaling) == {"threaded", "async"}
    for frontend, points in scaling.items():
        assert points, f"{frontend} sweep is empty"
        for point in points:
            assert point["connections"] > 0
            if "error" not in point:
                assert point["all_ok_bitwise"] is True, (frontend, point)
                assert point["throughput_rps"] > 0
    # The async front-end must clear every sweep point outright.
    assert all("error" not in point for point in scaling["async"])


def test_export_rejects_bad_request_counts(export_json_module, tmp_path):
    with pytest.raises(SystemExit):
        export_json_module.main(
            ["--output", str(tmp_path / "x.json"), "--requests", "0"]
        )


def test_ci_workflow_runs_every_lane():
    """The workflow file names each lane CI promises (kept honest here)."""
    workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
    for command in (
        "python -m pytest -x -q",
        "python -m pytest -q -m docs",
        "python -m pytest -q -m serving",
        "python -m pytest -q -m chaos",
        "python -m pytest -q -m obs",
        "python -m pytest -q -m shm -W error::UserWarning",
        "python -m pytest -q -m asynchttp",
        "tests/test_docs.py::test_http_api_doc_matches_registered_routes",
        "python -m pytest -q benchmarks -m smoke",
        "python benchmarks/export_json.py --output BENCH_serving.json",
        "--trace-out TRACE_serving.json",
        "ruff check .",
        "ruff format --check .",
    ):
        assert command in workflow, f"CI lane missing from ci.yml: {command}"
    assert "BENCH_serving.json" in workflow
    assert "upload-artifact" in workflow
