"""Unit tests for MMI crossings/splitters, the splitter tree and grating couplers."""

import math

import pytest

from repro.errors import DeviceModelError
from repro.photonics import GratingCoupler, MMICrossing, MMISplitter, SplitterTree


class TestMMICrossing:
    def test_cascade_loss_is_linear_in_crossings(self):
        crossing = MMICrossing(insertion_loss_db=0.018)
        assert crossing.cascade_loss_db(0) == pytest.approx(0.0)
        assert crossing.cascade_loss_db(127) == pytest.approx(127 * 0.018)

    def test_cascade_transmission_decays_exponentially(self):
        crossing = MMICrossing(insertion_loss_db=0.1)
        t10 = crossing.cascade_transmission(10)
        t20 = crossing.cascade_transmission(20)
        assert t20 == pytest.approx(t10**2)

    def test_field_transmission_is_sqrt_of_power(self):
        crossing = MMICrossing(insertion_loss_db=0.5)
        assert crossing.field_transmission == pytest.approx(math.sqrt(crossing.power_transmission))

    def test_crosstalk_fraction_small(self):
        crossing = MMICrossing(crosstalk_db=-40.0)
        assert crossing.crosstalk_power_fraction == pytest.approx(1e-4)

    def test_rejects_negative_crossing_count(self):
        with pytest.raises(DeviceModelError):
            MMICrossing().cascade_loss_db(-1)

    def test_rejects_positive_crosstalk(self):
        with pytest.raises(DeviceModelError):
            MMICrossing(crosstalk_db=3.0)


class TestMMISplitter:
    def test_balanced_splitter_halves_power(self):
        splitter = MMISplitter(excess_loss_db=0.0, imbalance_db=0.0)
        a, b = splitter.output_powers(1.0)
        assert a == pytest.approx(0.5)
        assert b == pytest.approx(0.5)

    def test_imbalance_shifts_power_between_arms(self):
        splitter = MMISplitter(excess_loss_db=0.0, imbalance_db=3.0)
        a, b = splitter.output_powers(1.0)
        assert a > b
        assert a + b == pytest.approx(1.0)
        assert a / b == pytest.approx(10 ** 0.3, rel=5e-3)

    def test_excess_loss_reduces_total_output(self):
        splitter = MMISplitter(excess_loss_db=0.1)
        a, b = splitter.output_powers(1.0)
        assert a + b < 1.0

    def test_rejects_negative_input_power(self):
        with pytest.raises(DeviceModelError):
            MMISplitter().output_powers(-1.0)


class TestSplitterTree:
    def test_single_output_tree_has_no_splitting_loss(self):
        tree = SplitterTree(num_outputs=1, excess_loss_db=0.0)
        assert tree.num_stages == 0
        assert tree.total_loss_db == pytest.approx(0.0)

    def test_stage_and_splitter_counts(self):
        tree = SplitterTree(num_outputs=128)
        assert tree.num_stages == 7
        assert tree.num_splitters == 127

    def test_per_output_field_is_one_over_sqrt_n_ideal(self):
        tree = SplitterTree(num_outputs=64, excess_loss_db=0.0)
        assert tree.per_output_field_fraction == pytest.approx(1.0 / math.sqrt(64))

    def test_output_power_conserved_over_all_leaves_without_excess(self):
        tree = SplitterTree(num_outputs=32, excess_loss_db=0.0)
        assert 32 * tree.output_power_w(1.0) == pytest.approx(1.0)

    def test_excess_loss_adds_to_splitting_loss(self):
        tree = SplitterTree(num_outputs=8, excess_loss_db=0.8)
        assert tree.total_loss_db == pytest.approx(10 * math.log10(8) + 0.8)

    def test_stage_splitters_cover_total_excess_loss(self):
        tree = SplitterTree(num_outputs=16, excess_loss_db=0.8)
        stages = tree.build_stage_splitters()
        assert len(stages) == tree.num_stages
        assert sum(s.excess_loss_db for s in stages) == pytest.approx(0.8)

    def test_rejects_bad_output_count(self):
        with pytest.raises(DeviceModelError):
            SplitterTree(num_outputs=0)


class TestGratingCoupler:
    def test_default_two_db_loss(self):
        gc = GratingCoupler()
        assert gc.insertion_loss_db == pytest.approx(2.0)
        assert gc.power_transmission == pytest.approx(10 ** -0.2)

    def test_couple_scales_power(self):
        gc = GratingCoupler(insertion_loss_db=3.0)
        assert gc.couple(2.0) == pytest.approx(1.0, rel=5e-3)

    def test_rejects_negative_power(self):
        with pytest.raises(DeviceModelError):
            GratingCoupler().couple(-1.0)

    def test_rejects_negative_loss(self):
        with pytest.raises(DeviceModelError):
            GratingCoupler(insertion_loss_db=-2.0)
