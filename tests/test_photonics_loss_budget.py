"""Unit tests for the crossbar optical link budget."""

import pytest

from repro.config import TechnologyConfig
from repro.errors import DeviceModelError
from repro.photonics import CrossbarLossBudget


class TestLossBudgetStructure:
    def test_contributions_include_every_paper_loss_source(self):
        budget = CrossbarLossBudget(32, 32)
        names = {c.name for c in budget.contributions()}
        assert {
            "grating_coupler",
            "splitter_tree_excess",
            "odac_oma_penalty",
            "waveguide_propagation",
            "mmi_crossings",
            "phase_shifters",
        } <= names

    def test_fixed_plus_scaling_equals_total(self):
        budget = CrossbarLossBudget(64, 64)
        assert budget.fixed_loss_db + budget.array_scaling_loss_db == pytest.approx(
            budget.excess_loss_db
        )

    def test_distribution_loss_is_ten_log_m(self):
        budget = CrossbarLossBudget(16, 100)
        assert budget.distribution_loss_db == pytest.approx(20.0)

    def test_as_dict_reports_totals(self):
        summary = CrossbarLossBudget(8, 8).as_dict()
        assert "total_db" in summary and "total_excess_db" in summary
        assert summary["total_db"] > summary["total_excess_db"]


class TestLossBudgetScaling:
    def test_excess_loss_grows_with_array_size(self):
        small = CrossbarLossBudget(32, 32).excess_loss_db
        medium = CrossbarLossBudget(128, 128).excess_loss_db
        large = CrossbarLossBudget(512, 512).excess_loss_db
        assert small < medium < large

    def test_transmission_decays_exponentially_with_size(self):
        t64 = CrossbarLossBudget(64, 64).excess_transmission
        t128 = CrossbarLossBudget(128, 128).excess_transmission
        t256 = CrossbarLossBudget(256, 256).excess_transmission
        # Each doubling multiplies the dB loss by roughly 2x beyond the fixed part,
        # so the transmission ratio keeps shrinking.
        assert t128 / t64 > t256 / t128

    def test_single_cell_array_has_only_fixed_losses(self):
        budget = CrossbarLossBudget(1, 1)
        assert budget.array_scaling_loss_db == pytest.approx(
            budget.technology.waveguide_loss_db_per_cm
            * budget.technology.unit_cell_pitch_m
            * 100.0,
            rel=1e-6,
        )

    def test_average_path_is_cheaper_than_worst_case(self):
        worst = CrossbarLossBudget(128, 128, worst_case=True)
        average = CrossbarLossBudget(128, 128, worst_case=False)
        assert average.excess_loss_db < worst.excess_loss_db

    def test_as_printed_crossing_loss_makes_large_arrays_hopeless(self):
        technology = TechnologyConfig(mmi_crossing_loss_db=1.8)
        budget = CrossbarLossBudget(128, 128, technology=technology)
        # > 400 dB of crossing loss alone: the literal printed value cannot
        # support the paper's own optimum, which is why the default uses the
        # cited device loss instead (documented substitution).
        assert budget.excess_loss_db > 400.0

    def test_rejects_bad_dimensions(self):
        with pytest.raises(DeviceModelError):
            CrossbarLossBudget(0, 8)
