"""The ``docs`` lane: documentation that executes, or fails the build.

Three guards keep the documentation surface honest:

* every fenced ```` ```python ```` block in ``README.md`` and ``docs/*.md``
  is executed (blocks in one file share a namespace, so a page can build up
  a narrative; blocks containing ``>>>`` run as doctests with output
  checking) — examples cannot silently rot;
* ``examples/quickstart.py`` runs end to end;
* ``docs/cli.md`` is diffed against the real argparse parser: every
  subcommand and every flag must be documented.

Run with ``pytest -m docs`` (the lane is also part of tier-1).
"""

from __future__ import annotations

import argparse
import doctest
import runpy
from pathlib import Path
from typing import List, Tuple

import pytest

from repro.cli import build_parser

pytestmark = pytest.mark.docs

REPO_ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]


def extract_python_blocks(path: Path) -> List[Tuple[int, str]]:
    """(start line, source) of every fenced ```python block in ``path``.

    Only blocks whose info string is exactly ``python`` are executable
    documentation; ``console``/``text``/untagged fences are illustrative.
    """
    blocks: List[Tuple[int, str]] = []
    fence_lang = None
    start = 0
    lines: List[str] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if fence_lang is None:
            if stripped.startswith("```") and stripped != "```":
                fence_lang = stripped[3:].strip()
                start = number + 1
                lines = []
        elif stripped == "```":
            if fence_lang == "python":
                blocks.append((start, "\n".join(lines) + "\n"))
            fence_lang = None
        else:
            lines.append(line)
    assert fence_lang is None, f"{path}: unterminated ``` fence"
    return blocks


def _documented_files() -> List[Path]:
    return [path for path in DOC_FILES if extract_python_blocks(path)]


@pytest.mark.parametrize(
    "path", _documented_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_doc_python_blocks_execute(path: Path):
    """Each file's ```python blocks run top to bottom in one namespace."""
    namespace = {"__name__": f"docs_{path.stem}"}
    for start_line, source in extract_python_blocks(path):
        if ">>>" in source:
            parser = doctest.DocTestParser()
            test = parser.get_doctest(
                source, namespace, f"{path.name}:{start_line}", str(path), start_line
            )
            runner = doctest.DocTestRunner(verbose=False)
            runner.run(test)
            assert runner.failures == 0, (
                f"{path.name}: doctest block at line {start_line} failed"
            )
        else:
            code = compile(source, f"{path}:{start_line}", "exec")
            exec(code, namespace)  # noqa: S102 - executing our own documentation


def test_readme_has_executable_blocks():
    """The quickstart narrative must stay executable, not drift to prose."""
    assert extract_python_blocks(REPO_ROOT / "README.md")


def test_quickstart_example_runs(capsys):
    runpy.run_path(str(REPO_ROOT / "examples" / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "quickstart" in output
    assert "Table I" in output


def test_cli_doc_documents_every_subcommand_and_flag():
    """docs/cli.md must name every subcommand and every option string."""
    doc = (REPO_ROOT / "docs" / "cli.md").read_text()
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    assert subparsers.choices, "CLI has no subcommands?"
    for name, subparser in subparsers.choices.items():
        assert f"## `{name}`" in doc, (
            f"subcommand {name!r} is missing a '## `{name}`' section in docs/cli.md"
        )
        for action in subparser._actions:
            for option in action.option_strings:
                if option in ("-h", "--help"):
                    continue
                assert f"`{option}`" in doc, (
                    f"flag {option} of subcommand {name!r} is undocumented "
                    "in docs/cli.md"
                )


def test_setup_long_description_points_at_readme():
    """setup.py ships the README as the package's long description."""
    source = (REPO_ROOT / "setup.py").read_text()
    assert "README.md" in source
    assert "long_description" in source


def test_http_api_doc_matches_registered_routes():
    """docs/http-api.md and the servers' route table must not diverge.

    Both directions are checked: every route in :data:`repro.serve.API_ROUTES`
    (the table both front-ends register) must be documented with a
    '### METHOD /path' heading, and every such heading in the doc must name a
    registered route.  This is the docs-freshness gate CI runs — adding an
    endpoint without documenting it (or documenting one that does not exist)
    fails the build.
    """
    import re

    from repro.serve import API_ROUTES

    doc = (REPO_ROOT / "docs" / "http-api.md").read_text()
    documented = set(
        re.findall(r"^### `(GET|POST) (/[^`]*)`", doc, flags=re.MULTILINE)
    )
    registered = {(method, route) for method, route in API_ROUTES}
    missing = registered - documented
    assert not missing, (
        f"routes registered on the server but missing from docs/http-api.md: "
        f"{sorted(missing)}"
    )
    phantom = documented - registered
    assert not phantom, (
        f"routes documented in docs/http-api.md but not registered on the "
        f"server: {sorted(phantom)}"
    )


def test_new_docs_are_linked_from_readme_and_serving_doc():
    """The PR's acceptance: both new docs exist and README links them."""
    readme = (REPO_ROOT / "README.md").read_text()
    serving = (REPO_ROOT / "docs" / "serving.md").read_text()
    for target in ("docs/http-api.md", "docs/operations.md"):
        assert (REPO_ROOT / target).exists(), f"{target} is missing"
        assert target in readme, f"README.md does not link {target}"
    assert "http-api.md" in serving, "docs/serving.md does not link http-api.md"
