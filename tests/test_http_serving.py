"""Tests for the HTTP front-end (``repro.serve.http``).

Part of the ``serving`` lane.  Covered: bitwise equivalence of HTTP-served
outputs against a direct ``run_batch`` for every executor spec (the PR's
acceptance criterion), both payload encodings (JSON lists and base64 ``.npy``),
the stats/health endpoints, the HTTP error mapping (400/404/405/429/503),
queue-overflow shedding over the wire, driving an HTTP server with the load
generator, and the ``serve --http`` CLI round trip.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.config import small_test_chip
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.errors import BadRequestError, QueueOverflowError, ServeError
from repro.nn import build_lenet5
from repro.serve import (
    AsyncServeHTTPServer,
    HTTPInferenceClient,
    InferenceServer,
    LoadGenerator,
    ServeHTTPServer,
    decode_array_b64,
    encode_array_b64,
    poisson_arrivals,
)

pytestmark = pytest.mark.serving

_CHIP = dict(rows=32, columns=32, num_cores=2)


@pytest.fixture(scope="module")
def lenet_workload():
    network = build_lenet5()
    weights = generate_random_weights(network, seed=0, scale=0.3)
    config = small_test_chip(**_CHIP)
    images = np.random.default_rng(1).uniform(
        0.0, 1.0, (8,) + network.input_shape.as_tuple()
    )
    direct = FunctionalInferenceEngine(network, weights, config).run_batch(images)
    return network, weights, config, images, direct


def _server(lenet_workload, **overrides) -> InferenceServer:
    network, weights, config, _, _ = lenet_workload
    options = dict(max_batch=4, max_wait_s=0.005)
    options.update(overrides)
    return InferenceServer(network, weights, config, **options)


@pytest.fixture(params=["threaded", "async"])
def front_cls(request):
    """Both front-ends answer the same wire API; every test runs against each."""
    return ServeHTTPServer if request.param == "threaded" else AsyncServeHTTPServer


def _post_raw(url: str, body: bytes, content_type="application/json"):
    """POST raw bytes; returns (status, parsed JSON body)."""
    request = urllib.request.Request(
        url, data=body, method="POST", headers={"Content-Type": content_type}
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestPayloadCodec:
    def test_npy_b64_round_trip_is_bitwise(self):
        array = np.random.default_rng(0).normal(size=(3, 5))
        assert np.array_equal(decode_array_b64(encode_array_b64(array)), array)

    def test_invalid_b64_rejected(self):
        with pytest.raises(BadRequestError, match="base64"):
            decode_array_b64("definitely not base64!!!")
        with pytest.raises(BadRequestError, match="base64"):
            decode_array_b64(encode_array_b64(np.zeros(3))[:-8])


class TestHTTPInference:
    @pytest.mark.parametrize("executor", ["serial", "thread:2", "process:2"])
    def test_http_batch_bitwise_equal_run_batch_for_every_executor(
        self, lenet_workload, front_cls, executor
    ):
        """Acceptance: HTTP responses are bitwise identical to run_batch."""
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload, executor=executor) as server:
            with front_cls(server) as front:
                with HTTPInferenceClient(front.url) as client:
                    served = client.infer_batch(images)
        assert np.array_equal(served, direct)

    def test_single_image_json_and_npy_bitwise(self, lenet_workload, front_cls):
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload) as server:
            with front_cls(server) as front:
                with HTTPInferenceClient(front.url) as json_client:
                    json_out = json_client.infer(images[0])
                with HTTPInferenceClient(front.url, encoding="npy_b64") as npy_client:
                    npy_out = npy_client.infer(images[0])
                    npy_batch = npy_client.infer_batch(images)
        assert np.array_equal(json_out, direct[0])
        assert np.array_equal(npy_out, direct[0])
        assert np.array_equal(npy_batch, direct)

    def test_stats_and_healthz_endpoints(self, lenet_workload, front_cls):
        _, _, _, images, _ = lenet_workload
        with _server(lenet_workload, policy="adaptive", slo_s=0.5) as server:
            with front_cls(server) as front:
                with HTTPInferenceClient(front.url) as client:
                    health = client.healthz()
                    client.infer_batch(images)
                    stats = client.stats()
        assert health["status"] == "ok"
        assert health["network"] == "lenet5"
        assert health["policy"] == "adaptive"
        assert tuple(health["input_shape"]) == (28, 28, 1)
        assert stats["policy"]["policy"] == "adaptive"
        assert stats["telemetry"]["requests_completed"] == len(images)
        assert stats["telemetry"]["latency_p99_s"] > 0

    def test_block_and_timeout_plumb_through_to_submit(self, lenet_workload, front_cls):
        """The wire carries InferenceServer.submit's admission semantics."""
        _, _, _, images, direct = lenet_workload
        captured = []
        with _server(lenet_workload) as server:
            original = server.submit

            def spy(image, block=True, timeout=None):
                captured.append((block, timeout))
                return original(image, block=block, timeout=timeout)

            server.submit = spy
            with front_cls(server) as front:
                with HTTPInferenceClient(front.url) as client:
                    output = client.infer(images[0], timeout=0.75)
        assert np.array_equal(output, direct[0])
        assert captured == [(True, 0.75)]

    def test_wildcard_bind_url_is_reachable(self, lenet_workload, front_cls):
        with _server(lenet_workload) as server:
            with front_cls(server, host="0.0.0.0") as front:
                assert front.url.startswith("http://127.0.0.1:")
                with HTTPInferenceClient(front.url) as client:
                    assert client.healthz()["status"] == "ok"

    def test_submit_futures_resolve_in_order(self, lenet_workload, front_cls):
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload) as server:
            with front_cls(server) as front:
                with HTTPInferenceClient(front.url) as client:
                    futures = [client.submit(image) for image in images]
                    served = np.stack([future.result(timeout=30) for future in futures])
        assert np.array_equal(served, direct)


class TestHTTPErrorMapping:
    def test_malformed_payloads_get_400(self, lenet_workload, front_cls):
        _, _, _, images, _ = lenet_workload
        with _server(lenet_workload) as server:
            with front_cls(server) as front:
                infer = front.url + "/v1/infer"
                cases = [
                    b"not json at all",
                    b"[1, 2, 3]",  # not an object
                    b"{}",  # no image field
                    json.dumps(
                        {"image": [[0.0]], "images": [[[0.0]]]}
                    ).encode(),  # both fields
                    json.dumps({"image": [[0.0, 1.0], [2.0]]}).encode(),  # ragged
                    json.dumps({"image": [[0.0]]}).encode(),  # wrong shape
                    json.dumps(
                        {"image": np.zeros((28, 28, 1)).tolist(), "block": "yes"}
                    ).encode(),  # non-boolean block
                    json.dumps({"image_npy_b64": "bogus!!"}).encode(),
                    json.dumps(
                        {"image": np.zeros((28, 28, 1)).tolist(), "timeout_s": "soon"}
                    ).encode(),  # non-numeric timeout
                ]
                for body in cases:
                    status, payload = _post_raw(infer, body)
                    assert status == 400, body[:40]
                    assert payload["type"] == "BadRequestError"

    def test_unknown_path_404_wrong_method_405(self, lenet_workload, front_cls):
        with _server(lenet_workload) as server:
            with front_cls(server) as front:
                status, payload = _post_raw(front.url + "/v1/nope", b"{}")
                assert status == 404
                # shutdown endpoint is hidden unless explicitly enabled
                status, _ = _post_raw(front.url + "/v1/shutdown", b"{}")
                assert status == 404
                request = urllib.request.Request(front.url + "/v1/infer", method="GET")
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=10.0)
                assert excinfo.value.code in (404, 405, 501)

    def test_stopped_server_maps_to_503(self, lenet_workload, front_cls):
        _, _, _, images, _ = lenet_workload
        server = _server(lenet_workload).start()
        with front_cls(server) as front:
            server.stop()
            with HTTPInferenceClient(front.url) as client:
                with pytest.raises(ServeError, match="HTTP 503"):
                    client.infer(images[0])

    def test_queue_overflow_sheds_as_429(self, lenet_workload, front_cls):
        _, _, _, images, direct = lenet_workload
        many = np.concatenate([images] * 4)
        server = _server(
            lenet_workload, max_batch=2, max_wait_s=0.0, queue_capacity=2
        )
        with server:
            with front_cls(server) as front:
                with HTTPInferenceClient(front.url, max_connections=16) as client:
                    futures = [
                        client.submit(image, block=False) for image in many
                    ]
                    rejected = 0
                    for index, future in enumerate(futures):
                        try:
                            output = future.result(timeout=60)
                        except QueueOverflowError:
                            rejected += 1
                            continue
                        assert np.array_equal(output, direct[index % len(images)])
        # a 32-request flood against a 2-deep queue must shed something
        assert rejected > 0


class TestHTTPLoadGeneration:
    def test_open_loop_over_http_bitwise_and_stats(self, lenet_workload, front_cls):
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload, executor="thread:2") as server:
            with front_cls(server) as front:
                with HTTPInferenceClient(front.url) as client:
                    report = LoadGenerator(client).run_open_loop(
                        images, poisson_arrivals(500.0, len(images), seed=2)
                    )
        assert np.array_equal(report.outputs, direct)
        assert report.requests == len(images)
        assert report.server["telemetry"]["requests_completed"] == len(images)

    def test_closed_loop_over_http(self, lenet_workload, front_cls):
        _, _, _, images, direct = lenet_workload
        with _server(lenet_workload) as server:
            with front_cls(server) as front:
                with HTTPInferenceClient(front.url) as client:
                    report = LoadGenerator(client).run_closed_loop(
                        images, concurrency=2
                    )
        assert np.array_equal(report.outputs, direct)


class TestServeHTTPLifecycle:
    def test_port_zero_resolves_and_double_start_rejected(self, lenet_workload, front_cls):
        with _server(lenet_workload) as server:
            front = front_cls(server, port=0)
            assert front.port == 0
            with front:
                assert front.port > 0
                with pytest.raises(ServeError, match="already started"):
                    front.start()
            front.stop()  # idempotent

    def test_shutdown_endpoint_signals_owner(self, lenet_workload, front_cls):
        with _server(lenet_workload) as server:
            with front_cls(server, allow_shutdown=True) as front:
                with HTTPInferenceClient(front.url) as client:
                    assert not front.wait(0.0)
                    response = client.shutdown_remote()
                    assert response["status"] == "shutting-down"
                    assert front.wait(5.0)


class TestServeHTTPCli:
    def test_serve_http_cli_round_trip(self, tmp_path):
        """CI-safe round trip: ``--http 0`` picks a free port, ``--ready-file``
        publishes the bound URL, so the test never races the bind and never
        collides with another port user on a loaded runner."""
        ready_file = tmp_path / "serve-url.txt"
        result = {}

        def run():
            result["code"] = main(
                [
                    "serve", "--network", "lenet5", "--rows", "32", "--columns", "32",
                    "--http", "0", "--policy", "adaptive", "--slo-ms", "500",
                    "--allow-remote-shutdown", "--ready-file", str(ready_file),
                ]
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 60.0
        url = None
        while time.monotonic() < deadline:
            if ready_file.exists():
                url = ready_file.read_text().strip()
                if url:
                    break
            time.sleep(0.1)
        assert url, "serve --http 0 never published its URL to --ready-file"
        client = HTTPInferenceClient(url, timeout_s=30.0)
        try:
            health = None
            while time.monotonic() < deadline:
                try:
                    health = client.healthz()
                    break
                except ServeError:
                    time.sleep(0.1)
            assert health is not None, "HTTP front-end never came up"
            assert health["policy"] == "adaptive"
            assert health["models"] == ["lenet5"]
            image = np.random.default_rng(7).uniform(0.0, 1.0, (28, 28, 1))
            output = client.infer(image)
            assert output.shape[-1] == 10
            client.shutdown_remote()
        finally:
            client.close()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert result["code"] == 0
