"""Unit tests for im2col/GEMM lowering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.nn import ConvLayer, DenseLayer, TensorShape, conv_to_gemm, layer_to_gemms
from repro.nn.im2col import GemmShape, conv2d_reference, conv_weights_matrix, dense_to_gemm, im2col_matrix


def _loop_im2col(feature_map, kernel_size, stride, padding):
    """Per-patch reference implementation (the seed's Python loop)."""
    if padding:
        feature_map = np.pad(
            feature_map, ((padding, padding), (padding, padding), (0, 0)), mode="constant"
        )
    padded_h, padded_w = feature_map.shape[:2]
    out_h = (padded_h - kernel_size) // stride + 1
    out_w = (padded_w - kernel_size) // stride + 1
    rows = []
    for out_y in range(out_h):
        for out_x in range(out_w):
            y0, x0 = out_y * stride, out_x * stride
            patch = feature_map[y0 : y0 + kernel_size, x0 : x0 + kernel_size, :]
            rows.append(patch.reshape(-1))
    return np.stack(rows, axis=0)


class TestGemmShape:
    def test_counts(self):
        gemm = GemmShape("layer", m=10, k=20, n=30)
        assert gemm.macs == 6000
        assert gemm.weight_elements == 600
        assert gemm.input_elements == 200
        assert gemm.output_elements == 300

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(WorkloadError):
            GemmShape("layer", m=0, k=1, n=1)


class TestConvLowering:
    def test_conv_to_gemm_dimensions(self):
        layer = ConvLayer("c", out_channels=64, kernel_size=3, stride=1, padding=1, bias=False)
        gemm = conv_to_gemm(layer, TensorShape(56, 56, 32))
        assert gemm.k == 32 * 9
        assert gemm.n == 64
        assert gemm.m == 56 * 56

    def test_gemm_macs_equal_layer_macs(self):
        layer = ConvLayer("c", out_channels=16, kernel_size=3, stride=2, padding=1, bias=False)
        shape = TensorShape(32, 32, 8)
        assert conv_to_gemm(layer, shape).macs == layer.macs(shape)

    def test_grouped_conv_macs_preserved(self):
        layer = ConvLayer("dw", out_channels=8, kernel_size=3, padding=1, groups=8, bias=False)
        shape = TensorShape(16, 16, 8)
        assert conv_to_gemm(layer, shape).macs == layer.macs(shape)

    def test_dense_to_gemm(self):
        layer = DenseLayer("fc", out_features=100, bias=False)
        gemm = dense_to_gemm(layer, TensorShape(1, 1, 512))
        assert (gemm.m, gemm.k, gemm.n) == (1, 512, 100)

    def test_layer_to_gemms_skips_non_crossbar_layers(self, resnet50):
        for info in resnet50.shape_infos:
            gemms = layer_to_gemms(info)
            if info.uses_crossbar:
                assert len(gemms) == 1
            else:
                assert gemms == []

    def test_network_gemm_macs_equal_network_macs(self, resnet50):
        gemm_macs = sum(
            gemm.macs for info in resnet50.shape_infos for gemm in layer_to_gemms(info)
        )
        assert gemm_macs == resnet50.total_macs


class TestIm2colData:
    def test_im2col_shape(self):
        fmap = np.arange(4 * 4 * 2, dtype=float).reshape(4, 4, 2)
        unrolled = im2col_matrix(fmap, kernel_size=3, stride=1, padding=0)
        assert unrolled.shape == (4, 18)

    def test_conv2d_reference_matches_direct_convolution(self):
        rng = np.random.default_rng(0)
        fmap = rng.normal(size=(6, 6, 3))
        weights = rng.normal(size=(3, 3, 3, 4))
        out = conv2d_reference(fmap, weights, stride=1, padding=1)
        assert out.shape == (6, 6, 4)

        # Direct (naive) convolution for one output position and channel: the
        # receptive field of output (3, 3) starts at padded row/col 3.
        padded = np.pad(fmap, ((1, 1), (1, 1), (0, 0)))
        expected = np.sum(padded[3:6, 3:6, :] * weights[:, :, :, 1])
        assert out[3, 3, 1] == pytest.approx(expected)

    def test_conv2d_reference_stride_two_shape(self):
        fmap = np.zeros((8, 8, 1))
        weights = np.zeros((3, 3, 1, 2))
        out = conv2d_reference(fmap, weights, stride=2, padding=1)
        assert out.shape == (4, 4, 2)

    def test_weights_matrix_shape(self):
        weights = np.zeros((3, 3, 8, 16))
        assert conv_weights_matrix(weights).shape == (72, 16)

    def test_im2col_rejects_bad_inputs(self):
        with pytest.raises(WorkloadError):
            im2col_matrix(np.zeros((4, 4)), 3)
        with pytest.raises(WorkloadError):
            im2col_matrix(np.zeros((4, 4, 1)), kernel_size=0)
        with pytest.raises(WorkloadError):
            im2col_matrix(np.zeros((2, 2, 1)), kernel_size=5)

    def test_weights_matrix_rejects_non_square_kernel(self):
        with pytest.raises(WorkloadError):
            conv_weights_matrix(np.zeros((3, 5, 1, 1)))


class TestIm2colVectorized:
    """The sliding_window_view gather must match the per-patch loop bitwise."""

    @settings(max_examples=60, deadline=None)
    @given(
        height=st.integers(min_value=1, max_value=9),
        width=st.integers(min_value=1, max_value=9),
        channels=st.integers(min_value=1, max_value=4),
        kernel_size=st.integers(min_value=1, max_value=4),
        stride=st.integers(min_value=1, max_value=3),
        padding=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_matches_loop_reference(
        self, height, width, channels, kernel_size, stride, padding, seed
    ):
        if height + 2 * padding < kernel_size or width + 2 * padding < kernel_size:
            return  # empty output; rejection is covered below
        rng = np.random.default_rng(seed)
        fmap = rng.normal(size=(height, width, channels))
        vectorized = im2col_matrix(fmap, kernel_size, stride, padding)
        reference = _loop_im2col(fmap, kernel_size, stride, padding)
        assert vectorized.shape == reference.shape
        assert np.array_equal(vectorized, reference)

    def test_batched_input_stacks_per_image_results(self):
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(5, 7, 6, 3))
        unrolled = im2col_matrix(batch, kernel_size=3, stride=2, padding=1)
        assert unrolled.shape[0] == 5
        for i in range(5):
            assert np.array_equal(unrolled[i], im2col_matrix(batch[i], 3, 2, 1))

    def test_batched_conv2d_reference_matches_per_image(self):
        rng = np.random.default_rng(1)
        batch = rng.normal(size=(3, 6, 6, 2))
        weights = rng.normal(size=(3, 3, 2, 4))
        batched = conv2d_reference(batch, weights, stride=1, padding=1)
        assert batched.shape == (3, 6, 6, 4)
        for i in range(3):
            assert np.array_equal(
                batched[i], conv2d_reference(batch[i], weights, stride=1, padding=1)
            )

    def test_empty_output_still_rejected(self):
        with pytest.raises(WorkloadError):
            im2col_matrix(np.zeros((2, 2, 1)), kernel_size=3, stride=1, padding=0)

    def test_rejects_bad_rank(self):
        with pytest.raises(WorkloadError):
            im2col_matrix(np.zeros((2, 2, 1, 1, 1)), kernel_size=1)
