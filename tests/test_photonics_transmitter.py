"""Unit tests for the ring ODAC and RAMZI transmitter models."""

import numpy as np
import pytest

from repro.errors import DeviceModelError
from repro.photonics import RAMZIModulator, RingResonatorODAC


class TestRingResonatorODAC:
    def test_six_bit_dac_has_64_levels(self):
        odac = RingResonatorODAC(bits=6)
        assert odac.num_levels == 64

    def test_code_to_field_is_monotonic(self):
        odac = RingResonatorODAC(bits=6, oma_penalty_db=0.0)
        fields = [odac.code_to_field(code) for code in range(odac.num_levels)]
        assert fields == sorted(fields)
        assert fields[0] == pytest.approx(0.0)
        assert fields[-1] == pytest.approx(1.0)

    def test_oma_penalty_limits_full_scale(self):
        odac = RingResonatorODAC(oma_penalty_db=4.0)
        assert odac.max_field_transmission == pytest.approx(10 ** (-4.0 / 20.0))

    def test_modulate_quantises_values(self):
        odac = RingResonatorODAC(bits=6, oma_penalty_db=0.0)
        values = np.linspace(0, 1, 17)
        modulated = odac.modulate(values)
        codes = modulated * 63
        assert np.allclose(codes, np.round(codes), atol=1e-9)

    def test_modulate_rejects_out_of_range(self):
        odac = RingResonatorODAC()
        with pytest.raises(DeviceModelError):
            odac.modulate(np.array([1.5]))

    def test_driver_power_matches_paper_number(self):
        odac = RingResonatorODAC(driver_energy_per_sample_j=168e-15, sample_rate_hz=10e9)
        assert odac.dynamic_power_w == pytest.approx(1.68e-3)
        assert odac.total_power_w == pytest.approx(1.68e-3 + 0.72e-3)

    def test_energy_for_samples(self):
        odac = RingResonatorODAC()
        assert odac.energy_for_samples(1e9) == pytest.approx(168e-15 * 1e9)
        with pytest.raises(DeviceModelError):
            odac.energy_for_samples(-1)

    def test_value_code_round_trip(self):
        odac = RingResonatorODAC(bits=6)
        for code in (0, 1, 31, 63):
            assert odac.value_to_code(code / 63) == code


class TestRAMZIModulator:
    def test_constant_phase_property(self):
        ramzi = RAMZIModulator()
        values = np.linspace(0, 1, 64)
        assert ramzi.phase_is_constant(values)

    def test_modulate_scales_with_excess_loss(self):
        lossless = RAMZIModulator(excess_loss_db=0.0)
        lossy = RAMZIModulator(excess_loss_db=1.0)
        values = np.array([1.0])
        assert lossy.modulate(values)[0] < lossless.modulate(values)[0]

    def test_power_and_area_scale_with_ring_count(self):
        two_rings = RAMZIModulator(num_rings=2)
        four_rings = RAMZIModulator(num_rings=4)
        assert four_rings.total_power_w == pytest.approx(2 * two_rings.total_power_w)
        assert four_rings.area_mm2 == pytest.approx(2 * two_rings.area_mm2)

    def test_rejects_bad_ring_count(self):
        with pytest.raises(DeviceModelError):
            RAMZIModulator(num_rings=0)
