"""The ``analysis`` lane, part 2: the runtime concurrency sanitizer.

A constructed A→B / B→A acquisition inversion must produce a
potential-deadlock report carrying both acquisition stacks; consistent
ordering must stay silent; re-entrant RLocks and Condition.wait must not
produce false positives; and a real sanitized serving session must come out
cycle-free (the property the CI ``analysis`` lane asserts suite-wide via
``REPRO_SANITIZE=1``).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import concurrency
from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    SanitizedCondition,
    SanitizedLock,
    SanitizedRLock,
)
from repro.errors import ConcurrencyError

pytestmark = pytest.mark.analysis


def run_thread(fn) -> None:
    thread = threading.Thread(target=fn, name="sanitizer-test", daemon=True)
    thread.start()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


class TestLockOrderGraph:
    def test_ab_ba_inversion_is_reported_with_both_stacks(self, concurrency_sanitizer):
        lock_a = SanitizedLock("test.A")
        lock_b = SanitizedLock("test.B")

        with lock_a:
            with lock_b:
                pass

        def inverted():
            with lock_b:
                with lock_a:
                    pass

        # The orders never overlap in time, so nothing actually deadlocks —
        # exactly the case only a lock-order graph can catch.
        run_thread(inverted)

        (cycle,) = sanitizer.cycle_reports()
        assert set(cycle["locks"]) == {"test.A", "test.B"}
        assert len(cycle["edges"]) == 2
        for edge in cycle["edges"]:
            assert edge["stack"], "each edge must carry its acquisition stack"
        assert "potential deadlock" in cycle["message"]
        with pytest.raises(ConcurrencyError, match="potential deadlock"):
            sanitizer.assert_clean()

    def test_consistent_ordering_is_clean(self, concurrency_sanitizer):
        lock_a = SanitizedLock("test.A")
        lock_b = SanitizedLock("test.B")
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass

        def same_order():
            with lock_a:
                with lock_b:
                    pass

        run_thread(same_order)
        assert sanitizer.cycle_reports() == []
        sanitizer.assert_clean()

    def test_three_lock_cycle_detected(self, concurrency_sanitizer):
        lock_a = SanitizedLock("test.A")
        lock_b = SanitizedLock("test.B")
        lock_c = SanitizedLock("test.C")
        with lock_a, lock_b:
            pass
        with lock_b, lock_c:
            pass
        with lock_c, lock_a:
            pass
        (cycle,) = sanitizer.cycle_reports()
        assert set(cycle["locks"]) == {"test.A", "test.B", "test.C"}

    def test_two_instances_of_one_site_nested_is_reported(self, concurrency_sanitizer):
        # Classic two-instance ABBA: the same lock *site* nested inside
        # itself collapses to a self-edge in the name-keyed graph.
        first = SanitizedLock("test.same_site")
        second = SanitizedLock("test.same_site")
        with first:
            with second:
                pass
        (cycle,) = sanitizer.cycle_reports()
        assert cycle["locks"] == ["test.same_site"]

    def test_rlock_reentry_is_not_a_cycle(self, concurrency_sanitizer):
        rlock = SanitizedRLock("test.R")
        with rlock:
            with rlock:
                pass
        assert sanitizer.cycle_reports() == []

    def test_condition_wait_releases_for_ordering_purposes(self, concurrency_sanitizer):
        cond = SanitizedCondition("test.cond")
        other = SanitizedLock("test.other")
        done = []

        def waiter():
            with cond:
                cond.wait(timeout=0.05)  # times out; reacquires cleanly
            with other:
                done.append(True)

        run_thread(waiter)
        assert done == [True]
        assert sanitizer.cycle_reports() == []

    def test_condition_notify_wakes_waiter(self, concurrency_sanitizer):
        cond = SanitizedCondition("test.cond")
        state = {"ready": False, "seen": False}

        def waiter():
            with cond:
                while not state["ready"]:
                    cond.wait(timeout=5.0)
                state["seen"] = True

        thread = threading.Thread(target=waiter, name="cond-waiter", daemon=True)
        thread.start()
        time.sleep(0.02)
        with cond:
            state["ready"] = True
            cond.notify_all()
        thread.join(timeout=10.0)
        assert state["seen"] and not thread.is_alive()


class TestHeldTooLong:
    def test_long_hold_records_warning(self, concurrency_sanitizer):
        sanitizer.enable(held_threshold_s=0.01)
        lock = SanitizedLock("test.slow")
        with lock:
            time.sleep(0.05)
        (warning,) = sanitizer.held_too_long_reports()
        assert warning["lock"] == "test.slow"
        assert warning["duration_s"] > warning["threshold_s"]
        # A latency smell, not a deadlock: assert_clean still passes.
        sanitizer.assert_clean()

    def test_short_hold_is_silent(self, concurrency_sanitizer):
        lock = SanitizedLock("test.fast")
        with lock:
            pass
        assert sanitizer.held_too_long_reports() == []


class TestActivation:
    def test_factory_plain_when_inactive(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        sanitizer.disable()
        assert not isinstance(concurrency.make_lock("plain"), SanitizedLock)
        assert not isinstance(concurrency.make_condition("plain"), SanitizedCondition)

    def test_factory_instrumented_when_enabled(self, concurrency_sanitizer):
        assert isinstance(concurrency.make_lock("inst"), SanitizedLock)
        assert isinstance(concurrency.make_rlock("inst"), SanitizedRLock)
        assert isinstance(concurrency.make_condition("inst"), SanitizedCondition)

    def test_env_var_activates_factory(self, monkeypatch):
        sanitizer.disable()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert isinstance(concurrency.make_lock("env"), SanitizedLock)
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not isinstance(concurrency.make_lock("env"), SanitizedLock)

    def test_thread_shared_marker(self):
        @concurrency.thread_shared
        class Marked:
            pass

        class Unmarked:
            pass

        assert concurrency.is_thread_shared(Marked)
        assert not concurrency.is_thread_shared(Unmarked)

    def test_report_shape(self, concurrency_sanitizer):
        lock_a = SanitizedLock("test.A")
        lock_b = SanitizedLock("test.B")
        with lock_a, lock_b:
            pass
        snapshot = sanitizer.report()
        assert snapshot["enabled"]
        assert snapshot["acquisitions"] >= 2
        (edge,) = snapshot["edges"]
        assert (edge["from"], edge["to"]) == ("test.A", "test.B")
        assert edge["count"] == 1
        assert snapshot["cycles"] == [] and snapshot["held_too_long"] == []


@pytest.mark.serving
class TestSanitizedServing:
    def test_serving_session_is_cycle_free(self, lenet, concurrency_sanitizer):
        # Locks are instrumented at creation, so building the whole server
        # under the fixture gives a fully sanitized end-to-end session.
        from repro.config import small_test_chip
        from repro.core.inference import generate_random_weights
        from repro.serve.server import InferenceServer

        weights = generate_random_weights(lenet, seed=0, scale=0.3)
        server = InferenceServer(
            lenet,
            weights,
            small_test_chip(),
            executor="thread:2",
            max_batch=4,
            max_wait_s=0.002,
        )
        rng = np.random.default_rng(7)
        images = rng.normal(size=(12, *lenet.input_shape.as_tuple()))
        with server:
            futures = [server.submit(image) for image in images]
            outputs = [future.result(timeout=30.0) for future in futures]
        assert len(outputs) == len(images)
        assert sanitizer.report()["acquisitions"] > 0
        assert sanitizer.cycle_reports() == []
        sanitizer.assert_clean()
