"""Device-level unit-cell tests: the analytical array model must match a
device-by-device composition of couplers, PCM cells and phase shifters."""

import numpy as np
import pytest

from repro.crossbar import CrossbarArray, UnitCell
from repro.crossbar.unit_cell import build_device_level_array, device_level_matvec
from repro.errors import SimulationError


class TestUnitCell:
    def test_programming_quantises_weight(self):
        cell = UnitCell(input_coupling=0.5, output_coupling=0.5)
        realised = cell.program(0.3)
        assert abs(realised - 0.3) <= 0.5 / 63
        assert cell.weight == pytest.approx(realised)

    def test_propagate_taps_and_injects(self):
        cell = UnitCell(input_coupling=0.25, output_coupling=1.0)
        cell.program(1.0)
        row_out, column_out = cell.propagate(1.0, 0.0)
        assert row_out == pytest.approx((0.75) ** 0.5)
        assert column_out == pytest.approx((0.25) ** 0.5)

    def test_pcm_weight_scales_injected_field(self):
        cell = UnitCell(input_coupling=0.25, output_coupling=1.0)
        cell.program(63 / 63 * 0.5)
        _, column_full = UnitCell(0.25, 1.0).propagate(1.0, 0.0)
        _, column_half = cell.propagate(1.0, 0.0)
        # The default-constructed comparison cell starts fully crystalline (w=0).
        assert column_full == pytest.approx(0.0)
        assert column_half == pytest.approx(0.5 * (0.25) ** 0.5, rel=2e-2)

    def test_rejects_bad_coupling_and_fields(self):
        with pytest.raises(SimulationError):
            UnitCell(input_coupling=1.5, output_coupling=0.5)
        cell = UnitCell(0.5, 0.5)
        with pytest.raises(SimulationError):
            cell.propagate(-1.0, 0.0)


class TestDeviceLevelArrayAgreement:
    @pytest.mark.parametrize("rows,columns", [(2, 2), (4, 3), (8, 8)])
    def test_device_level_matches_analytical_model(self, rows, columns):
        rng = np.random.default_rng(rows * 10 + columns)
        weights = rng.uniform(0, 1, (rows, columns))
        inputs = rng.uniform(0, 1, rows)

        analytical = CrossbarArray(rows, columns)
        analytical.program_weights(weights)
        analytical_fields = analytical.column_fields(inputs)

        cells = build_device_level_array(analytical.weights)
        row_fields = analytical.odac.modulate(inputs) * (
            analytical.laser_field / np.sqrt(rows)
        )
        device_fields = device_level_matvec(cells, row_fields)

        assert np.allclose(device_fields, analytical_fields, atol=1e-12)

    def test_device_level_with_losses_is_strictly_weaker(self):
        rng = np.random.default_rng(0)
        weights = rng.uniform(0.2, 1, (4, 4))
        inputs = rng.uniform(0.2, 1, 4)

        analytical = CrossbarArray(4, 4)
        analytical.program_weights(weights)
        lossless_fields = analytical.column_fields(inputs)

        lossy_cells = build_device_level_array(analytical.weights, lossless=False)
        row_fields = analytical.odac.modulate(inputs) / 2.0
        lossy_fields = device_level_matvec(lossy_cells, row_fields)
        assert np.all(lossy_fields < lossless_fields)

    def test_mismatched_inputs_rejected(self):
        cells = build_device_level_array(np.zeros((2, 2)))
        with pytest.raises(SimulationError):
            device_level_matvec(cells, np.zeros(3))

    def test_build_rejects_non_2d_weights(self):
        with pytest.raises(SimulationError):
            build_device_level_array(np.zeros(4))
