"""Unit tests for ChipConfig and SramConfig."""

import pytest

from repro.config import ChipConfig, SramConfig, default_sweep_chip, optimal_chip, small_test_chip
from repro.errors import ConfigurationError


class TestSramConfig:
    def test_paper_default_sizes(self):
        sram = SramConfig()
        assert sram.input_mb == pytest.approx(26.3)
        assert sram.filter_mb == pytest.approx(0.75)
        assert sram.output_mb == pytest.approx(0.75)
        assert sram.accumulator_mb == pytest.approx(0.75)
        assert sram.total_mb == pytest.approx(28.55)

    def test_bits_properties(self):
        sram = SramConfig(input_mb=1.0, filter_mb=1.0, output_mb=1.0, accumulator_mb=1.0)
        assert sram.input_bits == pytest.approx(8 * 1024 * 1024)

    def test_scaled_input_changes_only_input(self):
        sram = SramConfig().scaled_input(4.0)
        assert sram.input_mb == pytest.approx(4.0)
        assert sram.filter_mb == pytest.approx(0.75)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            SramConfig(input_mb=0.0)


class TestChipConfig:
    def test_presets_match_paper(self):
        default = default_sweep_chip()
        assert (default.rows, default.columns) == (32, 32)
        assert default.num_cores == 2
        assert default.batch_size == 32
        optimum = optimal_chip()
        assert (optimum.rows, optimum.columns) == (128, 128)
        assert optimum.mac_clock_hz == pytest.approx(10e9)

    def test_small_test_chip_is_small(self):
        tiny = small_test_chip()
        assert tiny.array_size <= 256

    def test_array_size_and_peak_throughput(self):
        config = ChipConfig(rows=128, columns=128)
        assert config.array_size == 16384
        assert config.macs_per_cycle == 16384
        assert config.peak_macs_per_second == pytest.approx(16384 * 10e9)
        assert config.peak_tops == pytest.approx(2 * 16384 * 10e9 / 1e12)

    def test_serialization_ratio_default_is_ten(self):
        assert ChipConfig().serialization_ratio == 10

    def test_mac_cycle_time(self):
        assert ChipConfig(mac_clock_hz=10e9).mac_cycle_time_s == pytest.approx(0.1e-9)

    def test_dram_energy_depends_on_kind(self):
        hbm = ChipConfig(dram_kind="hbm")
        pcie = ChipConfig(dram_kind="pcie")
        assert hbm.dram_energy_per_bit_j == pytest.approx(3.9e-12)
        assert pcie.dram_energy_per_bit_j == pytest.approx(15e-12)
        assert pcie.dram_energy_per_bit_j > hbm.dram_energy_per_bit_j

    def test_programming_time_parallelism_modes(self):
        array_parallel = ChipConfig(rows=32, columns=32)
        assert array_parallel.programming_time_per_array_s == pytest.approx(100e-9)
        row_parallel = ChipConfig(
            rows=32,
            columns=32,
            technology=array_parallel.technology.with_updates(pcm_program_parallelism="row"),
        )
        assert row_parallel.programming_time_per_array_s == pytest.approx(32 * 100e-9)
        cell_serial = ChipConfig(
            rows=32,
            columns=32,
            technology=array_parallel.technology.with_updates(pcm_program_parallelism="cell"),
        )
        assert cell_serial.programming_time_per_array_s == pytest.approx(32 * 32 * 100e-9)

    def test_with_updates(self):
        config = ChipConfig().with_updates(rows=64, batch_size=8)
        assert config.rows == 64
        assert config.batch_size == 8

    def test_with_updates_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError):
            ChipConfig().with_updates(frequency=1.0)

    def test_describe_mentions_key_parameters(self):
        text = optimal_chip().describe()
        assert "128x128" in text
        assert "dual-core" in text

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rows": 0},
            {"columns": -1},
            {"num_cores": 3},
            {"batch_size": 0},
            {"mac_clock_hz": 0.0},
            {"dram_kind": "ddr4"},
        ],
    )
    def test_validation_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChipConfig(**kwargs)
