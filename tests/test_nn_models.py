"""Tests for the bundled CNN topologies, especially ResNet-50 v1.5."""

import pytest

from repro.nn import (
    build_alexnet,
    build_lenet5,
    build_mobilenet_v1,
    build_resnet18,
    build_resnet34,
    build_resnet50,
    build_vgg16,
)


class TestResNet50:
    @pytest.fixture(scope="class")
    def net(self):
        return build_resnet50()

    def test_total_macs_match_published_value(self, net):
        # ResNet-50 v1.5 is ~4.1 GMAC per 224x224 image.
        assert 3.9e9 < net.total_macs < 4.3e9

    def test_total_parameters_match_published_value(self, net):
        assert 25.0e6 < net.total_weights < 26.2e6

    def test_output_is_1000_classes(self, net):
        assert net.output_shape.as_tuple() == (1, 1, 1000)

    def test_has_53_crossbar_layers(self, net):
        # 53 = 49 convs in blocks + stem conv + 16 projection shortcuts... in
        # fact ResNet-50 has 53 conv layers plus the final FC = 54 GEMM layers.
        assert len(net.crossbar_layers) == 54

    def test_v15_downsample_happens_in_3x3_conv(self, net):
        # In v1.5 the stride-2 3x3 conv of stage 2's first block sees 56x56 input.
        info = net.layer_info("stage2_block0_conv3x3")
        assert info.input_shape.height == 56
        assert info.output_shape.height == 28

    def test_stem_and_final_shapes(self, net):
        assert net.layer_info("conv1").output_shape.as_tuple() == (112, 112, 64)
        assert net.layer_info("maxpool").output_shape.as_tuple() == (56, 56, 64)
        assert net.layer_info("global_avgpool").output_shape.as_tuple() == (1, 1, 2048)

    def test_custom_class_count(self):
        net = build_resnet50(num_classes=10)
        assert net.output_shape.channels == 10


class TestOtherResNets:
    def test_resnet18_and_34_mac_ordering(self):
        r18 = build_resnet18()
        r34 = build_resnet34()
        r50 = build_resnet50()
        assert r18.total_macs < r34.total_macs < r50.total_macs

    def test_resnet18_macs_plausible(self):
        assert 1.6e9 < build_resnet18().total_macs < 2.0e9


class TestOtherNetworks:
    def test_vgg16_macs_and_params(self):
        net = build_vgg16()
        assert 15.0e9 < net.total_macs < 16.0e9
        assert 135e6 < net.total_weights < 140e6

    def test_alexnet_params_dominated_by_fc(self):
        net = build_alexnet()
        assert 55e6 < net.total_weights < 65e6

    def test_mobilenet_is_light(self):
        net = build_mobilenet_v1()
        assert net.total_macs < 0.7e9
        assert net.total_weights < 5e6

    def test_mobilenet_width_multiplier_reduces_cost(self):
        full = build_mobilenet_v1(width_multiplier=1.0)
        half = build_mobilenet_v1(width_multiplier=0.5)
        assert half.total_macs < full.total_macs

    def test_lenet_is_tiny_and_valid(self):
        net = build_lenet5()
        assert net.total_macs < 1e7
        assert net.output_shape.channels == 10
