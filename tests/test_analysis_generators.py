"""Tests for the per-figure analysis generators (on reduced grids for speed)."""

import json

import pytest

from repro.analysis import (
    generate_fig1_landscape,
    generate_fig6_array_sweep,
    generate_fig7a_batch_power,
    generate_fig7b_sram_ipsw,
    generate_fig7c_dual_core_ips,
    generate_fig8_breakdown,
    generate_table1,
    rows_to_csv,
    rows_to_json,
    save_rows,
)
from repro.analysis.fig6_array_sweep import peak_point
from repro.analysis.fig7_sram_batch import critical_sram_size_mb
from repro.analysis.trends import array_size_trend, dual_vs_single_core_trend
from repro.core.simulation import SimulationFramework
from repro.errors import SimulationError
from repro.nn import build_lenet5


@pytest.fixture(scope="module")
def lenet():
    return build_lenet5()


@pytest.fixture(scope="module")
def lenet_framework(lenet):
    return SimulationFramework(lenet)


class TestFig1:
    def test_landscape_contains_gpus_and_this_work(self, lenet, tiny_config):
        rows = generate_fig1_landscape(network=lenet, config=tiny_config)
        names = {row["name"] for row in rows}
        assert "NVIDIA A100" in names
        assert any("This work" in name for name in names)
        assert all(row["tops_per_watt"] > 0 for row in rows)


class TestFig6:
    def test_sweep_rows_cover_grid(self, lenet, tiny_config, lenet_framework):
        rows = generate_fig6_array_sweep(
            network=lenet,
            base_config=tiny_config,
            rows_values=(8, 16),
            columns_values=(8, 16),
            framework=lenet_framework,
        )
        assert len(rows) == 4
        assert {"rows", "columns", "ips", "ips_per_watt"} <= set(rows[0])

    def test_peak_point_selected_from_feasible(self, lenet, tiny_config, lenet_framework):
        rows = generate_fig6_array_sweep(
            network=lenet,
            base_config=tiny_config,
            rows_values=(8, 16),
            columns_values=(8,),
            framework=lenet_framework,
        )
        best = peak_point(rows)
        assert best["ips_per_watt"] == max(r["ips_per_watt"] for r in rows)


class TestFig7:
    def test_fig7a_rows_have_group_columns(self, lenet, tiny_config, lenet_framework):
        rows = generate_fig7a_batch_power(
            network=lenet, base_config=tiny_config, batch_sizes=(1, 4), framework=lenet_framework
        )
        assert len(rows) == 2
        assert any(key.startswith("group_") for key in rows[0])
        assert all(row["power_w"] > 0 for row in rows)

    def test_fig7b_and_critical_sram(self, lenet, tiny_config, lenet_framework):
        rows = generate_fig7b_sram_ipsw(
            network=lenet,
            base_config=tiny_config,
            input_sram_mb_values=(0.125, 0.5, 2.0),
            batch_sizes=(2, 8),
            framework=lenet_framework,
        )
        assert len(rows) == 6
        critical_small = critical_sram_size_mb(rows, batch_size=2)
        critical_large = critical_sram_size_mb(rows, batch_size=8)
        assert critical_small <= critical_large
        with pytest.raises(ValueError):
            critical_sram_size_mb(rows, batch_size=999)

    def test_fig7c_has_both_core_counts(self, lenet, tiny_config, lenet_framework):
        rows = generate_fig7c_dual_core_ips(
            network=lenet, base_config=tiny_config, batch_sizes=(1, 4), framework=lenet_framework
        )
        assert {row["num_cores"] for row in rows} == {1.0, 2.0}
        assert len(rows) == 4


class TestFig8AndTable1:
    def test_fig8_breakdown_structure(self, lenet, tiny_config, lenet_framework):
        data = generate_fig8_breakdown(network=lenet, config=tiny_config, framework=lenet_framework)
        assert set(data) == {"power_w", "power_grouped_w", "area_mm2", "area_grouped_mm2", "totals"}
        assert sum(data["power_w"].values()) == pytest.approx(data["totals"]["power_w"])

    def test_table1_rows_and_paper_reference(self, lenet, tiny_config, lenet_framework):
        table = generate_table1(network=lenet, config=tiny_config, framework=lenet_framework)
        assert len(table["rows"]) == 2
        assert table["paper"]["this_work"]["ips"] == pytest.approx(36_382)
        assert table["ratios"]["power_advantage"] > 0


class TestTrends:
    def test_dual_vs_single_core_trend_keys(self, lenet, tiny_config, lenet_framework):
        trend = dual_vs_single_core_trend(network=lenet, config=tiny_config, framework=lenet_framework)
        assert trend["ips_gain"] >= 1.0
        assert trend["power_increase"] >= 1.0

    def test_array_size_trend_rows(self, lenet, tiny_config, lenet_framework):
        rows = array_size_trend(
            network=lenet, base_config=tiny_config, sizes=(8, 16), framework=lenet_framework
        )
        assert len(rows) == 2
        assert rows[1]["ips"] > rows[0]["ips"]


class TestExport:
    def test_csv_export_includes_all_columns(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "c": 4}]
        csv_text = rows_to_csv(rows)
        header = csv_text.splitlines()[0]
        assert header == "a,b,c"
        assert "3" in csv_text

    def test_json_export_round_trips(self):
        rows = [{"a": 1.5}, {"a": 2.5}]
        assert json.loads(rows_to_json(rows)) == rows

    def test_save_rows_by_extension(self, tmp_path):
        rows = [{"x": 1}]
        csv_path = save_rows(rows, tmp_path / "out.csv")
        json_path = save_rows(rows, tmp_path / "out.json")
        assert csv_path.read_text().startswith("x")
        assert json.loads(json_path.read_text()) == rows
        with pytest.raises(SimulationError):
            save_rows(rows, tmp_path / "out.xlsx")

    def test_empty_rows_rejected(self):
        with pytest.raises(SimulationError):
            rows_to_csv([])
        with pytest.raises(SimulationError):
            rows_to_json([])
