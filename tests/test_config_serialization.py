"""Round-trip tests for configuration (de)serialisation."""

import pytest

from repro.config import (
    ChipConfig,
    SramConfig,
    chip_config_from_dict,
    chip_config_to_dict,
    load_chip_config,
    optimal_chip,
    save_chip_config,
    technology_from_dict,
    technology_to_dict,
)
from repro.config.technology import TechnologyConfig
from repro.errors import ConfigurationError


class TestTechnologySerialization:
    def test_round_trip_preserves_all_fields(self):
        original = TechnologyConfig(weight_bits=8, adc_power_w=30e-3)
        restored = technology_from_dict(technology_to_dict(original))
        assert restored == original

    def test_unknown_key_is_rejected(self):
        data = technology_to_dict(TechnologyConfig())
        data["flux_capacitor"] = 1.21
        with pytest.raises(ConfigurationError):
            technology_from_dict(data)


class TestChipSerialization:
    def test_round_trip_preserves_configuration(self):
        original = optimal_chip(batch_size=16, dram_kind="pcie")
        restored = chip_config_from_dict(chip_config_to_dict(original))
        assert restored == original

    def test_round_trip_with_custom_sram_and_technology(self):
        original = ChipConfig(
            rows=64,
            columns=48,
            sram=SramConfig(input_mb=4.0, filter_mb=0.5, output_mb=0.5, accumulator_mb=0.5),
            technology=TechnologyConfig(weight_bits=4),
        )
        restored = chip_config_from_dict(chip_config_to_dict(original))
        assert restored == original

    def test_missing_sections_use_defaults(self):
        restored = chip_config_from_dict({"rows": 16, "columns": 16})
        assert restored.rows == 16
        assert restored.sram.input_mb == pytest.approx(26.3)

    def test_unknown_key_is_rejected(self):
        with pytest.raises(ConfigurationError):
            chip_config_from_dict({"rows": 16, "warp_factor": 9})

    def test_save_and_load_file(self, tmp_path):
        original = optimal_chip()
        path = tmp_path / "config.json"
        save_chip_config(original, path)
        assert load_chip_config(path) == original

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_chip_config(path)
