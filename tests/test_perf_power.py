"""Unit tests for the chip energy/power model."""

import pytest

from repro.config import ChipConfig, optimal_chip
from repro.perf.power import PowerModel
from repro.scalesim.simulator import simulate_network


class TestEnergyBreakdown:
    def test_all_expected_components_present(self, optimal_runtime, optimal_config):
        energy = PowerModel(optimal_config).energy_breakdown(optimal_runtime)
        expected = {
            "odac",
            "adc",
            "tia",
            "serdes",
            "clocking",
            "laser",
            "accumulator",
            "activation",
            "sram",
            "dram",
            "pcm_programming",
            "thermal_tuning",
            "phase_shifters",
            "sram_leakage",
            "control",
        }
        assert expected <= set(energy.components_j)
        assert all(value >= 0 for value in energy.components_j.values())

    def test_total_is_sum_of_components(self, optimal_runtime, optimal_config):
        energy = PowerModel(optimal_config).energy_breakdown(optimal_runtime)
        assert energy.total_j == pytest.approx(sum(energy.components_j.values()))

    def test_fraction_and_component_lookup(self, optimal_runtime, optimal_config):
        energy = PowerModel(optimal_config).energy_breakdown(optimal_runtime)
        assert 0 < energy.fraction("dram") < 1
        assert energy.component("unknown") == 0.0
        grouped = energy.grouped()
        assert grouped["dram"] == pytest.approx(energy.component("dram"))

    def test_dram_energy_matches_traffic_times_energy_per_bit(
        self, optimal_runtime, optimal_config
    ):
        energy = PowerModel(optimal_config).energy_breakdown(optimal_runtime)
        expected = optimal_runtime.total_dram_bits * optimal_config.dram_energy_per_bit_j
        assert energy.component("dram") == pytest.approx(expected)

    def test_adc_energy_scales_with_columns(self, resnet50):
        narrow_cfg = ChipConfig(rows=64, columns=32, batch_size=4)
        wide_cfg = ChipConfig(rows=64, columns=64, batch_size=4)
        narrow_rt = simulate_network(resnet50, narrow_cfg)
        wide_rt = simulate_network(resnet50, wide_cfg)
        narrow_adc_per_cycle = (
            PowerModel(narrow_cfg).energy_breakdown(narrow_rt).component("adc")
            / narrow_rt.total_compute_cycles
        )
        wide_adc_per_cycle = (
            PowerModel(wide_cfg).energy_breakdown(wide_rt).component("adc")
            / wide_rt.total_compute_cycles
        )
        assert wide_adc_per_cycle == pytest.approx(2 * narrow_adc_per_cycle, rel=1e-6)


class TestPowerBreakdown:
    def test_power_is_energy_divided_by_latency(self, optimal_runtime, optimal_config):
        model = PowerModel(optimal_config)
        energy = model.energy_breakdown(optimal_runtime)
        power = model.power_breakdown(optimal_runtime)
        assert power.total_w == pytest.approx(energy.total_j / optimal_runtime.batch_latency_s)

    def test_dram_is_the_dominant_power_component_at_the_optimum(
        self, optimal_runtime, optimal_config
    ):
        power = PowerModel(optimal_config).power_breakdown(optimal_runtime)
        assert power.dominant_component() == "dram"

    def test_total_power_in_paper_ballpark(self, optimal_runtime, optimal_config):
        # Paper: ~30 W for the optimal design point.
        total = PowerModel(optimal_config).total_power_w(optimal_runtime)
        assert 10.0 < total < 60.0

    def test_energy_per_inference_consistency(self, optimal_runtime, optimal_config):
        model = PowerModel(optimal_config)
        per_inference = model.energy_per_inference_j(optimal_runtime)
        assert per_inference == pytest.approx(
            model.energy_breakdown(optimal_runtime).total_j / optimal_runtime.batch_size
        )

    def test_pcie_dram_costs_more_power_than_hbm(self, resnet50):
        hbm_cfg = optimal_chip(dram_kind="hbm")
        pcie_cfg = optimal_chip(dram_kind="pcie")
        hbm_rt = simulate_network(resnet50, hbm_cfg)
        pcie_rt = simulate_network(resnet50, pcie_cfg)
        hbm_dram = PowerModel(hbm_cfg).power_breakdown(hbm_rt).component("dram")
        pcie_dram = PowerModel(pcie_cfg).power_breakdown(pcie_rt).component("dram")
        assert pcie_dram > 2 * hbm_dram

    def test_grouped_power_covers_total(self, optimal_runtime, optimal_config):
        power = PowerModel(optimal_config).power_breakdown(optimal_runtime)
        assert sum(power.grouped().values()) == pytest.approx(power.total_w)
