"""Unit tests for the PCM cell model and weight-matrix quantisation."""

import numpy as np
import pytest

from repro.errors import ProgrammingError
from repro.photonics import PCMCell, PCMState
from repro.photonics.pcm import quantize_weight_matrix


class TestPCMCellProgramming:
    def test_default_cell_has_64_levels(self):
        cell = PCMCell()
        assert cell.levels == 64

    def test_level_to_transmission_endpoints(self):
        cell = PCMCell()
        assert cell.level_to_transmission(0) == pytest.approx(0.0)
        assert cell.level_to_transmission(63) == pytest.approx(1.0)

    def test_program_quantises_to_nearest_level(self):
        cell = PCMCell()
        result = cell.program(0.5)
        assert abs(result["transmission"] - 0.5) <= 0.5 / 63
        assert cell.transmission == pytest.approx(result["transmission"])

    def test_program_returns_energy_and_time(self):
        cell = PCMCell()
        result = cell.program(0.25)
        assert result["energy_j"] == pytest.approx(100e-12)
        assert result["time_s"] == pytest.approx(100e-9)

    def test_write_count_increments(self):
        cell = PCMCell()
        assert cell.write_count == 0
        cell.program(0.1)
        cell.program(0.9)
        assert cell.write_count == 2

    def test_state_classification(self):
        cell = PCMCell()
        cell.program(1.0)
        assert cell.state is PCMState.AMORPHOUS
        cell.program(0.0)
        assert cell.state is PCMState.CRYSTALLINE
        cell.program(0.5)
        assert cell.state is PCMState.INTERMEDIATE

    def test_apply_attenuates_field(self):
        cell = PCMCell()
        cell.program(0.5)
        assert abs(cell.apply(1.0 + 0j)) == pytest.approx(cell.transmission)

    def test_quantization_error_bounded_by_half_lsb(self):
        cell = PCMCell()
        lsb = 1.0 / 63
        for target in np.linspace(0, 1, 101):
            assert cell.quantization_error(float(target)) <= lsb / 2 + 1e-12

    def test_transmission_to_level_round_trip(self):
        cell = PCMCell()
        for level in (0, 1, 31, 62, 63):
            assert cell.transmission_to_level(cell.level_to_transmission(level)) == level

    def test_rejects_out_of_range_target(self):
        cell = PCMCell()
        with pytest.raises(ProgrammingError):
            cell.program(1.5)
        with pytest.raises(ProgrammingError):
            cell.program(-0.1)

    def test_rejects_out_of_range_level(self):
        with pytest.raises(ProgrammingError):
            PCMCell().program_level(64)

    def test_rejects_invalid_construction(self):
        with pytest.raises(ProgrammingError):
            PCMCell(levels=1)
        with pytest.raises(ProgrammingError):
            PCMCell(min_transmission=0.8, max_transmission=0.2)


class TestWeightMatrixQuantisation:
    def test_quantised_values_lie_on_grid(self):
        rng = np.random.default_rng(0)
        weights = rng.uniform(0, 1, (16, 16))
        quantised = quantize_weight_matrix(weights, levels=64)
        codes = quantised * 63
        assert np.allclose(codes, np.round(codes), atol=1e-9)

    def test_quantisation_error_bounded(self):
        rng = np.random.default_rng(1)
        weights = rng.uniform(0, 1, (32, 8))
        quantised = quantize_weight_matrix(weights, levels=64)
        assert np.max(np.abs(quantised - weights)) <= 0.5 / 63 + 1e-12

    def test_idempotent_on_grid_values(self):
        weights = np.linspace(0, 1, 64).reshape(8, 8)
        quantised = quantize_weight_matrix(weights, levels=64)
        assert np.allclose(quantised, weights)

    def test_rejects_out_of_range_weights(self):
        with pytest.raises(ProgrammingError):
            quantize_weight_matrix(np.array([[1.2]]))
        with pytest.raises(ProgrammingError):
            quantize_weight_matrix(np.array([[-0.2]]))
