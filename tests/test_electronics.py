"""Unit tests for the peripheral electronics power/area models."""

import numpy as np
import pytest

from repro.config import TechnologyConfig
from repro.electronics import (
    ADCBank,
    ActivationUnit,
    ClockDistribution,
    DigitalAccumulator,
    ODACDriverBank,
    SerDesBank,
    TIABank,
)
from repro.errors import DeviceModelError


@pytest.fixture()
def tech():
    return TechnologyConfig()


class TestODACDriverBank:
    def test_energy_scales_with_rows_and_rings(self, tech):
        bank_32 = ODACDriverBank(32, tech)
        bank_64 = ODACDriverBank(64, tech)
        assert bank_64.dynamic_energy_per_cycle_j == pytest.approx(
            2 * bank_32.dynamic_energy_per_cycle_j
        )
        assert bank_32.rings_total == 64  # 2 rings per RAMZI transmitter

    def test_static_power_is_thermal_tuning(self, tech):
        bank = ODACDriverBank(16, tech)
        assert bank.static_power_w == pytest.approx(16 * 2 * 0.72e-3)

    def test_rejects_bad_rows(self, tech):
        with pytest.raises(DeviceModelError):
            ODACDriverBank(0, tech)


class TestADCAndTIA:
    def test_adc_energy_per_sample_from_power(self, tech):
        bank = ADCBank(1, tech)
        assert bank.energy_per_sample_j == pytest.approx(25e-3 / 10e9)

    def test_adc_bank_scales_with_columns(self, tech):
        assert ADCBank(128, tech).dynamic_energy_per_cycle_j == pytest.approx(
            128 * ADCBank(1, tech).dynamic_energy_per_cycle_j
        )

    def test_adc_area_matches_paper(self, tech):
        assert ADCBank(128, tech).area_mm2 == pytest.approx(128 * 0.0475)

    def test_tia_energy_and_area(self, tech):
        bank = TIABank(64, tech)
        assert bank.energy_per_sample_j == pytest.approx(2.25e-3 / 10e9)
        assert bank.area_mm2 == pytest.approx(64 * tech.tia_area_mm2)

    def test_dynamic_power_helper(self, tech):
        bank = ADCBank(8, tech)
        assert bank.dynamic_power_w(10e9) == pytest.approx(8 * 25e-3, rel=1e-6)
        assert bank.dynamic_power_w(10e9, activity=0.5) == pytest.approx(4 * 25e-3, rel=1e-6)

    def test_dynamic_power_rejects_bad_activity(self, tech):
        with pytest.raises(ValueError):
            ADCBank(8, tech).dynamic_power_w(1e9, activity=1.5)


class TestSerDesAndClocking:
    def test_serialization_ratio_is_ten_to_one(self, tech):
        bank = SerDesBank(32, 32, tech, mac_clock_hz=10e9)
        assert bank.serialization_ratio == 10

    def test_bits_per_cycle_uses_precisions(self, tech):
        bank = SerDesBank(32, 16, tech)
        assert bank.bits_per_cycle == pytest.approx(32 * 6 + 16 * 6)

    def test_serdes_energy_per_cycle(self, tech):
        bank = SerDesBank(32, 32, tech)
        assert bank.dynamic_energy_per_cycle_j == pytest.approx(64 * 6 * 100e-15)

    def test_clocking_lane_count_and_energy(self, tech):
        clock = ClockDistribution(128, 128, tech)
        assert clock.lanes == 256
        assert clock.dynamic_energy_per_cycle_j == pytest.approx(256 * 200e-15)
        assert clock.area_mm2 == pytest.approx(256 * 0.005)

    def test_rejects_bad_dimensions(self, tech):
        with pytest.raises(DeviceModelError):
            SerDesBank(0, 8, tech)
        with pytest.raises(DeviceModelError):
            ClockDistribution(8, 0, tech)


class TestDigitalBlocks:
    def test_accumulator_energy_for_ops(self, tech):
        acc = DigitalAccumulator(64, tech)
        assert acc.energy_for_ops(1000) == pytest.approx(1000 * tech.accumulator_energy_per_op_j)
        with pytest.raises(DeviceModelError):
            acc.energy_for_ops(-1)

    def test_activation_relu(self, tech):
        act = ActivationUnit(tech)
        values = np.array([-1.0, 0.0, 2.5])
        assert np.allclose(act.apply(values, "relu"), [0.0, 0.0, 2.5])

    def test_activation_relu6_and_sigmoid_and_tanh(self, tech):
        act = ActivationUnit(tech)
        assert np.allclose(act.apply(np.array([10.0]), "relu6"), [6.0])
        assert act.apply(np.array([0.0]), "sigmoid")[0] == pytest.approx(0.5)
        assert act.apply(np.array([0.0]), "tanh")[0] == pytest.approx(0.0)

    def test_activation_identity_passthrough(self, tech):
        act = ActivationUnit(tech)
        values = np.array([-3.0, 4.0])
        assert np.allclose(act.apply(values, "identity"), values)

    def test_activation_rejects_unknown_kind(self, tech):
        with pytest.raises(DeviceModelError):
            ActivationUnit(tech).apply(np.array([1.0]), "swish")

    def test_summary_interface(self, tech):
        for block in (
            ODACDriverBank(8, tech),
            ADCBank(8, tech),
            TIABank(8, tech),
            SerDesBank(8, 8, tech),
            ClockDistribution(8, 8, tech),
            DigitalAccumulator(8, tech),
            ActivationUnit(tech),
        ):
            summary = block.summary()
            assert summary["name"] == block.name
            assert summary["dynamic_energy_per_cycle_j"] >= 0
            assert summary["area_mm2"] >= 0
