"""Tests for the Section VI-B design optimizer."""

import pytest

from repro.core.optimizer import DesignOptimizer
from repro.errors import OptimizationError
from repro.nn import build_lenet5, build_resnet18


@pytest.fixture(scope="module")
def small_optimizer(sweep_config=None):
    from repro.config import default_sweep_chip

    return DesignOptimizer(
        build_lenet5(), default_sweep_chip(), area_cap_mm2=200.0, ips_hiding_tolerance=0.9
    )


class TestOptimizerSteps:
    def test_batch_evaluation_returns_increasing_candidates(self, small_optimizer):
        ips_by_batch = small_optimizer.choose_batch_size(candidates=(1, 4, 16))
        assert set(ips_by_batch) == {1, 4, 16}
        assert all(value > 0 for value in ips_by_batch.values())

    def test_smallest_sufficient_batch_is_a_candidate(self, small_optimizer):
        batch = small_optimizer.smallest_sufficient_batch(candidates=(1, 4, 16))
        assert batch in (1, 4, 16)

    def test_critical_sram_grows_with_batch(self, small_optimizer):
        assert small_optimizer.critical_input_sram_mb(16) == pytest.approx(
            16 * small_optimizer.critical_input_sram_mb(1)
        )

    def test_choose_input_sram_respects_area_cap(self, small_optimizer):
        chosen = small_optimizer.choose_input_sram_mb(4, candidates=(0.5, 1.0, 2.0))
        assert chosen in (0.5, 1.0, 2.0)

    def test_choose_input_sram_raises_when_nothing_fits(self):
        from repro.config import default_sweep_chip

        optimizer = DesignOptimizer(build_lenet5(), default_sweep_chip(), area_cap_mm2=1.0)
        with pytest.raises(OptimizationError):
            optimizer.choose_input_sram_mb(4, candidates=(16.0, 32.0))

    def test_array_evaluations_sorted_by_ips_per_watt(self, small_optimizer):
        rows = small_optimizer.choose_array_size(
            batch_size=2, input_sram_mb=1.0, rows_candidates=(8, 16), columns_candidates=(8, 16)
        )
        values = [row["ips_per_watt"] for row in rows]
        assert values == sorted(values, reverse=True)

    def test_validation_of_constructor_arguments(self):
        from repro.config import default_sweep_chip

        with pytest.raises(OptimizationError):
            DesignOptimizer(build_lenet5(), default_sweep_chip(), area_cap_mm2=-1.0)
        with pytest.raises(OptimizationError):
            DesignOptimizer(build_lenet5(), default_sweep_chip(), ips_hiding_tolerance=1.5)


class TestFullFlow:
    def test_optimize_small_network_end_to_end(self, small_optimizer):
        result = small_optimizer.optimize(
            batch_candidates=(1, 2, 4),
            array_candidates=(8, 16, 32),
            sram_candidates_mb=(0.5, 1.0, 2.0),
        )
        assert result.chosen_rows in (8, 16, 32)
        assert result.chosen_columns in (8, 16, 32)
        assert result.chosen_batch_size in (1, 2, 4)
        assert result.metrics.feasible
        assert result.config.num_cores == 2
        summary = result.summary()
        assert summary["ips"] > 0 and summary["ips_per_watt"] > 0

    def test_optimizer_on_resnet18_prefers_large_arrays(self, resnet_framework):
        from repro.config import default_sweep_chip

        optimizer = DesignOptimizer(
            build_resnet18(), default_sweep_chip(), area_cap_mm2=200.0
        )
        result = optimizer.optimize(
            batch_candidates=(8, 32),
            array_candidates=(32, 64, 128),
            sram_candidates_mb=(16.0, 26.3),
        )
        # The paper's flow lands on large arrays (>= 64) for CNN workloads.
        assert result.chosen_rows >= 64
        assert result.chosen_columns >= 64
        assert result.array_candidates  # evaluations recorded for inspection
