"""Tests for the per-tile ADC full-scale calibration of the functional crossbar.

When a weight tile is programmed, the receiver's programmable gain is
recalibrated so that the 6-bit ADC's full scale matches the largest dot
product the tile can produce, instead of the worst-case value N.  These tests
pin that behaviour and its effect on accuracy.
"""

import numpy as np
import pytest

from repro.crossbar import CrossbarArray


class TestAdcFullScale:
    def test_default_full_scale_is_row_count(self):
        array = CrossbarArray(16, 8)
        assert array.adc_full_scale == pytest.approx(16.0)

    def test_full_scale_tracks_largest_column_weight_sum(self):
        array = CrossbarArray(16, 8)
        weights = np.zeros((16, 8))
        weights[:, 3] = 0.5  # column 3 sums to 8.0, every other column to 0
        array.program_weights(weights)
        assert array.adc_full_scale == pytest.approx(np.max(array.weights.sum(axis=0)))
        assert array.adc_full_scale < 16.0

    def test_full_scale_never_zero_even_for_all_dark_weights(self):
        array = CrossbarArray(8, 8)
        array.program_weights(np.zeros((8, 8)))
        assert array.adc_full_scale > 0.0
        # And a matvec still returns exactly zero.
        assert np.allclose(array.matvec(np.ones(8)), 0.0)

    def test_reprogramming_updates_the_full_scale(self):
        array = CrossbarArray(8, 4)
        array.program_weights(np.full((8, 4), 0.25))
        small = array.adc_full_scale
        array.program_weights(np.ones((8, 4)))
        assert array.adc_full_scale > small

    def test_sparse_tiles_quantise_more_accurately_than_fixed_full_scale(self):
        """With the per-tile gain, a sparse tile's quantisation error is set by
        its own signal range, far below the worst-case N/2^B step."""
        rng = np.random.default_rng(0)
        rows, columns = 64, 16
        weights = np.zeros((rows, columns))
        weights[:8, :] = rng.uniform(0, 1, (8, columns))  # only 8 active rows
        inputs = rng.uniform(0, 1, rows)

        array = CrossbarArray(rows, columns)
        array.program_weights(weights)
        quantised = array.matvec(inputs, quantize_output=True)
        analog = array.matvec(inputs, quantize_output=False)
        achieved_error = float(np.max(np.abs(quantised - analog)))

        worst_case_lsb = rows / ((1 << array.technology.output_bits) - 1)
        assert achieved_error < worst_case_lsb / 4

    def test_quantised_outputs_never_exceed_full_scale(self):
        rng = np.random.default_rng(1)
        array = CrossbarArray(32, 8)
        array.program_weights(rng.uniform(0, 1, (32, 8)))
        outputs = array.matvec(rng.uniform(0, 1, 32), quantize_output=True)
        assert np.all(outputs <= array.adc_full_scale + 1e-9)
        assert np.all(outputs >= 0.0)
