"""Unit tests for the noise model and phase calibration."""

import numpy as np
import pytest

from repro.crossbar import CrossbarArray, CrossbarNoiseModel, PhaseCalibrator
from repro.errors import DeviceModelError


class TestNoiseModel:
    def test_ideal_model_changes_nothing(self):
        model = CrossbarNoiseModel.ideal()
        assert model.is_ideal
        rng = np.random.default_rng(0)
        fields = np.array([0.1, 0.5, 1.0])
        assert np.allclose(model.apply_to_fields(fields, rng), fields)
        weights = np.array([[0.2, 0.8]])
        assert np.allclose(model.apply_to_weights(weights, rng), weights)

    def test_coherence_factor_decreases_with_phase_error(self):
        low = CrossbarNoiseModel(phase_error_std_rad=0.05)
        high = CrossbarNoiseModel(phase_error_std_rad=0.5)
        assert 0 < high.coherence_factor() < low.coherence_factor() < 1.0

    def test_phase_error_shrinks_fields_deterministically(self):
        model = CrossbarNoiseModel(phase_error_std_rad=0.3)
        rng = np.random.default_rng(0)
        fields = np.array([1.0, 2.0])
        shrunk = model.apply_to_fields(fields, rng)
        assert np.allclose(shrunk, fields * model.coherence_factor())

    def test_amplitude_noise_perturbs_fields(self):
        model = CrossbarNoiseModel(relative_amplitude_noise=0.05)
        rng = np.random.default_rng(0)
        fields = np.ones(1000)
        noisy = model.apply_to_fields(fields, rng)
        assert not np.allclose(noisy, fields)
        assert np.std(noisy) == pytest.approx(0.05, rel=0.2)

    def test_weight_programming_noise_stays_in_unit_interval(self):
        model = CrossbarNoiseModel(weight_programming_std=0.1)
        rng = np.random.default_rng(0)
        weights = rng.uniform(0, 1, (32, 32))
        noisy = model.apply_to_weights(weights, rng)
        assert np.all(noisy >= 0) and np.all(noisy <= 1)

    def test_presets_ordering(self):
        typical = CrossbarNoiseModel.typical()
        pessimistic = CrossbarNoiseModel.pessimistic()
        assert typical.phase_error_std_rad < pessimistic.phase_error_std_rad
        assert not typical.is_ideal

    def test_noisy_array_matvec_error_grows_with_noise(self):
        rng = np.random.default_rng(5)
        weights = rng.uniform(0, 1, (32, 16))
        inputs = rng.uniform(0, 1, 32)
        errors = []
        for model in (CrossbarNoiseModel.ideal(), CrossbarNoiseModel.typical(), CrossbarNoiseModel.pessimistic()):
            array = CrossbarArray(32, 16, noise_model=model, rng=np.random.default_rng(7))
            array.program_weights(weights)
            reference = array.weights.T @ array.odac.modulate(inputs)
            result = array.matvec(inputs, quantize_output=False)
            errors.append(float(np.mean(np.abs(result - reference))))
        assert errors[0] < errors[1] < errors[2]

    def test_rejects_negative_parameters(self):
        with pytest.raises(DeviceModelError):
            CrossbarNoiseModel(phase_error_std_rad=-0.1)


class TestPhaseCalibrator:
    def test_calibration_reduces_phase_error(self):
        calibrator = PhaseCalibrator(16, 16, heater_resolution_bits=8)
        errors = calibrator.sample_phase_errors(0.3, np.random.default_rng(0))
        result = calibrator.calibrate(errors)
        assert result.residual_phase_std_rad < np.std(errors)
        assert result.residual_coherence > result.initial_coherence
        assert result.residual_coherence > 0.999

    def test_finer_heater_dac_leaves_smaller_residual(self):
        coarse = PhaseCalibrator(8, 8, heater_resolution_bits=4)
        fine = PhaseCalibrator(8, 8, heater_resolution_bits=10)
        errors = coarse.sample_phase_errors(0.4, np.random.default_rng(1))
        assert fine.calibrate(errors).residual_phase_std_rad < coarse.calibrate(
            errors
        ).residual_phase_std_rad

    def test_heater_power_positive_and_bounded(self):
        calibrator = PhaseCalibrator(8, 8)
        errors = calibrator.sample_phase_errors(0.2, np.random.default_rng(2))
        result = calibrator.calibrate(errors)
        max_power = 8 * 8 * calibrator.phase_shifter.power_per_pi_w * 2
        assert 0 <= result.heater_power_w <= max_power

    def test_calibration_report_keys(self):
        report = PhaseCalibrator(4, 4).calibration_report(0.2)
        assert set(report) == {
            "initial_coherence",
            "residual_coherence",
            "residual_phase_std_rad",
            "heater_power_w",
        }

    def test_shape_mismatch_rejected(self):
        calibrator = PhaseCalibrator(4, 4)
        with pytest.raises(DeviceModelError):
            calibrator.calibrate(np.zeros((3, 4)))

    def test_rejects_bad_dimensions(self):
        with pytest.raises(DeviceModelError):
            PhaseCalibrator(0, 4)
