"""End-to-end optical inference: a LeNet-class CNN on the INT6 crossbar.

Every convolution and dense layer of a small CNN is executed on the
functional coherent PCM crossbar (differential INT6 weights, 6-bit ODAC
inputs, 6-bit ADC outputs, tile-by-tile mapping), while pooling and
activations run in the digital backend — i.e. the complete inference path of
the proposed accelerator, just with synthetic weights and images.

The script reports, over a small batch of random images, how closely the
optical INT6 results track exact floating-point inference and how often the
predicted class (arg-max) agrees — with an ideal array and with pessimistic
analog impairments.

Usage::

    python examples/optical_lenet_inference.py
"""

from __future__ import annotations

import numpy as np

from repro import small_test_chip
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.crossbar import CrossbarNoiseModel
from repro.nn import build_lenet5


def evaluate(engine: FunctionalInferenceEngine, images) -> dict:
    errors, correlations, matches = [], [], []
    for image in images:
        report = engine.agreement(image)
        errors.append(report["relative_error"])
        correlations.append(report["correlation"])
        matches.append(report["top1_match"])
    return {
        "mean_relative_error": float(np.mean(errors)),
        "mean_correlation": float(np.mean(correlations)),
        "top1_agreement": float(np.mean(matches)),
    }


def main() -> None:
    rng = np.random.default_rng(0)
    network = build_lenet5(input_size=12)
    weights = generate_random_weights(network, seed=1, scale=0.3)
    chip = small_test_chip(rows=64, columns=64)
    images = [rng.uniform(0, 1, (12, 12, 1)) for _ in range(8)]

    print(f"network : {network.name} ({network.total_macs / 1e6:.2f} MMAC / inference)")
    print(f"chip    : {chip.describe()}")
    print(f"samples : {len(images)} random images, synthetic weights")
    print("-" * 72)

    for label, noise in (
        ("ideal array (quantisation only)", None),
        ("typical analog impairments", CrossbarNoiseModel.typical()),
        ("pessimistic analog impairments", CrossbarNoiseModel.pessimistic()),
    ):
        engine = FunctionalInferenceEngine(network, weights, chip, noise_model=noise, seed=2)
        stats = evaluate(engine, images)
        print(
            f"{label:<34s} rel. error {stats['mean_relative_error'] * 100:5.1f} %   "
            f"corr {stats['mean_correlation']:.4f}   "
            f"top-1 agreement {stats['top1_agreement'] * 100:.0f} %"
        )

    print()
    print("With synthetic (random) weights the ten output logits are nearly tied, so")
    print("top-1 agreement is a harsh metric; the output correlation of ~0.99 is the")
    print("meaningful number and is the accuracy premise behind the paper's choice of")
    print("6-bit precision for weights, activations and converters.")


if __name__ == "__main__":
    main()
