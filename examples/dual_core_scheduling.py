"""Dual-core programming-latency hiding on real ResNet-50 layer tiles.

The PCM array cannot compute while it is being reprogrammed, and a
reprogramming pass (~100 ns) costs ~1000 MAC cycles.  This example extracts
the real (programming, compute) tile sequence of ResNet-50 from the dataflow
simulator, replays it through the event-driven dual-core scheduler, and shows
how the speed-up from the second core shrinks as the batch size grows — the
trade-off behind Fig. 7c of the paper.

Usage::

    python examples/dual_core_scheduling.py
"""

from __future__ import annotations

from repro import build_resnet50, default_sweep_chip
from repro.core.report import format_table
from repro.crossbar import DualCoreCrossbar
from repro.scalesim import CrossbarDataflowSimulator, network_tile_jobs


def tile_jobs_for(config, network):
    """One ProgrammingJob per (layer, tile) of the whole network."""
    runtime = CrossbarDataflowSimulator(config).simulate(network)
    return network_tile_jobs(runtime, config), runtime


def main() -> None:
    network = build_resnet50()
    print("Dual-core programming-latency hiding on ResNet-50 (32x32 default chip)")
    print("-" * 78)

    rows = []
    for batch in (1, 2, 4, 8, 16, 32, 64):
        config = default_sweep_chip(batch_size=batch)
        jobs, runtime = tile_jobs_for(config, network)
        summary = DualCoreCrossbar.summarize(jobs)
        rows.append(
            [
                batch,
                len(jobs),
                f"{summary['single_core_makespan_s'] * 1e3:.3f}",
                f"{summary['dual_core_makespan_s'] * 1e3:.3f}",
                f"{summary['speedup']:.2f}x",
                f"{summary['dual_core_utilisation'] * 100:.0f} %",
            ]
        )
    print(
        format_table(
            ["batch", "tiles", "1-core batch time (ms)", "2-core batch time (ms)", "speed-up", "compute util."],
            rows,
        )
    )
    print()
    print("At small batch sizes the second core nearly doubles throughput by")
    print("overlapping PCM programming with compute; at batch 32+ a single core")
    print("is already compute-bound and the dual core's benefit shrinks — which")
    print("is exactly why the paper pairs the dual-core scheme with batch 32.")


if __name__ == "__main__":
    main()
