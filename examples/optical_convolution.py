"""Functional demo: run a CNN layer *optically* on the INT6 coherent crossbar.

This example exercises the functional datapath rather than the performance
model: a convolution layer with signed weights is lowered via im2col, mapped
tile-by-tile onto the PCM crossbar (differential weight mapping, 6-bit ODAC
inputs, 6-bit ADC outputs), and compared against the exact floating-point
convolution — with and without analog impairments, before and after thermal
phase calibration.

Usage::

    python examples/optical_convolution.py
"""

from __future__ import annotations

import numpy as np

from repro import OpticalCrossbarAccelerator, small_test_chip
from repro.crossbar import CrossbarNoiseModel, PhaseCalibrator
from repro.nn.im2col import conv2d_reference


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.linalg.norm(a - b) / np.linalg.norm(b))


def run_layer(noise_model, label: str, fmap, weights) -> None:
    accelerator = OpticalCrossbarAccelerator(
        small_test_chip(rows=16, columns=16), noise_model=noise_model, seed=7
    )
    optical = accelerator.conv2d(fmap, weights, stride=1, padding=1)
    exact = conv2d_reference(fmap, weights, stride=1, padding=1)
    error = relative_error(optical, exact)
    correlation = np.corrcoef(optical.ravel(), exact.ravel())[0, 1]
    print(f"{label:<38s} rel. error {error * 100:6.2f} %   correlation {correlation:.4f}")


def main() -> None:
    rng = np.random.default_rng(42)
    # A small "image" and a bank of signed 3x3 filters.
    feature_map = rng.uniform(0.0, 1.0, size=(12, 12, 3))
    filters = rng.normal(0.0, 0.5, size=(3, 3, 3, 8))

    print("Optical convolution on a 16x16 PCM crossbar (INT6 end to end)")
    print("-" * 72)
    run_layer(None, "ideal array (quantisation only)", feature_map, filters)
    run_layer(CrossbarNoiseModel.typical(), "typical impairments", feature_map, filters)
    run_layer(CrossbarNoiseModel.pessimistic(), "pessimistic impairments", feature_map, filters)

    print()
    print("Thermal phase-shifter calibration (Section III-A.2)")
    print("-" * 72)
    calibrator = PhaseCalibrator(16, 16, heater_resolution_bits=8)
    for fabrication_std in (0.1, 0.3, 0.6):
        report = calibrator.calibration_report(fabrication_std, seed=3)
        residual_model = CrossbarNoiseModel(phase_error_std_rad=report["residual_phase_std_rad"])
        uncalibrated_model = CrossbarNoiseModel(phase_error_std_rad=fabrication_std)
        print(
            f"fabrication phase error sigma = {fabrication_std:.2f} rad: "
            f"coherence {uncalibrated_model.coherence_factor():.3f} -> "
            f"{residual_model.coherence_factor():.4f} after calibration "
            f"({report['heater_power_w'] * 1e3:.2f} mW of heater power)"
        )


if __name__ == "__main__":
    main()
