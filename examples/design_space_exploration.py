"""Design-space exploration: reproduce the Section VI trend studies.

Sweeps the crossbar dimensions, batch size and input-SRAM size around the
paper's default 32×32 configuration, prints the trends behind Figs. 6 and 7,
and then runs the Section VI-B optimization flow to find the best design
point for ResNet-50.

Usage::

    python examples/design_space_exploration.py [--fast]

``--fast`` uses ResNet-18 and smaller grids so the script finishes in a few
seconds.
"""

from __future__ import annotations

import argparse

from repro import DesignOptimizer, build_resnet18, build_resnet50, default_sweep_chip
from repro.analysis import (
    generate_fig6_array_sweep,
    generate_fig7a_batch_power,
    generate_fig7b_sram_ipsw,
    generate_fig7c_dual_core_ips,
)
from repro.analysis.fig6_array_sweep import peak_point
from repro.core.report import format_table
from repro.core.simulation import SimulationFramework


def print_fig6(network, framework, sizes) -> None:
    print("\n--- Fig. 6: IPS/W vs crossbar rows x columns " + "-" * 25)
    rows = generate_fig6_array_sweep(
        network=network,
        base_config=default_sweep_chip(),
        rows_values=sizes,
        columns_values=sizes,
        framework=framework,
    )
    table = [
        [int(r["rows"]), int(r["columns"]), f"{r['ips']:.0f}", f"{r['ips_per_watt']:.0f}",
         "yes" if r["feasible"] else "NO"]
        for r in rows
    ]
    print(format_table(["rows", "cols", "IPS", "IPS/W", "feasible"], table))
    best = peak_point(rows)
    print(f"peak IPS/W at {int(best['rows'])}x{int(best['columns'])} "
          f"({best['ips_per_watt']:.0f} IPS/W) — paper reports a peak at 128-256 rows, 64-128 cols")


def print_fig7(network, framework, batches, sram_sizes) -> None:
    print("\n--- Fig. 7a: power vs batch size (32x32 default chip) " + "-" * 16)
    rows = generate_fig7a_batch_power(
        network=network, base_config=default_sweep_chip(), batch_sizes=batches, framework=framework
    )
    table = [
        [int(r["batch_size"]), f"{r['power_w']:.2f}", f"{r['dram_power_w']:.2f}",
         f"{r['ips']:.0f}", f"{r['ips_per_watt']:.0f}"]
        for r in rows
    ]
    print(format_table(["batch", "power (W)", "DRAM (W)", "IPS", "IPS/W"], table))

    print("\n--- Fig. 7b: IPS/W vs input SRAM size " + "-" * 33)
    rows = generate_fig7b_sram_ipsw(
        network=network,
        base_config=default_sweep_chip(),
        input_sram_mb_values=sram_sizes,
        batch_sizes=(8, 32),
        framework=framework,
    )
    table = [
        [int(r["batch_size"]), f"{r['input_sram_mb']:.1f}", f"{r['ips_per_watt']:.0f}",
         f"{r['dram_power_w']:.2f}"]
        for r in rows
    ]
    print(format_table(["batch", "input SRAM (MB)", "IPS/W", "DRAM (W)"], table))

    print("\n--- Fig. 7c: IPS vs batch size, single vs dual core " + "-" * 19)
    rows = generate_fig7c_dual_core_ips(
        network=network, base_config=default_sweep_chip(), batch_sizes=batches, framework=framework
    )
    table = [
        [int(r["num_cores"]), int(r["batch_size"]), f"{r['ips']:.0f}", f"{r['ips_per_watt']:.0f}"]
        for r in rows
    ]
    print(format_table(["cores", "batch", "IPS", "IPS/W"], table))


def run_optimizer(network) -> None:
    print("\n--- Section VI-B optimization flow " + "-" * 36)
    optimizer = DesignOptimizer(network, default_sweep_chip(), area_cap_mm2=160.0)
    result = optimizer.optimize(
        batch_candidates=(1, 4, 8, 16, 32, 64),
        array_candidates=(32, 64, 128, 256),
        sram_candidates_mb=(8.0, 16.0, 26.3, 32.0),
    )
    summary = result.summary()
    print(f"chosen batch size   : {summary['batch_size']}")
    print(f"chosen input SRAM   : {summary['input_sram_mb']} MB")
    print(f"chosen array size   : {summary['rows']}x{summary['columns']}")
    print(f"resulting IPS       : {summary['ips']:.0f}")
    print(f"resulting IPS/W     : {summary['ips_per_watt']:.0f}")
    print(f"resulting area      : {summary['area_mm2']:.1f} mm^2")
    print("(paper's optimum: 128x128, batch 32, 26.3 MB input SRAM)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller network and grids")
    args = parser.parse_args()

    if args.fast:
        network = build_resnet18()
        sizes = (32, 64, 128)
        batches = (1, 8, 32, 64)
        sram_sizes = (8.0, 26.3)
    else:
        network = build_resnet50()
        sizes = (32, 64, 128, 256)
        batches = (1, 4, 8, 16, 32, 64, 128)
        sram_sizes = (2.0, 8.0, 16.0, 26.3, 48.0)

    framework = SimulationFramework(network)
    print(f"workload: {network.name} ({network.total_macs / 1e9:.2f} GMAC)")
    print_fig6(network, framework, sizes)
    print_fig7(network, framework, batches, sram_sizes)
    run_optimizer(network)


if __name__ == "__main__":
    main()
