"""Technology ablations: what breaks the design if a device assumption changes?

Four what-if studies around the paper's optimised 128×128 design point:

1. co-packaged HBM (3.9 pJ/bit) vs PCIe-attached DRAM (15 pJ/bit) — the
   paper's argument against [11];
2. the MMI crossing loss as printed (1.8 dB/junction) vs the cited device
   (0.018 dB) — why the printed number cannot be meant literally;
3. arithmetic precision (4/6/8 bits) — converter energy vs accuracy headroom;
4. alternative CNN workloads (ResNet-18/50, VGG-16, MobileNet-V1).

Usage::

    python examples/technology_ablations.py
"""

from __future__ import annotations

from repro import build_mobilenet_v1, build_resnet18, build_resnet50, build_vgg16, optimal_chip
from repro.config.technology import MMI_CROSSING_LOSS_DB_AS_PRINTED
from repro.core.report import format_table
from repro.core.simulation import SimulationFramework


def dram_ablation(network) -> None:
    print("\n--- HBM vs PCIe-attached DRAM " + "-" * 42)
    framework = SimulationFramework(network)
    rows = []
    for kind in ("hbm", "pcie"):
        metrics = framework.evaluate(optimal_chip(dram_kind=kind))
        rows.append(
            [
                kind.upper(),
                f"{metrics.inferences_per_second:.0f}",
                f"{metrics.power_w:.1f}",
                f"{metrics.ips_per_watt:.0f}",
                f"{metrics.power_breakdown.component('dram'):.1f}",
            ]
        )
    print(format_table(["DRAM", "IPS", "power (W)", "IPS/W", "DRAM power (W)"], rows))


def crossing_loss_ablation(network) -> None:
    print("\n--- MMI crossing loss sensitivity " + "-" * 38)
    framework = SimulationFramework(network)
    rows = []
    for loss_db in (0.018, 0.05, 0.1, 0.2, MMI_CROSSING_LOSS_DB_AS_PRINTED):
        config = optimal_chip()
        config = config.with_updates(
            technology=config.technology.with_updates(mmi_crossing_loss_db=loss_db)
        )
        metrics = framework.evaluate(config)
        rows.append(
            [
                f"{loss_db:.3f}",
                f"{metrics.laser.excess_loss_db:.1f}",
                f"{metrics.laser.electrical_power_w:.2f}",
                f"{metrics.ips_per_watt:.0f}",
                "yes" if metrics.feasible else "NO — link budget cannot close",
            ]
        )
    print(format_table(
        ["dB/crossing", "excess loss (dB)", "laser power (W)", "IPS/W", "feasible"], rows
    ))
    print("(the value printed in the paper, 1.8 dB/junction, is shown last)")


def precision_ablation(network) -> None:
    print("\n--- Arithmetic precision " + "-" * 47)
    framework = SimulationFramework(network)
    rows = []
    for bits in (4, 6, 8):
        config = optimal_chip()
        config = config.with_updates(
            technology=config.technology.with_updates(
                weight_bits=bits, activation_bits=bits, output_bits=bits
            )
        )
        metrics = framework.evaluate(config)
        rows.append(
            [bits, f"{metrics.inferences_per_second:.0f}", f"{metrics.power_w:.1f}",
             f"{metrics.ips_per_watt:.0f}"]
        )
    print(format_table(["bits", "IPS", "power (W)", "IPS/W"], rows))
    print("(the paper assumes INT6 end to end; SerDes/SRAM/DRAM traffic scale with word width)")


def workload_ablation() -> None:
    print("\n--- Workloads on the same 128x128 chip " + "-" * 33)
    rows = []
    for builder in (build_resnet18, build_resnet50, build_vgg16, build_mobilenet_v1):
        network = builder()
        metrics = SimulationFramework(network).evaluate(optimal_chip())
        rows.append(
            [
                network.name,
                f"{network.total_macs / 1e9:.2f}",
                f"{metrics.inferences_per_second:.0f}",
                f"{metrics.power_w:.1f}",
                f"{metrics.ips_per_watt:.0f}",
                f"{metrics.mac_utilization * 100:.0f} %",
            ]
        )
    print(format_table(["network", "GMAC", "IPS", "power (W)", "IPS/W", "MAC util."], rows))


def main() -> None:
    network = build_resnet50()
    print(f"Baseline workload: {network.name}, chip: {optimal_chip().describe()}")
    dram_ablation(network)
    crossing_loss_ablation(network)
    precision_ablation(network)
    workload_ablation()


if __name__ == "__main__":
    main()
