"""Quickstart: evaluate ResNet-50 v1.5 on the paper's optimised design point.

Runs the full two-step simulation framework (dataflow simulation + power/area
models) on the 128×128 dual-core crossbar and prints the headline metrics,
the component breakdowns and the Table I comparison against the NVIDIA A100.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    OpticalCrossbarAccelerator,
    build_resnet50,
    compare_to_gpu,
    format_comparison_table,
    format_metrics_report,
    optimal_chip,
)


def main() -> None:
    network = build_resnet50()
    config = optimal_chip()
    accelerator = OpticalCrossbarAccelerator(config)

    print("=" * 72)
    print("Optical PCM crossbar accelerator — quickstart")
    print("=" * 72)
    print(f"Workload : {network.name} "
          f"({network.total_macs / 1e9:.2f} GMAC, {network.total_weights / 1e6:.1f} M parameters)")
    print(f"Chip     : {config.describe()}")
    print(f"Peak     : {accelerator.peak_tops():.1f} TOPS per core")
    print()

    metrics = accelerator.evaluate(network)
    print(format_metrics_report(metrics))
    print()

    print("Table I — comparison against the NVIDIA A100 (ResNet-50, INT8, batch 128)")
    print(format_comparison_table(compare_to_gpu(metrics)))


if __name__ == "__main__":
    main()
