"""Digital partial-sum accumulator.

When a layer's weight matrix is larger than the crossbar, the matrix is
processed in tiles and the per-tile dot products must be accumulated
digitally.  The accumulator sits after the ADC/deserializer, holds partial
sums in the accumulator SRAM, and adds new partial sums as they arrive
(paper Section IV).
"""

from __future__ import annotations

from repro.config.technology import TechnologyConfig
from repro.electronics.components import PeripheralBlock
from repro.errors import DeviceModelError


class DigitalAccumulator(PeripheralBlock):
    """Per-column accumulation logic of one crossbar core.

    Parameters
    ----------
    columns:
        Number of accumulation lanes (one per crossbar column).
    technology:
        Device constants; ``accumulator_energy_per_op_j`` is the energy of one
        add at the accumulator precision.
    """

    def __init__(
        self,
        columns: int,
        technology: TechnologyConfig | None = None,
    ) -> None:
        if columns < 1:
            raise DeviceModelError(f"columns must be >= 1, got {columns}")
        self.columns = columns
        self.technology = technology or TechnologyConfig()

    @property
    def name(self) -> str:
        return "accumulator"

    @property
    def dynamic_energy_per_cycle_j(self) -> float:
        """Energy for one accumulate on every column (J)."""
        return self.columns * self.technology.accumulator_energy_per_op_j

    @property
    def static_power_w(self) -> float:
        return 0.0

    @property
    def area_mm2(self) -> float:
        """Total accumulator logic area (mm²)."""
        return self.columns * self.technology.accumulator_area_per_lane_mm2

    def energy_for_ops(self, num_ops: float) -> float:
        """Energy for an explicit number of accumulate operations (J)."""
        if num_ops < 0:
            raise DeviceModelError(f"num_ops must be >= 0, got {num_ops}")
        return num_ops * self.technology.accumulator_energy_per_op_j
