"""Peripheral electronic circuit models.

The crossbar's optical MAC only pays off if the electro-optical conversions
around it are fast and cheap.  This package models the power, energy and area
of every peripheral block the paper enumerates in Section III-B:

* :class:`~repro.electronics.dac.ODACDriverBank` — per-row optical-DAC drivers
* :class:`~repro.electronics.adc.ADCBank` — per-column 10 GS/s ADCs
* :class:`~repro.electronics.tia.TIABank` — per-column trans-impedance amplifiers
* :class:`~repro.electronics.serdes.SerDesBank` — serializers/deserializers
* :class:`~repro.electronics.clocking.ClockDistribution` — clock generation/distribution
* :class:`~repro.electronics.accumulator.DigitalAccumulator` — partial-sum accumulation
* :class:`~repro.electronics.activation.ActivationUnit` — the non-linear activation block

Every model exposes ``dynamic_energy_per_cycle_j``, ``static_power_w`` and
``area_mm2`` so the chip-level power/area roll-up in :mod:`repro.perf` can
treat them uniformly (see :class:`~repro.electronics.components.PeripheralBlock`).
"""

from repro.electronics.accumulator import DigitalAccumulator
from repro.electronics.activation import ActivationUnit
from repro.electronics.adc import ADCBank
from repro.electronics.clocking import ClockDistribution
from repro.electronics.components import PeripheralBlock
from repro.electronics.dac import ODACDriverBank
from repro.electronics.serdes import SerDesBank
from repro.electronics.tia import TIABank

__all__ = [
    "ADCBank",
    "ActivationUnit",
    "ClockDistribution",
    "DigitalAccumulator",
    "ODACDriverBank",
    "PeripheralBlock",
    "SerDesBank",
    "TIABank",
]
