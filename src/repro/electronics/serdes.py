"""SerDes bank: serializers/deserializers between SRAM and the optical array.

The crossbar runs at 10 GHz while the digital backend (SRAM) runs near 1 GHz,
so every row needs a serializer and every column a deserializer with a ~10:1
ratio.  The paper budgets roughly 100 fJ per serialised bit (Section
III-B.3, [15]).
"""

from __future__ import annotations

from repro.config.technology import TechnologyConfig
from repro.electronics.components import PeripheralBlock
from repro.errors import DeviceModelError


class SerDesBank(PeripheralBlock):
    """Serializers for all rows plus deserializers for all columns of one core.

    Parameters
    ----------
    rows, columns:
        Crossbar dimensions; rows are serialised (input side), columns are
        deserialised (output side).
    technology:
        Device constants (energy per bit, lane area, backend clock rate).
    mac_clock_hz:
        MAC rate, used to compute the serialization ratio.
    bits_per_row_sample, bits_per_column_sample:
        Word widths moved per MAC cycle on the input and output sides; default
        to the technology's activation and output precisions.
    """

    def __init__(
        self,
        rows: int,
        columns: int,
        technology: TechnologyConfig | None = None,
        mac_clock_hz: float = 10e9,
        bits_per_row_sample: int | None = None,
        bits_per_column_sample: int | None = None,
    ) -> None:
        if rows < 1 or columns < 1:
            raise DeviceModelError(
                f"array dimensions must be >= 1, got {rows}x{columns}"
            )
        if mac_clock_hz <= 0:
            raise DeviceModelError(f"mac_clock_hz must be > 0, got {mac_clock_hz}")
        self.rows = rows
        self.columns = columns
        self.technology = technology or TechnologyConfig()
        self.mac_clock_hz = mac_clock_hz
        self.bits_per_row_sample = (
            bits_per_row_sample
            if bits_per_row_sample is not None
            else self.technology.activation_bits
        )
        self.bits_per_column_sample = (
            bits_per_column_sample
            if bits_per_column_sample is not None
            else self.technology.output_bits
        )
        if self.bits_per_row_sample < 1 or self.bits_per_column_sample < 1:
            raise DeviceModelError("bits per sample must be >= 1")

    # ------------------------------------------------------------------ derived
    @property
    def serialization_ratio(self) -> int:
        """MAC-clock to backend-clock ratio (e.g. 10:1 for 10 GHz / 1 GHz)."""
        ratio = self.mac_clock_hz / self.technology.backend_clock_hz
        return max(1, int(round(ratio)))

    @property
    def lanes(self) -> int:
        """Number of SerDes lanes (one per row plus one per column)."""
        return self.rows + self.columns

    @property
    def bits_per_cycle(self) -> float:
        """Bits serialised plus deserialised per MAC cycle."""
        return (
            self.rows * self.bits_per_row_sample
            + self.columns * self.bits_per_column_sample
        )

    # ------------------------------------------------------------------ interface
    @property
    def name(self) -> str:
        return "serdes"

    @property
    def dynamic_energy_per_cycle_j(self) -> float:
        """SerDes energy per MAC cycle (J)."""
        return self.bits_per_cycle * self.technology.serdes_energy_per_bit_j

    @property
    def static_power_w(self) -> float:
        return 0.0

    @property
    def area_mm2(self) -> float:
        """Total SerDes area (mm²)."""
        return self.lanes * self.technology.serdes_area_mm2
