"""ADC bank: per-column analog-to-digital converters.

Every column output is digitised at the MAC rate.  The paper budgets 25 mW
and 0.0475 mm² per 10 GS/s ADC in 45 nm CMOS (Section III-B.2, [18]).  Power
is converted to an energy-per-sample figure so that it scales with activity.
"""

from __future__ import annotations

from repro.config.technology import TechnologyConfig
from repro.electronics.components import PeripheralBlock
from repro.errors import DeviceModelError


class ADCBank(PeripheralBlock):
    """All column ADCs of one crossbar core.

    Parameters
    ----------
    columns:
        Number of crossbar columns (one ADC per column).
    technology:
        Device constants; ``adc_power_w`` is quoted at ``adc_sample_rate_hz``.
    mac_clock_hz:
        MAC (sample) rate of the design point.
    """

    def __init__(
        self,
        columns: int,
        technology: TechnologyConfig | None = None,
        mac_clock_hz: float = 10e9,
    ) -> None:
        if columns < 1:
            raise DeviceModelError(f"columns must be >= 1, got {columns}")
        if mac_clock_hz <= 0:
            raise DeviceModelError(f"mac_clock_hz must be > 0, got {mac_clock_hz}")
        self.columns = columns
        self.technology = technology or TechnologyConfig()
        self.mac_clock_hz = mac_clock_hz

    # ------------------------------------------------------------------ derived
    @property
    def energy_per_sample_j(self) -> float:
        """Energy per conversion of a single ADC (J)."""
        return self.technology.adc_power_w / self.technology.adc_sample_rate_hz

    # ------------------------------------------------------------------ interface
    @property
    def name(self) -> str:
        return "adcs"

    @property
    def dynamic_energy_per_cycle_j(self) -> float:
        """Energy for one conversion on every column (J)."""
        return self.columns * self.energy_per_sample_j

    @property
    def static_power_w(self) -> float:
        """ADC bias power not captured by the per-sample energy (W).

        The published figure is an operating power at full rate, so it is
        fully attributed to the dynamic term; the static term is zero.
        """
        return 0.0

    @property
    def area_mm2(self) -> float:
        """Total ADC area (mm²)."""
        return self.columns * self.technology.adc_area_mm2
