"""Common interface for peripheral electronic blocks.

Each peripheral block reports three quantities that the chip-level roll-up
needs:

* ``dynamic_energy_per_cycle_j`` — energy consumed per MAC clock cycle while
  the block is actively processing data;
* ``static_power_w`` — power drawn whenever the chip is on, independent of
  activity (bias currents, thermal tuning, clock trees);
* ``area_mm2`` — silicon area of the block.

Keeping the interface energy-centric (rather than power-centric) is what
makes IPS/W invariant to the single-/dual-core choice, exactly as the paper
observes in Section VI-A.1: a dual-core chip finishes an inference in less
time but spends the same energy on it.
"""

from __future__ import annotations

import abc


class PeripheralBlock(abc.ABC):
    """Abstract base class for peripheral electronics power/area models."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier used in power/area breakdowns."""

    @property
    @abc.abstractmethod
    def dynamic_energy_per_cycle_j(self) -> float:
        """Dynamic energy per active MAC clock cycle (J)."""

    @property
    @abc.abstractmethod
    def static_power_w(self) -> float:
        """Always-on static power (W)."""

    @property
    @abc.abstractmethod
    def area_mm2(self) -> float:
        """Block area (mm²)."""

    # ------------------------------------------------------------------ helpers
    def dynamic_power_w(self, clock_hz: float, activity: float = 1.0) -> float:
        """Dynamic power at a given clock rate and activity factor (W)."""
        if clock_hz < 0:
            raise ValueError(f"clock_hz must be >= 0, got {clock_hz}")
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity must be in [0, 1], got {activity}")
        return self.dynamic_energy_per_cycle_j * clock_hz * activity

    def energy_for_cycles(self, num_cycles: float) -> float:
        """Dynamic energy consumed over ``num_cycles`` active cycles (J)."""
        if num_cycles < 0:
            raise ValueError(f"num_cycles must be >= 0, got {num_cycles}")
        return self.dynamic_energy_per_cycle_j * num_cycles

    def summary(self) -> dict:
        """Dictionary summary used by reports and tests."""
        return {
            "name": self.name,
            "dynamic_energy_per_cycle_j": self.dynamic_energy_per_cycle_j,
            "static_power_w": self.static_power_w,
            "area_mm2": self.area_mm2,
        }
