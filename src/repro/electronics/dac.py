"""ODAC driver bank: the electrical drivers behind the per-row transmitters.

Each crossbar row has one RAMZI transmitter containing
``rings_per_transmitter`` ring ODACs.  Per the paper (Section III-B.1, [15])
each ODAC driver consumes 168 fJ per 10 GS/s sample and 0.0012 mm², with an
additional 0.72 mW of thermal tuning per ring.
"""

from __future__ import annotations

from repro.config.technology import TechnologyConfig
from repro.electronics.components import PeripheralBlock
from repro.errors import DeviceModelError


class ODACDriverBank(PeripheralBlock):
    """Drivers and thermal tuning for all row transmitters of one core.

    Parameters
    ----------
    rows:
        Number of crossbar rows (one transmitter per row).
    technology:
        Device constants.
    mac_clock_hz:
        MAC (sample) rate; energy figures in the technology config are quoted
        per sample, so the clock only affects derived power numbers.
    """

    def __init__(
        self,
        rows: int,
        technology: TechnologyConfig | None = None,
        mac_clock_hz: float = 10e9,
    ) -> None:
        if rows < 1:
            raise DeviceModelError(f"rows must be >= 1, got {rows}")
        if mac_clock_hz <= 0:
            raise DeviceModelError(f"mac_clock_hz must be > 0, got {mac_clock_hz}")
        self.rows = rows
        self.technology = technology or TechnologyConfig()
        self.mac_clock_hz = mac_clock_hz

    # ------------------------------------------------------------------ interface
    @property
    def name(self) -> str:
        return "odac_drivers"

    @property
    def rings_total(self) -> int:
        """Total number of ring ODACs across all row transmitters."""
        return self.rows * self.technology.rings_per_transmitter

    @property
    def dynamic_energy_per_cycle_j(self) -> float:
        """Driver energy for one new sample on every row (J)."""
        return self.rings_total * self.technology.odac_driver_energy_per_sample_j

    @property
    def static_power_w(self) -> float:
        """Thermal tuning power of all rings (W)."""
        return self.rings_total * self.technology.ring_thermal_tuning_power_w

    @property
    def area_mm2(self) -> float:
        """Driver area of all rings (mm²)."""
        return self.rings_total * self.technology.odac_driver_area_mm2
