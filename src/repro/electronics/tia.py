"""TIA bank: per-column trans-impedance amplifiers.

Each balanced-photodiode output is amplified by a TIA before digitisation.
The paper budgets 2.25 mW per TIA based on a 45 nm coherent receiver
demonstration (Section III-B.2, [17]).
"""

from __future__ import annotations

from repro.config.technology import TechnologyConfig
from repro.electronics.components import PeripheralBlock
from repro.errors import DeviceModelError


class TIABank(PeripheralBlock):
    """All column TIAs of one crossbar core."""

    def __init__(
        self,
        columns: int,
        technology: TechnologyConfig | None = None,
        mac_clock_hz: float = 10e9,
    ) -> None:
        if columns < 1:
            raise DeviceModelError(f"columns must be >= 1, got {columns}")
        if mac_clock_hz <= 0:
            raise DeviceModelError(f"mac_clock_hz must be > 0, got {mac_clock_hz}")
        self.columns = columns
        self.technology = technology or TechnologyConfig()
        self.mac_clock_hz = mac_clock_hz

    @property
    def energy_per_sample_j(self) -> float:
        """Energy per processed sample of a single TIA (J).

        The TIA power is quoted at the reference 10 GS/s MAC rate; expressing
        it per sample lets the roll-up scale it with the actual activity.
        """
        return self.technology.tia_power_w / self.technology.adc_sample_rate_hz

    @property
    def name(self) -> str:
        return "tias"

    @property
    def dynamic_energy_per_cycle_j(self) -> float:
        """Energy for one sample on every column (J)."""
        return self.columns * self.energy_per_sample_j

    @property
    def static_power_w(self) -> float:
        return 0.0

    @property
    def area_mm2(self) -> float:
        """Total TIA area (mm²)."""
        return self.columns * self.technology.tia_area_mm2
