"""Activation unit.

After all partial sums of an output element have been accumulated, a digital
activation unit applies the layer's non-linearity (ReLU for ResNet-50) before
the result is written to the output SRAM (paper Section IV, Fig. 4).
"""

from __future__ import annotations

import numpy as np

from repro.config.technology import TechnologyConfig
from repro.electronics.components import PeripheralBlock
from repro.errors import DeviceModelError


class ActivationUnit(PeripheralBlock):
    """Digital activation block shared by all columns.

    The functional ``apply`` method implements the activations needed by the
    bundled CNN workloads; the energy/area figures feed the chip roll-up.
    """

    SUPPORTED = ("relu", "relu6", "identity", "sigmoid", "tanh")

    def __init__(self, technology: TechnologyConfig | None = None) -> None:
        self.technology = technology or TechnologyConfig()

    # ------------------------------------------------------------------ functional
    def apply(self, values: np.ndarray, kind: str = "relu") -> np.ndarray:
        """Apply an activation function elementwise."""
        if kind not in self.SUPPORTED:
            raise DeviceModelError(
                f"unsupported activation {kind!r}; expected one of {self.SUPPORTED}"
            )
        values = np.asarray(values, dtype=float)
        if kind == "relu":
            return np.maximum(values, 0.0)
        if kind == "relu6":
            return np.clip(values, 0.0, 6.0)
        if kind == "sigmoid":
            return 1.0 / (1.0 + np.exp(-values))
        if kind == "tanh":
            return np.tanh(values)
        return values

    # ------------------------------------------------------------------ interface
    @property
    def name(self) -> str:
        return "activation"

    @property
    def dynamic_energy_per_cycle_j(self) -> float:
        """Energy to activate one output element (J)."""
        return self.technology.activation_energy_per_op_j

    @property
    def static_power_w(self) -> float:
        return 0.0

    @property
    def area_mm2(self) -> float:
        """Activation block area (mm²)."""
        return self.technology.activation_area_mm2

    def energy_for_ops(self, num_ops: float) -> float:
        """Energy for an explicit number of activation operations (J)."""
        if num_ops < 0:
            raise DeviceModelError(f"num_ops must be >= 0, got {num_ops}")
        return num_ops * self.technology.activation_energy_per_op_j
