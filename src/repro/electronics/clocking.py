"""High-speed clock generation and distribution.

The 10 GHz transmit and receive chains need a clean clock distributed to every
row and column lane.  The paper budgets ~200 fJ per cycle and 0.005 mm² per
row/column lane (Section III-B.3, [15]).
"""

from __future__ import annotations

from repro.config.technology import TechnologyConfig
from repro.electronics.components import PeripheralBlock
from repro.errors import DeviceModelError


class ClockDistribution(PeripheralBlock):
    """Clock generation + distribution for all lanes of one crossbar core."""

    def __init__(
        self,
        rows: int,
        columns: int,
        technology: TechnologyConfig | None = None,
        mac_clock_hz: float = 10e9,
    ) -> None:
        if rows < 1 or columns < 1:
            raise DeviceModelError(
                f"array dimensions must be >= 1, got {rows}x{columns}"
            )
        if mac_clock_hz <= 0:
            raise DeviceModelError(f"mac_clock_hz must be > 0, got {mac_clock_hz}")
        self.rows = rows
        self.columns = columns
        self.technology = technology or TechnologyConfig()
        self.mac_clock_hz = mac_clock_hz

    @property
    def lanes(self) -> int:
        """Number of clocked lanes (rows + columns)."""
        return self.rows + self.columns

    @property
    def name(self) -> str:
        return "clocking"

    @property
    def dynamic_energy_per_cycle_j(self) -> float:
        """Clock energy per MAC cycle across all lanes (J)."""
        return self.lanes * self.technology.clock_energy_per_cycle_j

    @property
    def static_power_w(self) -> float:
        return 0.0

    @property
    def area_mm2(self) -> float:
        """Total clocking area (mm²)."""
        return self.lanes * self.technology.clock_area_per_lane_mm2
