"""Roofline analysis of the accelerator.

The optical crossbar has an enormous peak MAC rate (N·M · 10 GHz), so for
many layers the binding constraint is not compute but the DRAM bandwidth of
the co-packaged HBM.  The classical roofline model makes that visible:

* machine balance  = peak MACs/s ÷ DRAM bandwidth (MACs per DRAM bit);
* a layer's arithmetic intensity = its MACs ÷ the DRAM bits it moves;
* layers below the balance point are memory-bound, layers above it are
  compute-bound.

The per-layer numbers come straight from the dataflow simulator's runtime
specification, so the roofline reflects the actual tiling and spill
behaviour, not idealised reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config.chip import ChipConfig
from repro.errors import SimulationError
from repro.scalesim.runtime import NetworkRuntime


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's position on the roofline plot."""

    layer_name: str
    arithmetic_intensity_macs_per_bit: float
    achieved_macs_per_second: float
    bound: str  # "compute" or "memory"

    def as_dict(self) -> Dict[str, float]:
        """Flat row for export."""
        return {
            "layer": self.layer_name,
            "arithmetic_intensity_macs_per_bit": self.arithmetic_intensity_macs_per_bit,
            "achieved_macs_per_second": self.achieved_macs_per_second,
            "bound": self.bound,
        }


class RooflineModel:
    """Roofline of one chip configuration, populated from a runtime spec."""

    def __init__(self, config: ChipConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ machine
    @property
    def peak_macs_per_second(self) -> float:
        """Peak MAC rate of the compute core (MACs/s)."""
        return self.config.peak_macs_per_second

    @property
    def dram_bandwidth_bits_per_s(self) -> float:
        """Peak DRAM bandwidth (bits/s)."""
        return self.config.technology.dram_bandwidth_bits_per_s

    @property
    def machine_balance_macs_per_bit(self) -> float:
        """Arithmetic intensity at which compute and memory roofs intersect."""
        return self.peak_macs_per_second / self.dram_bandwidth_bits_per_s

    def attainable_macs_per_second(self, arithmetic_intensity: float) -> float:
        """The roofline itself: min(peak, intensity × bandwidth)."""
        if arithmetic_intensity < 0:
            raise SimulationError("arithmetic intensity must be >= 0")
        return min(
            self.peak_macs_per_second,
            arithmetic_intensity * self.dram_bandwidth_bits_per_s,
        )

    # ------------------------------------------------------------------ layers
    def layer_points(self, runtime: NetworkRuntime) -> List[RooflinePoint]:
        """Per-layer roofline points from a runtime specification."""
        if runtime.config != self.config:
            raise SimulationError("runtime was simulated with a different configuration")
        points: List[RooflinePoint] = []
        batch = runtime.batch_size
        for layer in runtime.layers:
            macs = layer.macs * batch
            dram_bits = layer.traffic.dram_bits
            intensity = macs / dram_bits if dram_bits > 0 else float("inf")
            achieved = macs / layer.latency.latency_s
            bound = "memory" if intensity < self.machine_balance_macs_per_bit else "compute"
            points.append(
                RooflinePoint(
                    layer_name=layer.layer_name,
                    arithmetic_intensity_macs_per_bit=intensity,
                    achieved_macs_per_second=achieved,
                    bound=bound,
                )
            )
        return points

    def summary(self, runtime: NetworkRuntime) -> Dict[str, float]:
        """Aggregate roofline statistics for a network."""
        points = self.layer_points(runtime)
        memory_bound = [p for p in points if p.bound == "memory"]
        network_intensity = (
            runtime.total_macs / runtime.total_dram_bits
            if runtime.total_dram_bits > 0
            else float("inf")
        )
        return {
            "machine_balance_macs_per_bit": self.machine_balance_macs_per_bit,
            "network_arithmetic_intensity": network_intensity,
            "num_layers": float(len(points)),
            "num_memory_bound_layers": float(len(memory_bound)),
            "memory_bound_fraction": len(memory_bound) / len(points),
            "achieved_macs_per_second": runtime.total_macs / runtime.batch_latency_s,
            "peak_macs_per_second": self.peak_macs_per_second,
        }
