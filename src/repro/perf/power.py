"""Chip energy and power model.

The model is energy-centric: every activity of the runtime specification
(MAC cycles, programming passes, memory bits moved, digital ops) is priced in
joules per batch, then divided by the batch latency to obtain average power.
Always-on contributions (ring thermal tuning, phase-shifter trimming, SRAM
leakage, control logic) are added as static power.

Pricing energy rather than power is what reproduces the paper's observation
that IPS/W is independent of the core count (Section VI-A.1): a dual-core
chip finishes the batch sooner but spends the same energy on it, so its power
is proportionally higher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.config.chip import ChipConfig
from repro.electronics.accumulator import DigitalAccumulator
from repro.electronics.activation import ActivationUnit
from repro.electronics.adc import ADCBank
from repro.electronics.clocking import ClockDistribution
from repro.electronics.dac import ODACDriverBank
from repro.electronics.serdes import SerDesBank
from repro.electronics.tia import TIABank
from repro.errors import SimulationError
from repro.memory.hierarchy import MemorySystem
from repro.perf.laser_power import LaserPowerModel
from repro.scalesim.runtime import NetworkRuntime


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-batch energy itemised by component (J)."""

    components_j: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, value in self.components_j.items():
            if value < 0:
                raise SimulationError(f"energy for {name!r} must be >= 0, got {value}")

    @property
    def total_j(self) -> float:
        """Total energy per batch (J)."""
        return sum(self.components_j.values())

    def component(self, name: str) -> float:
        """Energy of one component (J); 0 if absent."""
        return self.components_j.get(name, 0.0)

    def fraction(self, name: str) -> float:
        """Fraction of the total energy attributed to one component."""
        total = self.total_j
        if total <= 0:
            return 0.0
        return self.component(name) / total

    def grouped(self) -> Dict[str, float]:
        """Coarse grouping used by the Fig. 8 power-breakdown benchmark."""
        groups = {
            "dram": ["dram"],
            "sram": ["sram", "sram_leakage"],
            "adc_tia": ["adc", "tia"],
            "odac_serdes_clock": ["odac", "serdes", "clocking"],
            "laser_photonics": ["laser", "thermal_tuning", "phase_shifters"],
            "digital": ["accumulator", "activation", "control"],
            "pcm_programming": ["pcm_programming"],
        }
        result: Dict[str, float] = {}
        for group, names in groups.items():
            result[group] = sum(self.component(name) for name in names)
        return result


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power itemised by component (W)."""

    components_w: Dict[str, float] = field(default_factory=dict)

    @property
    def total_w(self) -> float:
        """Total average chip power (W)."""
        return sum(self.components_w.values())

    def component(self, name: str) -> float:
        """Power of one component (W); 0 if absent."""
        return self.components_w.get(name, 0.0)

    def dominant_component(self) -> str:
        """Name of the component drawing the most power."""
        if not self.components_w:
            raise SimulationError("empty power breakdown")
        return max(self.components_w, key=self.components_w.get)

    def grouped(self) -> Dict[str, float]:
        """Coarse grouping matching :meth:`EnergyBreakdown.grouped`."""
        energy_like = EnergyBreakdown(dict(self.components_w))
        return energy_like.grouped()


class PowerModel:
    """Computes per-batch energy and average power for a runtime specification."""

    def __init__(self, config: ChipConfig) -> None:
        self.config = config
        technology = config.technology
        mac_clock = config.mac_clock_hz
        self.odac_bank = ODACDriverBank(config.rows, technology, mac_clock)
        self.adc_bank = ADCBank(config.columns, technology, mac_clock)
        self.tia_bank = TIABank(config.columns, technology, mac_clock)
        self.serdes_bank = SerDesBank(config.rows, config.columns, technology, mac_clock)
        self.clocking = ClockDistribution(config.rows, config.columns, technology, mac_clock)
        self.accumulator = DigitalAccumulator(config.columns, technology)
        self.activation = ActivationUnit(technology)
        self.memory = MemorySystem(config)
        self.laser_model = LaserPowerModel(config)

    # ------------------------------------------------------------------ energy
    def energy_breakdown(self, runtime: NetworkRuntime) -> EnergyBreakdown:
        """Itemised energy of one batch (J)."""
        config = self.config
        technology = config.technology
        cycles = runtime.total_compute_cycles
        compute_time = runtime.compute_time_s
        batch_latency = runtime.batch_latency_s

        components: Dict[str, float] = {}

        # -- electro-optical datapath (active only during compute cycles)
        components["odac"] = self.odac_bank.energy_for_cycles(cycles)
        components["adc"] = self.adc_bank.energy_for_cycles(cycles)
        components["tia"] = self.tia_bank.energy_for_cycles(cycles)
        components["serdes"] = self.serdes_bank.energy_for_cycles(cycles)
        components["clocking"] = self.clocking.energy_for_cycles(cycles)

        # -- laser (on while the array computes)
        laser_power_w = self.laser_model.electrical_power_w()
        components["laser"] = laser_power_w * compute_time

        # -- digital post-processing
        components["accumulator"] = self.accumulator.energy_for_ops(
            runtime.total_accumulator_ops
        )
        components["activation"] = self.activation.energy_for_ops(
            runtime.total_activation_ops
        )

        # -- memory traffic
        traffic = runtime.traffic_record
        components["sram"] = self.memory.sram_energy_for_traffic(traffic)
        components["dram"] = self.memory.dram_energy_for_traffic(traffic)

        # -- PCM programming
        components["pcm_programming"] = (
            runtime.total_programmed_cells * technology.pcm_programming_energy_j
        )

        # -- always-on contributions, for the whole batch duration; photonic
        #    thermal tuning is paid per core (both cores stay tuned).
        num_cores = config.num_cores
        components["thermal_tuning"] = (
            self.odac_bank.static_power_w * num_cores * batch_latency
        )
        components["phase_shifters"] = (
            config.array_size
            * technology.phase_shifter_power_w
            * num_cores
            * batch_latency
        )
        components["sram_leakage"] = self.memory.total_sram_leakage_w * batch_latency
        components["control"] = technology.control_logic_power_w * batch_latency

        return EnergyBreakdown(components)

    # ------------------------------------------------------------------ power
    def power_breakdown(self, runtime: NetworkRuntime) -> PowerBreakdown:
        """Itemised average power over one batch (W)."""
        energy = self.energy_breakdown(runtime)
        latency = runtime.batch_latency_s
        if latency <= 0:
            raise SimulationError("batch latency must be > 0 to compute power")
        return PowerBreakdown(
            {name: value / latency for name, value in energy.components_j.items()}
        )

    def total_power_w(self, runtime: NetworkRuntime) -> float:
        """Total average chip power over one batch (W)."""
        return self.power_breakdown(runtime).total_w

    def energy_per_inference_j(self, runtime: NetworkRuntime) -> float:
        """Average energy per inference (J)."""
        return self.energy_breakdown(runtime).total_j / runtime.batch_size
