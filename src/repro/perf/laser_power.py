"""Laser power solver.

The laser must be strong enough that, after the intrinsic 1/M distribution
across the column outputs and all excess losses of the optical path, each
balanced photodiode still receives enough power to resolve the target
precision at the MAC rate.  Because the excess loss grows linearly in dB with
the array dimensions, the required laser power grows *exponentially* with
array size — the effect that ultimately caps the energy-efficient array size
in Fig. 6 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.chip import ChipConfig
from repro.config.technology import TechnologyConfig
from repro.errors import DeviceModelError
from repro.photonics.laser import LaserSource
from repro.photonics.loss_budget import CrossbarLossBudget


@dataclass(frozen=True)
class LaserPowerResult:
    """Output of the laser power solver for one design point."""

    required_optical_power_w: float
    clamped_optical_power_w: float
    electrical_power_w: float
    receiver_power_w: float
    excess_loss_db: float
    total_loss_db: float
    feasible: bool

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "required_optical_power_w": self.required_optical_power_w,
            "clamped_optical_power_w": self.clamped_optical_power_w,
            "electrical_power_w": self.electrical_power_w,
            "receiver_power_w": self.receiver_power_w,
            "excess_loss_db": self.excess_loss_db,
            "total_loss_db": self.total_loss_db,
            "feasible": self.feasible,
        }


class LaserPowerModel:
    """Computes the laser power needed by one crossbar core.

    Parameters
    ----------
    config:
        The chip design point (array size, technology constants).
    worst_case:
        Budget the longest optical path (default) or the average path.
    """

    def __init__(self, config: ChipConfig, worst_case: bool = True) -> None:
        self.config = config
        self.technology: TechnologyConfig = config.technology
        self.budget = CrossbarLossBudget(
            rows=config.rows,
            columns=config.columns,
            technology=config.technology,
            worst_case=worst_case,
        )
        self.laser = LaserSource(
            wall_plug_efficiency=self.technology.laser_wall_plug_efficiency,
            wavelength_m=self.technology.laser_wavelength_m,
            max_output_power_w=self.technology.laser_max_output_power_w,
            min_output_power_w=self.technology.laser_min_output_power_w,
        )

    # ------------------------------------------------------------------ solve
    def required_optical_power_w(self) -> float:
        """Laser optical output power needed to hit the receiver sensitivity (W).

        The full-scale optical power reaching one column photodiode is
        ``P_laser * T_total`` where ``T_total`` combines the intrinsic 1/M
        distribution loss and all excess losses; inverting gives the required
        laser power.
        """
        sensitivity = self.technology.receiver_sensitivity_w
        transmission = self.budget.total_transmission
        if transmission <= 0:
            raise DeviceModelError("optical transmission must be > 0")
        return sensitivity / transmission

    def solve(self) -> LaserPowerResult:
        """Solve the link budget and return the laser power requirement.

        If the required power exceeds the laser's maximum the design point is
        flagged infeasible and the power is clamped to the maximum (so sweeps
        can still chart the trend instead of crashing).
        """
        required = self.required_optical_power_w()
        feasible = required <= self.laser.max_output_power_w
        clamped = min(max(required, self.laser.min_output_power_w), self.laser.max_output_power_w)
        electrical = clamped / self.laser.wall_plug_efficiency
        receiver_power = clamped * self.budget.total_transmission
        return LaserPowerResult(
            required_optical_power_w=required,
            clamped_optical_power_w=clamped,
            electrical_power_w=electrical,
            receiver_power_w=receiver_power,
            excess_loss_db=self.budget.excess_loss_db,
            total_loss_db=self.budget.total_loss_db,
            feasible=feasible,
        )

    def electrical_power_w(self) -> float:
        """Electrical (wall-plug) laser power of the design point (W)."""
        return self.solve().electrical_power_w
