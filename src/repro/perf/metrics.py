"""Headline performance metrics: IPS, IPS/W, power, area, TOPS, TOPS/W.

:func:`evaluate_runtime` bundles the power and area models into the single
:class:`PerformanceMetrics` record that the sweeps, optimizer, benchmarks and
the Table I comparison all consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config.chip import ChipConfig
from repro.errors import SimulationError
from repro.perf.area import AreaBreakdown, AreaModel
from repro.perf.laser_power import LaserPowerResult
from repro.perf.power import EnergyBreakdown, PowerBreakdown, PowerModel
from repro.scalesim.runtime import NetworkRuntime


@dataclass(frozen=True)
class PerformanceMetrics:
    """Evaluated metrics of one (network, chip-configuration) pair."""

    network_name: str
    config: ChipConfig
    inferences_per_second: float
    power_w: float
    area_mm2: float
    energy_per_inference_j: float
    mac_utilization: float
    effective_tops: float
    laser: LaserPowerResult
    energy_breakdown: EnergyBreakdown
    power_breakdown: PowerBreakdown
    area_breakdown: AreaBreakdown

    def __post_init__(self) -> None:
        if self.inferences_per_second <= 0:
            raise SimulationError("IPS must be > 0")
        if self.power_w <= 0:
            raise SimulationError("power must be > 0")
        if self.area_mm2 <= 0:
            raise SimulationError("area must be > 0")

    # ------------------------------------------------------------------ derived
    @property
    def ips(self) -> float:
        """Alias for :attr:`inferences_per_second`."""
        return self.inferences_per_second

    @property
    def ips_per_watt(self) -> float:
        """Inferences per second per watt."""
        return self.inferences_per_second / self.power_w

    @property
    def effective_tops_per_watt(self) -> float:
        """Achieved TOPS per watt (2 ops per MAC, real MACs only)."""
        return self.effective_tops / self.power_w

    @property
    def ips_per_mm2(self) -> float:
        """Inferences per second per mm² of chip area."""
        return self.inferences_per_second / self.area_mm2

    @property
    def feasible(self) -> bool:
        """False when the optical link budget cannot be closed."""
        return self.laser.feasible

    # ------------------------------------------------------------------ report
    def summary(self) -> Dict[str, float]:
        """Flat summary used in reports, CSV export and tests."""
        return {
            "network": self.network_name,
            "rows": self.config.rows,
            "columns": self.config.columns,
            "num_cores": self.config.num_cores,
            "batch_size": self.config.batch_size,
            "input_sram_mb": self.config.sram.input_mb,
            "ips": self.inferences_per_second,
            "power_w": self.power_w,
            "ips_per_watt": self.ips_per_watt,
            "area_mm2": self.area_mm2,
            "energy_per_inference_j": self.energy_per_inference_j,
            "mac_utilization": self.mac_utilization,
            "effective_tops": self.effective_tops,
            "effective_tops_per_watt": self.effective_tops_per_watt,
            "laser_electrical_w": self.laser.electrical_power_w,
            "feasible": self.feasible,
        }


def evaluate_runtime(runtime: NetworkRuntime, config: Optional[ChipConfig] = None) -> PerformanceMetrics:
    """Evaluate power, area and headline metrics for a runtime specification.

    Parameters
    ----------
    runtime:
        Output of the dataflow simulator.
    config:
        Defaults to the configuration stored in the runtime; passing a
        different configuration is an error guard for mismatched evaluations.
    """
    config = config or runtime.config
    if config is not runtime.config and config != runtime.config:
        raise SimulationError(
            "the configuration passed to evaluate_runtime differs from the one the "
            "runtime was simulated with"
        )

    power_model = PowerModel(config)
    area_model = AreaModel(config)

    energy = power_model.energy_breakdown(runtime)
    power = power_model.power_breakdown(runtime)
    area = area_model.breakdown()

    ips = runtime.inferences_per_second
    total_power = power.total_w
    effective_tops = 2.0 * runtime.total_macs / runtime.batch_latency_s / 1e12

    return PerformanceMetrics(
        network_name=runtime.network_name,
        config=config,
        inferences_per_second=ips,
        power_w=total_power,
        area_mm2=area.total_mm2,
        energy_per_inference_j=energy.total_j / runtime.batch_size,
        mac_utilization=runtime.mac_utilization,
        effective_tops=effective_tops,
        laser=power_model.laser_model.solve(),
        energy_breakdown=energy,
        power_breakdown=power,
        area_breakdown=area,
    )
