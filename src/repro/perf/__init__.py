"""Step 2 of the paper's framework: high-level performance metrics.

Given the runtime specification produced by :mod:`repro.scalesim` (cycles,
programming passes, memory traffic) and the device constants in
:class:`~repro.config.TechnologyConfig`, this package computes

* the laser power required to close the optical link budget
  (:mod:`repro.perf.laser_power`),
* per-inference energy and average chip power, itemised by component
  (:mod:`repro.perf.power`),
* chip area, itemised by component (:mod:`repro.perf.area`),
* the headline metrics IPS, IPS/W, TOPS and TOPS/W
  (:mod:`repro.perf.metrics`).
"""

from repro.perf.area import AreaBreakdown, AreaModel
from repro.perf.laser_power import LaserPowerModel, LaserPowerResult
from repro.perf.metrics import PerformanceMetrics, evaluate_runtime
from repro.perf.power import EnergyBreakdown, PowerBreakdown, PowerModel
from repro.perf.roofline import RooflineModel, RooflinePoint

__all__ = [
    "AreaBreakdown",
    "AreaModel",
    "EnergyBreakdown",
    "LaserPowerModel",
    "LaserPowerResult",
    "PerformanceMetrics",
    "PowerBreakdown",
    "PowerModel",
    "RooflineModel",
    "RooflinePoint",
    "evaluate_runtime",
]
