"""Chip area model.

Area is rolled up from the SRAM macros, the photonic crossbar cores (unit
cells, splitter tree, transmitters), the per-column/row mixed-signal
electronics (ADCs, TIAs, ODAC drivers, SerDes, clocking), and the digital
blocks (accumulator, activation, control).  Photonic and per-lane electronic
area is multiplied by the number of cores — the price of the dual-core
programming-hiding scheme — while the SRAM blocks and digital control are
shared between cores (paper Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.config.chip import ChipConfig
from repro.electronics.accumulator import DigitalAccumulator
from repro.electronics.activation import ActivationUnit
from repro.electronics.adc import ADCBank
from repro.electronics.clocking import ClockDistribution
from repro.electronics.dac import ODACDriverBank
from repro.electronics.serdes import SerDesBank
from repro.electronics.tia import TIABank
from repro.errors import SimulationError
from repro.memory.hierarchy import MemorySystem


@dataclass(frozen=True)
class AreaBreakdown:
    """Chip area itemised by component (mm²)."""

    components_mm2: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, value in self.components_mm2.items():
            if value < 0:
                raise SimulationError(f"area for {name!r} must be >= 0, got {value}")

    @property
    def total_mm2(self) -> float:
        """Total chip area (mm²)."""
        return sum(self.components_mm2.values())

    def component(self, name: str) -> float:
        """Area of one component (mm²); 0 if absent."""
        return self.components_mm2.get(name, 0.0)

    def fraction(self, name: str) -> float:
        """Fraction of the total area taken by one component."""
        total = self.total_mm2
        if total <= 0:
            return 0.0
        return self.component(name) / total

    def dominant_component(self) -> str:
        """Name of the largest component."""
        if not self.components_mm2:
            raise SimulationError("empty area breakdown")
        return max(self.components_mm2, key=self.components_mm2.get)

    def grouped(self) -> Dict[str, float]:
        """Coarse grouping used by the Fig. 8 area-breakdown benchmark."""
        groups = {
            "sram": ["sram"],
            "photonics": ["photonic_array", "splitter_tree", "transmitters"],
            "adc_tia": ["adc", "tia"],
            "odac_serdes_clock": ["odac_drivers", "serdes", "clocking"],
            "digital": ["accumulator", "activation", "control"],
        }
        result: Dict[str, float] = {}
        for group, names in groups.items():
            result[group] = sum(self.component(name) for name in names)
        return result


class AreaModel:
    """Computes the chip area of a design point."""

    def __init__(self, config: ChipConfig) -> None:
        self.config = config
        technology = config.technology
        mac_clock = config.mac_clock_hz
        self.memory = MemorySystem(config)
        self.odac_bank = ODACDriverBank(config.rows, technology, mac_clock)
        self.adc_bank = ADCBank(config.columns, technology, mac_clock)
        self.tia_bank = TIABank(config.columns, technology, mac_clock)
        self.serdes_bank = SerDesBank(config.rows, config.columns, technology, mac_clock)
        self.clocking = ClockDistribution(config.rows, config.columns, technology, mac_clock)
        self.accumulator = DigitalAccumulator(config.columns, technology)
        self.activation = ActivationUnit(technology)

    # ------------------------------------------------------------------ pieces
    @property
    def photonic_array_area_mm2(self) -> float:
        """Area of the PCM unit-cell array of one core (mm²)."""
        technology = self.config.technology
        return self.config.array_size * (
            technology.unit_cell_area_mm2 + technology.phase_shifter_area_mm2
        )

    @property
    def splitter_tree_area_mm2(self) -> float:
        """Area of the input splitter tree of one core (mm²).

        Approximated as one unit-cell pitch worth of routing per row.
        """
        technology = self.config.technology
        pitch_mm = technology.unit_cell_pitch_m * 1e3
        return self.config.rows * pitch_mm * pitch_mm

    # ------------------------------------------------------------------ roll-up
    def breakdown(self) -> AreaBreakdown:
        """Itemised chip area (mm²)."""
        cores = self.config.num_cores
        components: Dict[str, float] = {
            "sram": self.memory.total_sram_area_mm2,
            "photonic_array": cores * self.photonic_array_area_mm2,
            "splitter_tree": cores * self.splitter_tree_area_mm2,
            "transmitters": 0.0,  # Transmitter ring area is in odac_drivers.
            "adc": cores * self.adc_bank.area_mm2,
            "tia": cores * self.tia_bank.area_mm2,
            "odac_drivers": cores * self.odac_bank.area_mm2,
            "serdes": cores * self.serdes_bank.area_mm2,
            "clocking": cores * self.clocking.area_mm2,
            "accumulator": cores * self.accumulator.area_mm2,
            "activation": self.activation.area_mm2,
            "control": self.config.technology.control_logic_area_mm2,
        }
        return AreaBreakdown(components)

    def total_area_mm2(self) -> float:
        """Total chip area (mm²)."""
        return self.breakdown().total_mm2

    def exceeds(self, limit_mm2: float) -> bool:
        """True when the design point exceeds an area cap (e.g. 100 mm² ~ 1 cm²)."""
        if limit_mm2 <= 0:
            raise SimulationError(f"area limit must be > 0, got {limit_mm2}")
        return self.total_area_mm2() > limit_mm2
