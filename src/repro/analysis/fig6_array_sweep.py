"""Fig. 6 — IPS/W as a function of crossbar rows and columns.

The paper sweeps the array dimensions with the other default parameters
fixed (batch 32, dual core, 26.3/0.75/0.75/0.75 MB SRAM) and observes a peak
IPS/W at 128–256 rows and 64–128 columns.  The generator returns one row per
(rows, columns) grid point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config.chip import ChipConfig
from repro.config.presets import default_sweep_chip
from repro.core.simulation import SimulationFramework
from repro.core.sweep import sweep_array_sizes
from repro.nn.network import Network
from repro.nn.resnet import build_resnet50

#: The grid the paper's Fig. 6 spans.
DEFAULT_ROWS = (16, 32, 64, 128, 256, 512)
DEFAULT_COLUMNS = (16, 32, 64, 128, 256, 512)


def generate_fig6_array_sweep(
    network: Optional[Network] = None,
    base_config: Optional[ChipConfig] = None,
    rows_values: Sequence[int] = DEFAULT_ROWS,
    columns_values: Sequence[int] = DEFAULT_COLUMNS,
    framework: Optional[SimulationFramework] = None,
) -> List[Dict[str, float]]:
    """Generate the Fig. 6 surface: IPS/W (and IPS) per (rows, columns) point."""
    network = network or build_resnet50()
    base_config = base_config or default_sweep_chip()
    results = sweep_array_sizes(
        network, base_config, rows_values, columns_values, framework=framework
    )
    rows: List[Dict[str, float]] = []
    for result in results:
        row = result.row()
        rows.append(
            {
                "rows": row["rows"],
                "columns": row["columns"],
                "ips": row["ips"],
                "ips_per_watt": row["ips_per_watt"],
                "power_w": row["power_w"],
                "feasible": row["feasible"],
            }
        )
    return rows


def peak_point(rows: List[Dict[str, float]]) -> Dict[str, float]:
    """The grid point with the highest IPS/W among feasible points."""
    feasible = [row for row in rows if row.get("feasible", True)]
    if not feasible:
        feasible = rows
    return max(feasible, key=lambda row: row["ips_per_watt"])
