"""Runtime concurrency sanitizer: lock-order tracking and deadlock detection.

The static RPR1xx rules (:mod:`repro.analysis.lint`) catch what is visible in
the source; this module catches what only shows up at runtime.  When active,
the lock factory in :mod:`repro.concurrency` hands out :class:`SanitizedLock`
/ :class:`SanitizedRLock` / :class:`SanitizedCondition` wrappers instead of
the stdlib primitives.  Every wrapper records, per thread, which locks were
already held at each acquisition and feeds the ``held -> acquired`` pairs into
one process-global *lock-order graph*:

* an edge ``A -> B`` means "some thread acquired ``B`` while holding ``A``";
  the acquiring stack is kept for the first observation of each edge;
* a cycle in that graph (``A -> B`` somewhere, ``B -> A`` somewhere else) is a
  potential deadlock even if the schedules never actually collided — the
  report includes both acquisition stacks so each site is attributable;
* releasing a lock after more than ``held_threshold_s`` seconds records a
  held-too-long warning (a latency smell, not an error).

Activation is either environmental (``REPRO_SANITIZE=1``, honoured by the
pytest fixture in ``tests/conftest.py`` so the ``serving`` and ``chaos`` lanes
run fully sanitized) or programmatic (:func:`enable` / :func:`disable`).
Wrappers are handed out at lock *creation* time, so enable the sanitizer
before constructing the objects under test.

Graph nodes are lock *names* (``"ClassName._attr"``), not instances: two
instances of the same class share a node, because an A->B / B->A inversion
across two instances of one lock site is the classic ABBA deadlock.
Re-entrant re-acquisition of the *same instance* is recognised and never adds
an edge.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro import concurrency
from repro.errors import ConcurrencyError

__all__ = [
    "SanitizedCondition",
    "SanitizedLock",
    "SanitizedRLock",
    "assert_clean",
    "cycle_reports",
    "disable",
    "enable",
    "held_too_long_reports",
    "is_enabled",
    "report",
    "reset",
]

DEFAULT_HELD_THRESHOLD_S = 1.0

#: Frames of the sanitizer itself to drop from recorded stacks.
_INTERNAL_FRAMES = 2


class _Held:
    """One entry on a thread's held-lock stack."""

    __slots__ = ("name", "obj_id", "since")

    def __init__(self, name: str, obj_id: int, since: float) -> None:
        self.name = name
        self.obj_id = obj_id
        self.since = since


class _Graph:
    """The process-global lock-order graph (guarded by a plain stdlib lock)."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.enabled = False
        self.held_threshold_s = DEFAULT_HELD_THRESHOLD_S
        # (from_name, to_name) -> {"stack": str, "thread": str, "count": int}
        self.edges: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self.adjacency: Dict[str, set] = {}
        self.cycles: List[Dict[str, Any]] = []
        self._cycle_keys: set = set()
        self.held_too_long: List[Dict[str, Any]] = []
        self.acquisitions = 0

    # -- recording ---------------------------------------------------------

    def add_edge(self, from_name: str, to_name: str) -> None:
        stack = _capture_stack()
        thread_name = threading.current_thread().name
        with self.lock:
            info = self.edges.get((from_name, to_name))
            if info is None:
                self.edges[(from_name, to_name)] = {
                    "stack": stack,
                    "thread": thread_name,
                    "count": 1,
                }
                self.adjacency.setdefault(from_name, set()).add(to_name)
                self._check_cycle_locked(from_name, to_name)
            else:
                info["count"] += 1

    def note_held_too_long(self, name: str, duration_s: float) -> None:
        entry = {
            "lock": name,
            "duration_s": duration_s,
            "threshold_s": self.held_threshold_s,
            "thread": threading.current_thread().name,
            "stack": _capture_stack(),
        }
        with self.lock:
            self.held_too_long.append(entry)

    # -- cycle detection ---------------------------------------------------

    def _check_cycle_locked(self, from_name: str, to_name: str) -> None:
        """After adding ``from_name -> to_name``, look for a path back.

        A path ``to_name -> ... -> from_name`` closes a cycle.  The degenerate
        ``from_name == to_name`` self-edge (two instances of one lock site
        nested inside each other) is itself the two-instance ABBA hazard.
        """

        path = (
            [to_name]
            if from_name == to_name
            else self._find_path_locked(to_name, from_name)
        )
        if path is None:
            return
        # ``path`` ends at ``from_name`` (and for a self-edge *is* just the
        # single node), so drop the duplicate before closing the ring.
        cycle_nodes = [from_name] + path[:-1]
        edge_pairs = list(zip(cycle_nodes, cycle_nodes[1:] + [cycle_nodes[0]]))
        key: FrozenSet[Tuple[str, str]] = frozenset(edge_pairs)
        if key in self._cycle_keys:
            return
        self._cycle_keys.add(key)
        edges = []
        for pair in edge_pairs:
            info = self.edges.get(pair, {})
            edges.append(
                {
                    "from": pair[0],
                    "to": pair[1],
                    "thread": info.get("thread", "?"),
                    "stack": info.get("stack", ""),
                }
            )
        message_lines = [
            "potential deadlock: lock-order cycle "
            + " -> ".join(cycle_nodes + [cycle_nodes[0]])
        ]
        for edge in edges:
            message_lines.append(
                f"  edge {edge['from']} -> {edge['to']} "
                f"(first seen on thread {edge['thread']}):"
            )
            message_lines.append(_indent(edge["stack"], "    "))
        self.cycles.append(
            {
                "locks": cycle_nodes,
                "edges": edges,
                "message": "\n".join(message_lines),
            }
        )

    def _find_path_locked(self, start: str, goal: str) -> Optional[List[str]]:
        """Nodes from ``start`` to ``goal`` (inclusive) via edges, else None."""

        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in self.adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None


_GRAPH = _Graph()
_TLS = threading.local()


def _capture_stack() -> str:
    frames = traceback.format_stack()
    return "".join(frames[:-_INTERNAL_FRAMES]).rstrip()


def _indent(text: str, prefix: str) -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def _held_stack() -> List[_Held]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def _before_acquire(lock: "_SanitizedBase") -> None:
    """Record ``held -> lock`` edges (skipped for re-entrant re-acquisition)."""

    stack = _held_stack()
    for held in stack:
        if held.obj_id == id(lock):
            return
    for held in stack:
        _GRAPH.add_edge(held.name, lock.name)


def _after_acquire(lock: "_SanitizedBase") -> None:
    with _GRAPH.lock:
        _GRAPH.acquisitions += 1
    _held_stack().append(_Held(lock.name, id(lock), time.monotonic()))


def _on_release(lock: "_SanitizedBase") -> None:
    stack = _held_stack()
    for index in range(len(stack) - 1, -1, -1):
        if stack[index].obj_id == id(lock):
            held = stack.pop(index)
            duration = time.monotonic() - held.since
            if duration > _GRAPH.held_threshold_s:
                _GRAPH.note_held_too_long(lock.name, duration)
            return


class _SanitizedBase:
    """Shared acquire/release bookkeeping for the wrapper types."""

    _inner: Any

    def __init__(self, name: str) -> None:
        self.name = str(name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _before_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _after_acquire(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        _on_release(self)

    def __enter__(self) -> "_SanitizedBase":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class SanitizedLock(_SanitizedBase):
    """Instrumented drop-in for ``threading.Lock()``."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._inner = threading.Lock()

    def locked(self) -> bool:
        return self._inner.locked()


class SanitizedRLock(_SanitizedBase):
    """Instrumented drop-in for ``threading.RLock()``.

    Re-entrant acquisitions push a second held entry (popped on the matching
    release) but never add lock-order edges — :func:`_before_acquire` skips
    instances already on the thread's held stack.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._inner = threading.RLock()


class SanitizedCondition(_SanitizedBase):
    """Instrumented drop-in for ``threading.Condition()``.

    ``wait()`` releases the underlying mutex while blocked, so the held-stack
    bookkeeping mirrors that: the entry is popped before waiting and pushed
    again once the mutex is re-acquired on wake-up.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._inner = threading.Condition()

    def wait(self, timeout: Optional[float] = None) -> bool:
        _on_release(self)
        try:
            return self._inner.wait(timeout)
        finally:
            _before_acquire(self)
            _after_acquire(self)

    def wait_for(self, predicate, timeout: Optional[float] = None):
        _on_release(self)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            _before_acquire(self)
            _after_acquire(self)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


# -- public control surface ------------------------------------------------


def enable(held_threshold_s: Optional[float] = None) -> None:
    """Start handing out instrumented locks from :mod:`repro.concurrency`.

    Only affects locks created *after* this call; existing plain locks keep
    running uninstrumented.
    """

    with _GRAPH.lock:
        _GRAPH.enabled = True
        if held_threshold_s is not None:
            _GRAPH.held_threshold_s = float(held_threshold_s)
    concurrency._ACTIVE = True


def disable() -> None:
    """Stop handing out instrumented locks (``REPRO_SANITIZE`` still wins)."""

    with _GRAPH.lock:
        _GRAPH.enabled = False
        _GRAPH.held_threshold_s = DEFAULT_HELD_THRESHOLD_S
    concurrency._ACTIVE = False


def is_enabled() -> bool:
    """True when new locks are being created instrumented."""

    return concurrency.sanitize_active()


def reset() -> None:
    """Clear the lock-order graph and all recorded reports."""

    with _GRAPH.lock:
        _GRAPH.edges.clear()
        _GRAPH.adjacency.clear()
        _GRAPH.cycles.clear()
        _GRAPH._cycle_keys.clear()
        _GRAPH.held_too_long.clear()
        _GRAPH.acquisitions = 0


def cycle_reports() -> List[Dict[str, Any]]:
    """All potential-deadlock reports recorded so far (oldest first)."""

    with _GRAPH.lock:
        return list(_GRAPH.cycles)


def held_too_long_reports() -> List[Dict[str, Any]]:
    """All held-too-long warnings recorded so far (oldest first)."""

    with _GRAPH.lock:
        return list(_GRAPH.held_too_long)


def report() -> Dict[str, Any]:
    """A JSON-friendly snapshot of everything the sanitizer observed."""

    with _GRAPH.lock:
        return {
            "enabled": is_enabled(),
            "acquisitions": _GRAPH.acquisitions,
            "held_threshold_s": _GRAPH.held_threshold_s,
            "edges": [
                {"from": pair[0], "to": pair[1], **info}
                for pair, info in sorted(_GRAPH.edges.items())
            ],
            "cycles": list(_GRAPH.cycles),
            "held_too_long": list(_GRAPH.held_too_long),
        }


def assert_clean() -> None:
    """Raise :class:`ConcurrencyError` if any lock-order cycle was recorded."""

    cycles = cycle_reports()
    if cycles:
        raise ConcurrencyError(
            f"{len(cycles)} potential deadlock(s) detected:\n"
            + "\n\n".join(cycle["message"] for cycle in cycles)
        )
