"""Project-specific static analysis (``python -m repro lint``).

Importing this package registers the RPR1xx rules; the public surface is the
framework's registry/runner/reporters plus the rule classes themselves.
"""

from repro.analysis.lint import rules as rules
from repro.analysis.lint.framework import (
    PARSE_ERROR_CODE,
    RULE_REGISTRY,
    Finding,
    LintReport,
    Rule,
    format_json,
    format_text,
    iter_python_files,
    lint_file,
    lint_source,
    register_rule,
    rule_catalogue,
    run_lint,
)

__all__ = [
    "PARSE_ERROR_CODE",
    "RULE_REGISTRY",
    "Finding",
    "LintReport",
    "Rule",
    "format_json",
    "format_text",
    "iter_python_files",
    "lint_file",
    "lint_source",
    "register_rule",
    "rule_catalogue",
    "rules",
    "run_lint",
]
