"""The lint framework: rule registry, file walker, suppressions, reporters.

Rules are small :class:`Rule` subclasses registered under a stable ``RPR1xx``
code via :func:`register_rule`.  Each rule receives a parsed ``ast`` tree and
yields :class:`Finding` records; the framework handles path scoping,
``# repro: noqa[CODE]`` suppressions, ``--select`` filtering and the text /
JSON output formats.  The rules themselves live in
:mod:`repro.analysis.lint.rules`.

Suppression syntax (checked on the finding's source line)::

    something_flagged()  # repro: noqa[RPR103]
    something_flagged()  # repro: noqa[RPR103,RPR105]
    something_flagged()  # repro: noqa

A bare ``noqa`` suppresses every code on that line; the bracketed form only
the listed codes.  Suppressed findings are kept (with ``suppressed=True``) so
reporters can show them and tests can assert a suppression is still needed.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.errors import ConfigurationError

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "RULE_REGISTRY",
    "format_json",
    "format_text",
    "iter_python_files",
    "lint_file",
    "lint_source",
    "register_rule",
    "rule_catalogue",
    "run_lint",
]

#: Matches ``# repro: noqa`` and ``# repro: noqa[RPR101,RPR105]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")

#: Pseudo-code used for files the parser rejects.
PARSE_ERROR_CODE = "RPR100"


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule fired at ``path:line:col``."""

    path: str
    line: int
    col: int
    code: str
    message: str
    suppressed: bool = False

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def unsuppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for finding in self.unsuppressed:
            tally[finding.code] = tally.get(finding.code, 0) + 1
        return dict(sorted(tally.items()))


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`code` (stable ``RPR1xx`` identifier), :attr:`name`
    (short kebab-case summary), :attr:`rationale` (one sentence shown in the
    catalogue) and optionally :attr:`scope` — directory names the rule is
    restricted to (matched against the file's path parts; empty = all files).
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    scope: Tuple[str, ...] = ()

    def applies_to(self, path: Path) -> bool:
        if not self.scope:
            return True
        parts = set(path.parts)
        return any(directory in parts for directory in self.scope)

    def check(
        self, tree: ast.AST, source_lines: Sequence[str], path: Path
    ) -> Iterator[Tuple[int, int, str]]:
        """Yield ``(line, col, message)`` for every violation in ``tree``."""

        raise NotImplementedError


RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to :data:`RULE_REGISTRY` by code."""

    if not cls.code:
        raise ConfigurationError(f"rule {cls.__name__} has no code")
    if cls.code in RULE_REGISTRY:
        raise ConfigurationError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def rule_catalogue() -> List[Dict[str, str]]:
    """The registered rules as ``{code, name, rationale, scope}`` rows."""

    return [
        {
            "code": code,
            "name": cls.name,
            "rationale": cls.rationale,
            "scope": ", ".join(cls.scope) if cls.scope else "all files",
        }
        for code, cls in sorted(RULE_REGISTRY.items())
    ]


def _resolve_select(select: Optional[Iterable[str]]) -> List[Type[Rule]]:
    if select is None:
        return [RULE_REGISTRY[code] for code in sorted(RULE_REGISTRY)]
    rules = []
    for code in select:
        code = code.strip().upper()
        if code not in RULE_REGISTRY:
            known = ", ".join(sorted(RULE_REGISTRY))
            raise ConfigurationError(f"unknown rule code {code!r} (known: {known})")
        rules.append(RULE_REGISTRY[code])
    return rules


def _noqa_codes(line_text: str) -> Optional[set]:
    """Codes suppressed on this line: ``set()`` means "all", None means none."""

    match = _NOQA_RE.search(line_text)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return set()
    return {code.strip().upper() for code in codes.split(",") if code.strip()}


def _is_suppressed(code: str, line: int, source_lines: Sequence[str]) -> bool:
    if not 1 <= line <= len(source_lines):
        return False
    codes = _noqa_codes(source_lines[line - 1])
    if codes is None:
        return False
    return not codes or code in codes


def lint_source(
    source: str,
    path: "Path | str",
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint ``source`` as if it lived at ``path`` (the unit used by tests)."""

    path = Path(path)
    display = str(path)
    source_lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                path=display,
                line=int(error.lineno or 1),
                col=int(error.offset or 0),
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {error.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule_cls in _resolve_select(select):
        rule = rule_cls()
        if not rule.applies_to(path):
            continue
        for line, col, message in rule.check(tree, source_lines, path):
            findings.append(
                Finding(
                    path=display,
                    line=line,
                    col=col,
                    code=rule.code,
                    message=message,
                    suppressed=_is_suppressed(rule.code, line, source_lines),
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_file(path: Path, select: Optional[Iterable[str]] = None) -> List[Finding]:
    return lint_source(path.read_text(encoding="utf-8"), path, select=select)


def iter_python_files(paths: Iterable["Path | str"]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""

    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            yield entry
        else:
            raise ConfigurationError(f"not a python file or directory: {entry}")


def run_lint(
    paths: Iterable["Path | str"],
    select: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint every python file under ``paths`` and collect one report."""

    report = LintReport()
    for path in iter_python_files(paths):
        report.files_scanned += 1
        report.findings.extend(lint_file(path, select=select))
    return report


def format_text(report: LintReport, show_suppressed: bool = False) -> str:
    """Human-readable report: one ``path:line:col CODE message`` per finding."""

    lines = []
    for finding in report.unsuppressed:
        lines.append(f"{finding.location()} {finding.code} {finding.message}")
    if show_suppressed:
        for finding in report.suppressed:
            lines.append(
                f"{finding.location()} {finding.code} {finding.message} [suppressed]"
            )
    counts = report.counts()
    summary = (
        "clean: no unsuppressed findings"
        if not counts
        else "findings: " + ", ".join(f"{code}={n}" for code, n in counts.items())
    )
    lines.append(
        f"{report.files_scanned} file(s) scanned, "
        f"{len(report.unsuppressed)} finding(s), "
        f"{len(report.suppressed)} suppressed — {summary}"
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable report (stable schema, ``version`` bumped on change)."""

    payload = {
        "version": 1,
        "files_scanned": report.files_scanned,
        "counts": report.counts(),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "message": finding.message,
                "suppressed": finding.suppressed,
            }
            for finding in report.findings
        ],
        "rules": rule_catalogue(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
