"""The project-specific lint rules (RPR101–RPR106).

Each rule encodes an invariant this reproduction actually depends on —
determinism of the datapath, monotonic timing, lock discipline in the serving
stack — rather than general style.  See ``docs/static-analysis.md`` for the
catalogue with rationale and the suppression policy.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.framework import Rule, register_rule

__all__ = [
    "BlockingCallUnderLockRule",
    "BroadExceptSwallowRule",
    "ThreadSharedMutationRule",
    "UnnamedThreadRule",
    "UnseededRngRule",
    "WallClockDurationRule",
]

#: Directories that hold the deterministic numeric datapath.
DATAPATH_DIRS = ("crossbar", "core", "nn", "electronics", "photonics")

#: ``numpy.random`` attributes that are *not* the stateful module-level RNG.
_NUMPY_RANDOM_SAFE = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # explicit instance construction, takes a seed
}

#: ``random`` module functions that draw from the hidden global RNG.
_RANDOM_GLOBAL_FNS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gammavariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}

#: Method names that mutate common containers in place (for RPR106).
_MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}


def _collect_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted import path they refer to.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import sleep`` -> ``{"sleep": "time.sleep"}``.
    """

    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""

    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolve_call(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """The fully-qualified dotted path of ``node``'s callee, if resolvable."""

    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    root = aliases.get(head, head)
    return f"{root}.{rest}" if rest else root


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""

    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lockish_name(name: Optional[str]) -> bool:
    """Heuristic: attribute names that denote a mutex or condition variable."""

    if not name:
        return False
    lowered = name.lower()
    if "clock" in lowered:
        return False
    return "lock" in lowered or "cond" in lowered or "mutex" in lowered


@register_rule
class UnseededRngRule(Rule):
    """RPR101: the datapath's determinism contract forbids unseeded RNGs."""

    code = "RPR101"
    name = "unseeded-rng-in-datapath"
    rationale = (
        "Bitwise-equivalence tests rely on every noise source being derived "
        "from an explicit seed; a module-level or unseeded RNG silently "
        "breaks reproducibility."
    )
    scope = DATAPATH_DIRS

    def check(
        self, tree: ast.AST, source_lines: Sequence[str], path: Path
    ) -> Iterator[Tuple[int, int, str]]:
        aliases = _collect_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            full = _resolve_call(node, aliases)
            if full is None:
                continue
            if full == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "np.random.default_rng() without a seed in a datapath "
                        "module; pass an explicit seed or SeedSequence",
                    )
            elif full.startswith("numpy.random."):
                tail = full.rsplit(".", 1)[1]
                if tail not in _NUMPY_RANDOM_SAFE:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"module-level np.random.{tail}() uses the hidden "
                        "global RNG; use a seeded Generator instead",
                    )
            elif full == "random.Random":
                if not node.args and not node.keywords:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "random.Random() without a seed in a datapath module",
                    )
            elif full.startswith("random."):
                tail = full.rsplit(".", 1)[1]
                if tail in _RANDOM_GLOBAL_FNS:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"random.{tail}() uses the hidden global RNG; use a "
                        "seeded random.Random instance instead",
                    )


@register_rule
class WallClockDurationRule(Rule):
    """RPR102: durations must come from a monotonic clock."""

    code = "RPR102"
    name = "wall-clock-for-durations"
    rationale = (
        "time.time() jumps on NTP adjustment; latency and timeout math in "
        "the serving/core layers must use perf_counter or monotonic."
    )
    scope = ("serve", "core")

    def check(
        self, tree: ast.AST, source_lines: Sequence[str], path: Path
    ) -> Iterator[Tuple[int, int, str]]:
        aliases = _collect_aliases(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _resolve_call(node, aliases) == "time.time":
                yield (
                    node.lineno,
                    node.col_offset,
                    "time.time() in a timing-sensitive module; use "
                    "time.perf_counter()/time.monotonic() for durations "
                    "(suppress if wall-clock timestamps are genuinely needed)",
                )


class _WithLockVisitor(ast.NodeVisitor):
    """Tracks the stack of enclosing ``with <lock>:`` context expressions."""

    def __init__(self) -> None:
        self.lock_stack: List[ast.AST] = []

    def _lock_items(self, node: ast.With) -> List[ast.AST]:
        return [
            item.context_expr
            for item in node.items
            if _is_lockish_name(_terminal_name(item.context_expr))
        ]

    def visit_With(self, node: ast.With) -> None:
        locks = self._lock_items(node)
        self.lock_stack.extend(locks)
        self.generic_visit(node)
        del self.lock_stack[len(self.lock_stack) - len(locks) :]

    # Nested functions run later, on a different stack — not "inside" the with.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        saved, self.lock_stack = self.lock_stack, []
        self.generic_visit(node)
        self.lock_stack = saved

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        saved, self.lock_stack = self.lock_stack, []
        self.generic_visit(node)
        self.lock_stack = saved


@register_rule
class BlockingCallUnderLockRule(Rule):
    """RPR103: no blocking calls while lexically holding a lock."""

    code = "RPR103"
    name = "blocking-call-under-lock"
    rationale = (
        "A sleep/join/queue-get/acquire/Future.result inside a `with lock:` "
        "body stalls every thread contending for that lock and invites "
        "deadlock; waiting belongs on the enclosing Condition, not inside a "
        "foreign lock."
    )

    def check(
        self, tree: ast.AST, source_lines: Sequence[str], path: Path
    ) -> Iterator[Tuple[int, int, str]]:
        aliases = _collect_aliases(tree)
        findings: List[Tuple[int, int, str]] = []

        def same_object(call_target: ast.AST, locks: List[ast.AST]) -> bool:
            target_dump = ast.dump(call_target)
            return any(ast.dump(lock) == target_dump for lock in locks)

        class Visitor(_WithLockVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                if self.lock_stack:
                    reason = self._blocking_reason(node)
                    if reason is not None:
                        lock_name = (
                            _terminal_name(self.lock_stack[-1]) or "<lock>"
                        )
                        findings.append(
                            (
                                node.lineno,
                                node.col_offset,
                                f"{reason} inside `with {lock_name}:` body; "
                                "move the blocking call outside the lock",
                            )
                        )
                self.generic_visit(node)

            def _blocking_reason(self, node: ast.Call) -> Optional[str]:
                full = _resolve_call(node, aliases)
                terminal = _terminal_name(node.func)
                if full == "time.sleep" or (terminal and "sleep" in terminal.lower()):
                    return "sleep()"
                if not isinstance(node.func, ast.Attribute):
                    return None
                attr = node.func.attr
                value = node.func.value
                if attr in ("wait", "wait_for", "acquire"):
                    # Waiting on the *held* Condition releases it — that is
                    # the one legitimate blocking call under a lock.
                    if same_object(value, self.lock_stack):
                        return None
                    return f".{attr}() on another synchronizer"
                if attr == "result":
                    return "Future.result()"
                if attr == "join":
                    # Exclude ', '.join(...) and os.path.join(...).
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, str
                    ):
                        return None
                    if _terminal_name(value) == "path":
                        return None
                    return ".join()"
                if attr == "get":
                    # dict.get(key) always takes a positional argument;
                    # Queue.get() blocks with no args or block=/timeout= kwargs.
                    if node.args:
                        return None
                    if not node.keywords or any(
                        kw.arg in ("block", "timeout") for kw in node.keywords
                    ):
                        return "Queue.get()"
                return None

        Visitor().visit(tree)
        return iter(findings)


@register_rule
class UnnamedThreadRule(Rule):
    """RPR104: every thread needs a stable name and an explicit daemon flag."""

    code = "RPR104"
    name = "unnamed-or-implicit-daemon-thread"
    rationale = (
        "Sanitizer reports, crash logs and `py-spy` dumps are only "
        "attributable when threads carry stable names; daemon-ness must be a "
        "decision, not a default."
    )

    def check(
        self, tree: ast.AST, source_lines: Sequence[str], path: Path
    ) -> Iterator[Tuple[int, int, str]]:
        aliases = _collect_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if _resolve_call(node, aliases) != "threading.Thread":
                continue
            keywords = {kw.arg for kw in node.keywords if kw.arg}
            missing = [kw for kw in ("name", "daemon") if kw not in keywords]
            if missing:
                yield (
                    node.lineno,
                    node.col_offset,
                    "threading.Thread(...) without explicit "
                    + " and ".join(f"{kw}=" for kw in missing),
                )


@register_rule
class BroadExceptSwallowRule(Rule):
    """RPR105: broad excepts must re-raise, narrow, or route the error on."""

    code = "RPR105"
    name = "broad-except-swallows-error"
    rationale = (
        "A bare `except Exception: pass` in a dispatch or supervision loop "
        "turns real faults into silence; handlers must re-raise, narrow the "
        "type, or hand the exception to telemetry/response routing."
    )

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(element) for element in node.elts)
        return _terminal_name(node) in self._BROAD

    def check(
        self, tree: ast.AST, source_lines: Sequence[str], path: Path
    ) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            reraises = any(
                isinstance(child, ast.Raise)
                for body_node in node.body
                for child in ast.walk(body_node)
            )
            if reraises:
                continue
            routed = node.name is not None and any(
                isinstance(child, ast.Name) and child.id == node.name
                for body_node in node.body
                for child in ast.walk(body_node)
            )
            if routed:
                continue
            label = (
                "bare except:"
                if node.type is None
                else f"except {_terminal_name(node.type) or '...'}:"
            )
            yield (
                node.lineno,
                node.col_offset,
                f"{label} swallows the error (no re-raise, no narrowing, the "
                "exception is never routed anywhere)",
            )


@register_rule
class ThreadSharedMutationRule(Rule):
    """RPR106: ``self._*`` mutations in ``@thread_shared`` classes need the lock.

    Lexical analysis per method: a write to ``self._x`` (attribute assign,
    subscript assign, augmented assign, or an in-place mutator call like
    ``self._q.append``) must sit inside a ``with self.<lock>:`` block, where
    ``<lock>`` is any lock-like attribute the class assigns.  ``__init__`` is
    exempt (construction is single-threaded), as are methods whose names end
    in ``_locked`` — the project convention for helpers whose callers hold
    the lock.
    """

    code = "RPR106"
    name = "unlocked-mutation-in-thread-shared-class"
    rationale = (
        "Classes marked @thread_shared are mutated from several threads; a "
        "`self._x = ...` outside the class's lock is a data race even when "
        "tests pass."
    )

    _EXEMPT_METHODS = ("__init__", "__post_init__")

    def check(
        self, tree: ast.AST, source_lines: Sequence[str], path: Path
    ) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and self._is_thread_shared(node):
                yield from self._check_class(node)

    def _is_thread_shared(self, node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            if _terminal_name(decorator) == "thread_shared":
                return True
        return False

    def _lock_attrs(self, node: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for child in ast.walk(node):
            if not isinstance(child, ast.Assign):
                continue
            for target in child.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and _is_lockish_name(target.attr)
                ):
                    locks.add(target.attr)
        return locks

    def _check_class(
        self, class_node: ast.ClassDef
    ) -> Iterator[Tuple[int, int, str]]:
        lock_attrs = self._lock_attrs(class_node)
        findings: List[Tuple[int, int, str]] = []
        class_name = class_node.name

        def is_self_underscore(target: ast.AST) -> Optional[str]:
            """``self._x`` (or ``self._x[...]``) -> ``_x``; else None."""

            if isinstance(target, ast.Subscript):
                target = target.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr.startswith("_")
                and target.attr not in lock_attrs
                and not _is_lockish_name(target.attr)
            ):
                return target.attr
            return None

        class Visitor(_WithLockVisitor):
            def _under_class_lock(self) -> bool:
                for lock_expr in self.lock_stack:
                    if (
                        isinstance(lock_expr, ast.Attribute)
                        and isinstance(lock_expr.value, ast.Name)
                        and lock_expr.value.id == "self"
                        and lock_expr.attr in lock_attrs
                    ):
                        return True
                return False

            def _flag(self, node: ast.AST, attr: str, verb: str) -> None:
                findings.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"{verb} of self.{attr} outside {class_name}'s lock "
                        "(class is @thread_shared); hold the lock or move "
                        "the write into a *_locked helper",
                    )
                )

            def visit_Assign(self, node: ast.Assign) -> None:
                if not self._under_class_lock():
                    for target in node.targets:
                        attr = is_self_underscore(target)
                        if attr is not None:
                            self._flag(node, attr, "assignment")
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                if not self._under_class_lock():
                    attr = is_self_underscore(node.target)
                    if attr is not None:
                        self._flag(node, attr, "augmented assignment")
                self.generic_visit(node)

            def visit_Call(self, node: ast.Call) -> None:
                if (
                    not self._under_class_lock()
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATOR_METHODS
                ):
                    attr = is_self_underscore(node.func.value)
                    if attr is not None:
                        self._flag(node, attr, f"in-place .{node.func.attr}()")
                self.generic_visit(node)

        for item in class_node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in self._EXEMPT_METHODS or item.name.endswith("_locked"):
                continue
            visitor = Visitor()
            for statement in item.body:
                visitor.visit(statement)
        return iter(findings)
