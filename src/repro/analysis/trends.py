"""Section VI-A trend statements as checkable data.

* VI-A.1 — a dual-core chip has higher IPS *and* proportionally higher power
  than a single-core chip, so IPS/W is (nearly) unchanged.
* VI-A.2 — IPS grows approximately linearly with the array size, while IPS/W
  peaks at intermediate dimensions because photonic losses grow exponentially
  (in power) with array size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config.chip import ChipConfig
from repro.config.presets import default_sweep_chip
from repro.core.simulation import SimulationFramework
from repro.nn.network import Network
from repro.nn.resnet import build_resnet50


def dual_vs_single_core_trend(
    network: Optional[Network] = None,
    config: Optional[ChipConfig] = None,
    framework: Optional[SimulationFramework] = None,
) -> Dict[str, float]:
    """Compare single- vs dual-core at one design point (Section VI-A.1)."""
    network = network or build_resnet50()
    config = config or default_sweep_chip()
    framework = framework or SimulationFramework(network)

    single = framework.evaluate(config.with_updates(num_cores=1))
    dual = framework.evaluate(config.with_updates(num_cores=2))
    return {
        "single_core_ips": single.inferences_per_second,
        "dual_core_ips": dual.inferences_per_second,
        "single_core_power_w": single.power_w,
        "dual_core_power_w": dual.power_w,
        "single_core_ips_per_watt": single.ips_per_watt,
        "dual_core_ips_per_watt": dual.ips_per_watt,
        "ips_gain": dual.inferences_per_second / single.inferences_per_second,
        "power_increase": dual.power_w / single.power_w,
        "ips_per_watt_ratio": dual.ips_per_watt / single.ips_per_watt,
    }


def array_size_trend(
    network: Optional[Network] = None,
    base_config: Optional[ChipConfig] = None,
    sizes: Sequence[int] = (16, 32, 64, 128, 256),
    framework: Optional[SimulationFramework] = None,
) -> List[Dict[str, float]]:
    """IPS and IPS/W for square arrays of increasing size (Section VI-A.2)."""
    network = network or build_resnet50()
    base_config = base_config or default_sweep_chip()
    framework = framework or SimulationFramework(network)

    rows: List[Dict[str, float]] = []
    for size in sizes:
        config = base_config.with_updates(rows=int(size), columns=int(size))
        metrics = framework.evaluate(config)
        rows.append(
            {
                "size": float(size),
                "array_cells": float(size * size),
                "ips": metrics.inferences_per_second,
                "ips_per_watt": metrics.ips_per_watt,
                "power_w": metrics.power_w,
                "laser_electrical_w": metrics.laser.electrical_power_w,
                "feasible": metrics.feasible,
            }
        )
    return rows
