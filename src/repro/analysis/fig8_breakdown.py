"""Fig. 8 — power and area breakdown of the proposed (optimised) accelerator.

The paper reports that the 128×128 dual-core design's power is dominated by
DRAM accesses while its area is dominated by the SRAM blocks.  The generator
returns both breakdowns (full and grouped) for any configuration, defaulting
to the paper's optimal design point.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config.chip import ChipConfig
from repro.config.presets import optimal_chip
from repro.core.simulation import SimulationFramework
from repro.nn.network import Network
from repro.nn.resnet import build_resnet50


def generate_fig8_breakdown(
    network: Optional[Network] = None,
    config: Optional[ChipConfig] = None,
    framework: Optional[SimulationFramework] = None,
) -> Dict[str, Dict[str, float]]:
    """Generate the Fig. 8 data: power and area breakdowns (full + grouped)."""
    network = network or build_resnet50()
    config = config or optimal_chip()
    framework = framework or SimulationFramework(network)
    metrics = framework.evaluate(config)

    return {
        "power_w": dict(metrics.power_breakdown.components_w),
        "power_grouped_w": metrics.power_breakdown.grouped(),
        "area_mm2": dict(metrics.area_breakdown.components_mm2),
        "area_grouped_mm2": metrics.area_breakdown.grouped(),
        "totals": {
            "power_w": metrics.power_w,
            "area_mm2": metrics.area_mm2,
            "ips": metrics.inferences_per_second,
            "ips_per_watt": metrics.ips_per_watt,
        },
    }
