"""Export helpers: turn generator output (lists of dicts) into CSV/JSON."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.errors import SimulationError


def rows_to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Serialise a list of flat dictionaries to CSV text.

    The header is the union of all keys, in first-seen order, so rows with
    slightly different keys (e.g. optional diagnostic columns) still export.
    """
    if not rows:
        raise SimulationError("cannot export an empty row list")
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def rows_to_json(rows: Sequence[Dict[str, object]]) -> str:
    """Serialise a list of dictionaries to pretty-printed JSON."""
    if not rows:
        raise SimulationError("cannot export an empty row list")
    return json.dumps(list(rows), indent=2, sort_keys=True, default=float)


def save_rows(rows: Sequence[Dict[str, object]], path: Union[str, Path]) -> Path:
    """Write rows to ``path``; the format is chosen from the file extension."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        path.write_text(rows_to_csv(rows))
    elif path.suffix.lower() == ".json":
        path.write_text(rows_to_json(rows))
    else:
        raise SimulationError(
            f"unsupported export extension {path.suffix!r}; use .csv or .json"
        )
    return path
