"""Per-figure and per-table data generators.

Every data-bearing artefact of the paper's evaluation has one generator here
that returns the plotted series as plain Python data (lists of dicts), so the
benchmark harness can print the same rows/series the paper reports and tests
can assert the qualitative shape:

* :func:`~repro.analysis.fig1_landscape.generate_fig1_landscape` — Fig. 1
* :func:`~repro.analysis.fig6_array_sweep.generate_fig6_array_sweep` — Fig. 6
* :func:`~repro.analysis.fig7_sram_batch.generate_fig7a_batch_power`,
  :func:`~repro.analysis.fig7_sram_batch.generate_fig7b_sram_ipsw`,
  :func:`~repro.analysis.fig7_sram_batch.generate_fig7c_dual_core_ips` — Fig. 7
* :func:`~repro.analysis.fig8_breakdown.generate_fig8_breakdown` — Fig. 8
* :func:`~repro.analysis.table1.generate_table1` — Table I
* :mod:`repro.analysis.trends` — the Section VI-A.1/VI-A.2 trend statements
"""

from repro.analysis.export import rows_to_csv, rows_to_json, save_rows
from repro.analysis.fig1_landscape import generate_fig1_landscape
from repro.analysis.fig6_array_sweep import generate_fig6_array_sweep
from repro.analysis.fig7_sram_batch import (
    generate_fig7a_batch_power,
    generate_fig7b_sram_ipsw,
    generate_fig7c_dual_core_ips,
)
from repro.analysis.fig8_breakdown import generate_fig8_breakdown
from repro.analysis.sensitivity import (
    TechnologySensitivityAnalysis,
    sensitivity_rows,
)
from repro.analysis.table1 import generate_table1
from repro.analysis.trends import array_size_trend, dual_vs_single_core_trend

__all__ = [
    "TechnologySensitivityAnalysis",
    "array_size_trend",
    "dual_vs_single_core_trend",
    "sensitivity_rows",
    "generate_fig1_landscape",
    "generate_fig6_array_sweep",
    "generate_fig7a_batch_power",
    "generate_fig7b_sram_ipsw",
    "generate_fig7c_dual_core_ips",
    "generate_fig8_breakdown",
    "generate_table1",
    "rows_to_csv",
    "rows_to_json",
    "save_rows",
]
