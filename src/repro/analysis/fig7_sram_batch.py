"""Fig. 7 — effect of batch size, input-SRAM size and core count.

Three panels:

* **7a** — chip power (broken down by component group) vs. batch size at the
  32×32 default configuration; DRAM access energy rises steeply once the
  batched input working set no longer fits the 26.3 MB input SRAM (between
  batch 32 and 64 for ResNet-50).
* **7b** — IPS/W vs. input-SRAM size for several batch sizes; each batch has
  a critical SRAM size beyond which more SRAM does not help.
* **7c** — IPS vs. batch size for single- and dual-core chips; the dual core
  hides the PCM programming latency, which matters most at small batches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config.chip import ChipConfig
from repro.config.presets import default_sweep_chip
from repro.core.simulation import SimulationFramework
from repro.nn.network import Network
from repro.nn.resnet import build_resnet50

DEFAULT_BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)
DEFAULT_SRAM_SIZES_MB = (1.0, 2.0, 4.0, 8.0, 16.0, 26.3, 32.0, 48.0, 64.0)
DEFAULT_7B_BATCHES = (8, 16, 32, 64)


def generate_fig7a_batch_power(
    network: Optional[Network] = None,
    base_config: Optional[ChipConfig] = None,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    framework: Optional[SimulationFramework] = None,
) -> List[Dict[str, float]]:
    """Fig. 7a series: total power and grouped power breakdown per batch size."""
    network = network or build_resnet50()
    base_config = base_config or default_sweep_chip()
    framework = framework or SimulationFramework(network)

    rows: List[Dict[str, float]] = []
    for batch in batch_sizes:
        config = base_config.with_updates(batch_size=int(batch))
        metrics = framework.evaluate(config)
        row: Dict[str, float] = {
            "batch_size": float(batch),
            "power_w": metrics.power_w,
            "ips": metrics.inferences_per_second,
            "ips_per_watt": metrics.ips_per_watt,
            "dram_power_w": metrics.power_breakdown.component("dram"),
            "sram_power_w": metrics.power_breakdown.component("sram"),
        }
        for group, value in metrics.power_breakdown.grouped().items():
            row[f"group_{group}_w"] = value
        rows.append(row)
    return rows


def generate_fig7b_sram_ipsw(
    network: Optional[Network] = None,
    base_config: Optional[ChipConfig] = None,
    input_sram_mb_values: Sequence[float] = DEFAULT_SRAM_SIZES_MB,
    batch_sizes: Sequence[int] = DEFAULT_7B_BATCHES,
    framework: Optional[SimulationFramework] = None,
) -> List[Dict[str, float]]:
    """Fig. 7b series: IPS/W vs. input-SRAM size, one curve per batch size."""
    network = network or build_resnet50()
    base_config = base_config or default_sweep_chip()
    framework = framework or SimulationFramework(network)

    rows: List[Dict[str, float]] = []
    for batch in batch_sizes:
        for input_mb in input_sram_mb_values:
            config = base_config.with_updates(
                batch_size=int(batch),
                sram=base_config.sram.scaled_input(float(input_mb)),
            )
            metrics = framework.evaluate(config)
            rows.append(
                {
                    "batch_size": float(batch),
                    "input_sram_mb": float(input_mb),
                    "ips_per_watt": metrics.ips_per_watt,
                    "power_w": metrics.power_w,
                    "dram_power_w": metrics.power_breakdown.component("dram"),
                }
            )
    return rows


def generate_fig7c_dual_core_ips(
    network: Optional[Network] = None,
    base_config: Optional[ChipConfig] = None,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    framework: Optional[SimulationFramework] = None,
) -> List[Dict[str, float]]:
    """Fig. 7c series: IPS vs. batch size for single- and dual-core chips."""
    network = network or build_resnet50()
    base_config = base_config or default_sweep_chip()
    framework = framework or SimulationFramework(network)

    rows: List[Dict[str, float]] = []
    for num_cores in (1, 2):
        for batch in batch_sizes:
            config = base_config.with_updates(batch_size=int(batch), num_cores=num_cores)
            metrics = framework.evaluate(config)
            rows.append(
                {
                    "num_cores": float(num_cores),
                    "batch_size": float(batch),
                    "ips": metrics.inferences_per_second,
                    "ips_per_watt": metrics.ips_per_watt,
                    "power_w": metrics.power_w,
                }
            )
    return rows


def critical_sram_size_mb(rows: List[Dict[str, float]], batch_size: int, tolerance: float = 0.02) -> float:
    """Smallest input-SRAM size whose IPS/W is within ``tolerance`` of that batch's best."""
    candidates = [row for row in rows if row["batch_size"] == float(batch_size)]
    if not candidates:
        raise ValueError(f"no Fig. 7b rows for batch size {batch_size}")
    best = max(row["ips_per_watt"] for row in candidates)
    sufficient = [
        row["input_sram_mb"]
        for row in candidates
        if row["ips_per_watt"] >= (1.0 - tolerance) * best
    ]
    return min(sufficient)
