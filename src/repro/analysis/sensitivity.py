"""One-at-a-time sensitivity (tornado) analysis of technology parameters.

The paper's conclusions rest on a handful of device constants (DRAM energy,
ADC power, crossing loss, receiver sensitivity, ...).  This module perturbs
each constant individually by a multiplicative factor and records the effect
on a chosen metric (IPS/W by default), producing the data for a tornado
chart.  It answers "which device assumption is the design most sensitive
to?" — useful both for reviewing the paper's claims and for prioritising
device engineering effort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.chip import ChipConfig
from repro.core.simulation import SimulationFramework
from repro.errors import SimulationError
from repro.nn.network import Network

#: Technology fields perturbed by default, chosen to cover every major
#: subsystem: memory, converters, optics, PCM and the laser.
DEFAULT_PARAMETERS: Tuple[str, ...] = (
    "dram_energy_per_bit_j",
    "sram_energy_per_bit_j",
    "adc_power_w",
    "tia_power_w",
    "odac_driver_energy_per_sample_j",
    "serdes_energy_per_bit_j",
    "mmi_crossing_loss_db",
    "waveguide_loss_db_per_cm",
    "receiver_sensitivity_w",
    "laser_wall_plug_efficiency",
    "pcm_programming_energy_j",
    "pcm_programming_time_s",
)


@dataclass(frozen=True)
class SensitivityEntry:
    """Effect of perturbing one technology parameter."""

    parameter: str
    low_factor: float
    high_factor: float
    baseline_value: float
    metric_at_low: float
    metric_at_high: float
    baseline_metric: float

    @property
    def swing(self) -> float:
        """Absolute metric swing between the low and high perturbations."""
        return abs(self.metric_at_high - self.metric_at_low)

    @property
    def relative_swing(self) -> float:
        """Swing normalised by the baseline metric."""
        if self.baseline_metric == 0:
            return 0.0
        return self.swing / self.baseline_metric

    def as_dict(self) -> Dict[str, float]:
        """Flat row for CSV export."""
        return {
            "parameter": self.parameter,
            "baseline_value": self.baseline_value,
            "metric_at_low": self.metric_at_low,
            "metric_at_high": self.metric_at_high,
            "baseline_metric": self.baseline_metric,
            "relative_swing": self.relative_swing,
        }


class TechnologySensitivityAnalysis:
    """Tornado analysis of a design point's sensitivity to device constants.

    Parameters
    ----------
    network:
        Workload to evaluate.
    config:
        Design point whose technology constants are perturbed.
    metric:
        Name of the metric to track; any numeric key of
        :meth:`repro.perf.metrics.PerformanceMetrics.summary` ("ips_per_watt",
        "power_w", "ips", "area_mm2", ...).
    """

    def __init__(
        self,
        network: Network,
        config: ChipConfig,
        metric: str = "ips_per_watt",
        framework: Optional[SimulationFramework] = None,
    ) -> None:
        self.network = network
        self.config = config
        self.metric = metric
        self.framework = framework or SimulationFramework(network)

    # ------------------------------------------------------------------ internals
    def _metric_for(self, config: ChipConfig) -> float:
        summary = self.framework.evaluate(config).summary()
        if self.metric not in summary:
            raise SimulationError(
                f"unknown metric {self.metric!r}; available: {sorted(summary)}"
            )
        value = summary[self.metric]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SimulationError(f"metric {self.metric!r} is not numeric")
        return float(value)

    def _perturbed_config(self, parameter: str, factor: float) -> ChipConfig:
        baseline = getattr(self.config.technology, parameter)
        technology = self.config.technology.with_updates(**{parameter: baseline * factor})
        return self.config.with_updates(technology=technology)

    # ------------------------------------------------------------------ api
    def analyze(
        self,
        parameters: Sequence[str] = DEFAULT_PARAMETERS,
        low_factor: float = 0.5,
        high_factor: float = 2.0,
    ) -> List[SensitivityEntry]:
        """Perturb each parameter by ``low_factor``/``high_factor``.

        Returns entries sorted by decreasing metric swing (tornado order).
        Perturbations that make a parameter invalid (e.g. a wall-plug
        efficiency above 1) are clamped to the valid range.
        """
        if not parameters:
            raise SimulationError("at least one parameter is required")
        if low_factor <= 0 or high_factor <= 0:
            raise SimulationError("perturbation factors must be > 0")

        baseline_metric = self._metric_for(self.config)
        entries: List[SensitivityEntry] = []
        for parameter in parameters:
            if not hasattr(self.config.technology, parameter):
                raise SimulationError(f"unknown technology parameter {parameter!r}")
            baseline_value = getattr(self.config.technology, parameter)
            metric_low = self._metric_for(
                self._clamped_perturbation(parameter, low_factor)
            )
            metric_high = self._metric_for(
                self._clamped_perturbation(parameter, high_factor)
            )
            entries.append(
                SensitivityEntry(
                    parameter=parameter,
                    low_factor=low_factor,
                    high_factor=high_factor,
                    baseline_value=baseline_value,
                    metric_at_low=metric_low,
                    metric_at_high=metric_high,
                    baseline_metric=baseline_metric,
                )
            )
        entries.sort(key=lambda entry: entry.swing, reverse=True)
        return entries

    def _clamped_perturbation(self, parameter: str, factor: float) -> ChipConfig:
        baseline = getattr(self.config.technology, parameter)
        value = baseline * factor
        if parameter == "laser_wall_plug_efficiency":
            value = min(value, 1.0)
        technology = self.config.technology.with_updates(**{parameter: value})
        return self.config.with_updates(technology=technology)

    def most_sensitive_parameter(
        self, parameters: Sequence[str] = DEFAULT_PARAMETERS
    ) -> str:
        """Name of the parameter with the largest metric swing."""
        return self.analyze(parameters)[0].parameter


def sensitivity_rows(
    network: Network,
    config: ChipConfig,
    metric: str = "ips_per_watt",
    parameters: Sequence[str] = DEFAULT_PARAMETERS,
    framework: Optional[SimulationFramework] = None,
) -> List[Dict[str, float]]:
    """Convenience wrapper returning plain-dict rows for export/benchmarks."""
    analysis = TechnologySensitivityAnalysis(network, config, metric, framework)
    return [entry.as_dict() for entry in analysis.analyze(parameters)]
