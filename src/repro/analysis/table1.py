"""Table I — this work vs. the NVIDIA A100 on ResNet-50 inference.

The paper reports (Section VII):

==============  =======  ======  ======  =========
System          IPS      IPS/W   Power   Area
==============  =======  ======  ======  =========
This work       36,382   1,196   30 W    121 mm²
NVIDIA A100     29,733   75      396 W   826 mm²
==============  =======  ======  ======  =========

i.e. comparable IPS at 15.4× lower power and 7.24× lower area.  The generator
re-evaluates "this work" with the full model and pairs it with the published
A100 figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.gpu import GPUReference, NVIDIA_A100
from repro.config.chip import ChipConfig
from repro.config.presets import optimal_chip
from repro.core.comparison import compare_to_gpu
from repro.core.simulation import SimulationFramework
from repro.nn.network import Network
from repro.nn.resnet import build_resnet50

#: The paper's own Table I values, kept for paper-vs-measured reporting.
PAPER_TABLE1 = {
    "this_work": {"ips": 36_382.0, "ips_per_watt": 1_196.0, "power_w": 30.0, "area_mm2": 121.0},
    "gpu": {"ips": 29_733.0, "ips_per_watt": 75.0, "power_w": 396.0, "area_mm2": 826.0},
    "power_advantage": 15.4,
    "area_advantage": 7.24,
}


def generate_table1(
    network: Optional[Network] = None,
    config: Optional[ChipConfig] = None,
    gpu: GPUReference = NVIDIA_A100,
    framework: Optional[SimulationFramework] = None,
) -> Dict[str, object]:
    """Generate the Table I rows plus the headline ratios and paper values."""
    network = network or build_resnet50()
    config = config or optimal_chip()
    framework = framework or SimulationFramework(network)
    metrics = framework.evaluate(config)
    comparison = compare_to_gpu(metrics, gpu)

    rows: List[Dict[str, float]] = [row.as_dict() for row in comparison.rows()]
    return {
        "rows": rows,
        "ratios": comparison.summary(),
        "paper": PAPER_TABLE1,
    }
