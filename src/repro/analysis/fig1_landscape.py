"""Fig. 1 — landscape of AI processors: throughput vs. energy efficiency.

The paper's Fig. 1 positions AI/ML processors on a TOPS vs. TOPS/W plane and
argues that ONNs target the high-throughput (datacenter) corner.  The
generator combines

* published GPU datapoints (A100, V100, T4),
* representative published edge / analog accelerators (static catalogue), and
* this work's proposed design point, evaluated with the full model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.gpu import known_gpu_references
from repro.config.chip import ChipConfig
from repro.config.presets import optimal_chip
from repro.core.simulation import SimulationFramework
from repro.nn.network import Network
from repro.nn.resnet import build_resnet50

#: Representative published accelerators used only as landscape context
#: (category, peak TOPS, TOPS/W).  Values are order-of-magnitude public
#: figures for the three classes the paper's Fig. 1 shows.
STATIC_LANDSCAPE_POINTS = [
    {"name": "Edge NPU (class)", "category": "edge", "tops": 4.0, "tops_per_watt": 2.0},
    {"name": "Analog in-memory (class)", "category": "analog", "tops": 1.0, "tops_per_watt": 10.0},
    {"name": "Neuromorphic (class)", "category": "neuromorphic", "tops": 0.1, "tops_per_watt": 5.0},
    {"name": "Datacenter ASIC (class)", "category": "asic", "tops": 400.0, "tops_per_watt": 1.2},
]


def generate_fig1_landscape(
    network: Optional[Network] = None,
    config: Optional[ChipConfig] = None,
) -> List[Dict[str, object]]:
    """Generate the Fig. 1 scatter points (one dict per processor).

    Each row carries ``name``, ``category``, ``tops`` (effective for this
    work, peak for published points) and ``tops_per_watt``.
    """
    network = network or build_resnet50()
    config = config or optimal_chip()

    rows: List[Dict[str, object]] = []
    for point in STATIC_LANDSCAPE_POINTS:
        rows.append(dict(point))

    for gpu in known_gpu_references():
        rows.append(
            {
                "name": gpu.name,
                "category": "gpu",
                "tops": gpu.peak_tops,
                "tops_per_watt": gpu.peak_tops_per_watt,
            }
        )

    metrics = SimulationFramework(network).evaluate(config)
    rows.append(
        {
            "name": "This work (128x128 PCM crossbar)",
            "category": "this_work",
            "tops": metrics.effective_tops,
            "tops_per_watt": metrics.effective_tops_per_watt,
            "ips": metrics.inferences_per_second,
            "ips_per_watt": metrics.ips_per_watt,
        }
    )
    return rows
