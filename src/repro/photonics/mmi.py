"""Multi-mode interference (MMI) devices: waveguide crossings and splitters.

Every unit cell of the crossbar contains an MMI crossing where the row
waveguide crosses the column waveguide; the light that stays on the row
therefore traverses one crossing per column it passes.  Crossing loss is one
of the terms that grows linearly in dB (exponentially in power) with array
size and ultimately caps the energy-efficient array dimensions (paper Section
VI-A.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import loss_db_to_transmission
from repro.errors import DeviceModelError


@dataclass(frozen=True)
class MMICrossing:
    """A multi-mode-interference waveguide crossing junction.

    Parameters
    ----------
    insertion_loss_db:
        Loss seen by light passing straight through the junction (dB).
    crosstalk_db:
        Power leaking into the crossing waveguide, expressed as a negative
        number of dB relative to the input (e.g. -40 dB).
    """

    insertion_loss_db: float = 0.018
    crosstalk_db: float = -40.0

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0:
            raise DeviceModelError(
                f"insertion_loss_db must be >= 0, got {self.insertion_loss_db}"
            )
        if self.crosstalk_db > 0:
            raise DeviceModelError(
                f"crosstalk_db must be <= 0 dB, got {self.crosstalk_db}"
            )

    @property
    def power_transmission(self) -> float:
        """Power transmission of the straight-through path, in [0, 1]."""
        return loss_db_to_transmission(self.insertion_loss_db)

    @property
    def field_transmission(self) -> float:
        """E-field transmission of the straight-through path."""
        return math.sqrt(self.power_transmission)

    @property
    def crosstalk_power_fraction(self) -> float:
        """Fraction of input power leaking into the orthogonal waveguide."""
        return 10.0 ** (self.crosstalk_db / 10.0)

    def cascade_loss_db(self, num_crossings: int) -> float:
        """Total loss of ``num_crossings`` crossings traversed in series (dB)."""
        if num_crossings < 0:
            raise DeviceModelError(f"num_crossings must be >= 0, got {num_crossings}")
        return self.insertion_loss_db * num_crossings

    def cascade_transmission(self, num_crossings: int) -> float:
        """Power transmission of ``num_crossings`` crossings in series."""
        return loss_db_to_transmission(self.cascade_loss_db(num_crossings))


@dataclass(frozen=True)
class MMISplitter:
    """A 1×2 MMI power splitter used to build the input splitter tree.

    Parameters
    ----------
    excess_loss_db:
        Loss beyond the ideal 3 dB split (dB).
    imbalance_db:
        Power imbalance between the two output arms (dB); 0 means a perfect
        50/50 split.
    """

    excess_loss_db: float = 0.1
    imbalance_db: float = 0.0

    def __post_init__(self) -> None:
        if self.excess_loss_db < 0:
            raise DeviceModelError(
                f"excess_loss_db must be >= 0, got {self.excess_loss_db}"
            )
        if self.imbalance_db < 0:
            raise DeviceModelError(
                f"imbalance_db must be >= 0, got {self.imbalance_db}"
            )

    @property
    def split_fractions(self) -> tuple:
        """Power fractions routed to (arm A, arm B), excluding excess loss.

        Arm A is the stronger arm: ``arm_a / arm_b`` equals the linear power
        ratio corresponding to ``imbalance_db``.
        """
        ratio = 10.0 ** (self.imbalance_db / 10.0)
        # arm_a / arm_b == ratio and arm_a + arm_b == 1
        arm_b = 1.0 / (1.0 + ratio)
        arm_a = 1.0 - arm_b
        return (arm_a, arm_b)

    def output_powers(self, power_in: float) -> tuple:
        """Optical powers at the two output arms for ``power_in`` at the input."""
        if power_in < 0:
            raise DeviceModelError(f"power_in must be >= 0, got {power_in}")
        transmission = loss_db_to_transmission(self.excess_loss_db)
        arm_a, arm_b = self.split_fractions
        return (power_in * transmission * arm_a, power_in * transmission * arm_b)
