"""Grating-coupler model for fibre-to-chip coupling.

The laser is assumed to be an external (or co-packaged) source whose light
enters the chip through a grating coupler with 2 dB insertion loss
(paper Section III-A, [10], [12]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import loss_db_to_transmission
from repro.errors import DeviceModelError


@dataclass(frozen=True)
class GratingCoupler:
    """A surface grating coupler.

    Parameters
    ----------
    insertion_loss_db:
        Fibre-to-waveguide coupling loss (dB).
    bandwidth_1db_nm:
        1-dB optical bandwidth (nm), used only for sanity checks in
        multi-wavelength what-if studies.
    """

    insertion_loss_db: float = 2.0
    bandwidth_1db_nm: float = 30.0

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0:
            raise DeviceModelError(
                f"insertion_loss_db must be >= 0, got {self.insertion_loss_db}"
            )
        if self.bandwidth_1db_nm <= 0:
            raise DeviceModelError(
                f"bandwidth_1db_nm must be > 0, got {self.bandwidth_1db_nm}"
            )

    @property
    def power_transmission(self) -> float:
        """Power transmission through the coupler, in [0, 1]."""
        return loss_db_to_transmission(self.insertion_loss_db)

    def couple(self, power_in_w: float) -> float:
        """Optical power delivered on chip for ``power_in_w`` in the fibre (W)."""
        if power_in_w < 0:
            raise DeviceModelError(f"power_in_w must be >= 0, got {power_in_w}")
        return power_in_w * self.power_transmission
