"""Ring-resonator optical DAC (ODAC) model.

The transmitter encodes each input-vector element onto the row E-field with a
ring-resonator-based optical DAC: segmented ring drivers select one of 2^B
amplitude levels directly in the optical domain at 10+ GS/s with roughly
168 fJ per sample of driver energy and 0.72 mW of thermal tuning per ring
(paper Section III-B.1, [15]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import loss_db_to_transmission
from repro.errors import DeviceModelError


@dataclass(frozen=True)
class RingResonatorODAC:
    """A ring-resonator optical DAC producing amplitude (PAM) levels.

    Parameters
    ----------
    bits:
        DAC resolution; the paper assumes 6-bit operation.
    sample_rate_hz:
        Modulation rate (samples per second).
    driver_energy_per_sample_j:
        Electrical driver energy per produced sample (J).
    thermal_tuning_power_w:
        Static thermal tuning power to keep the ring on resonance (W).
    oma_penalty_db:
        Effective optical loss due to the finite optical modulation amplitude
        (the highest code does not reach full transmission).
    area_mm2:
        Driver + ring area (mm²).
    """

    bits: int = 6
    sample_rate_hz: float = 10e9
    driver_energy_per_sample_j: float = 168e-15
    thermal_tuning_power_w: float = 0.72e-3
    oma_penalty_db: float = 4.0
    area_mm2: float = 0.0012

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise DeviceModelError(f"bits must be >= 1, got {self.bits}")
        if self.sample_rate_hz <= 0:
            raise DeviceModelError(
                f"sample_rate_hz must be > 0, got {self.sample_rate_hz}"
            )
        if self.driver_energy_per_sample_j < 0 or self.thermal_tuning_power_w < 0:
            raise DeviceModelError("driver energy and tuning power must be >= 0")
        if self.oma_penalty_db < 0:
            raise DeviceModelError(
                f"oma_penalty_db must be >= 0, got {self.oma_penalty_db}"
            )

    # ------------------------------------------------------------------ codes
    @property
    def num_levels(self) -> int:
        """Number of distinct output amplitude levels (2**bits)."""
        return 1 << self.bits

    @property
    def max_field_transmission(self) -> float:
        """Field transmission of the full-scale code, limited by the OMA penalty."""
        return float(np.sqrt(loss_db_to_transmission(self.oma_penalty_db)))

    def code_to_field(self, code: int) -> float:
        """E-field transmission produced by an integer DAC code."""
        if not 0 <= code < self.num_levels:
            raise DeviceModelError(
                f"code must be in [0, {self.num_levels - 1}], got {code}"
            )
        return self.max_field_transmission * code / (self.num_levels - 1)

    def value_to_code(self, value: float) -> int:
        """Quantise a normalised value in [0, 1] to the nearest DAC code."""
        if not 0.0 <= value <= 1.0:
            raise DeviceModelError(f"value must be in [0, 1], got {value}")
        return int(round(value * (self.num_levels - 1)))

    def modulate(self, values: np.ndarray) -> np.ndarray:
        """Quantise-and-modulate an array of normalised values to E-field amplitudes."""
        values = np.asarray(values, dtype=float)
        if values.size and (values.min() < -1e-12 or values.max() > 1.0 + 1e-12):
            raise DeviceModelError(
                f"values must be in [0, 1], got range [{values.min()}, {values.max()}]"
            )
        codes = np.round(np.clip(values, 0.0, 1.0) * (self.num_levels - 1))
        return self.max_field_transmission * codes / (self.num_levels - 1)

    # ------------------------------------------------------------------ costs
    @property
    def dynamic_power_w(self) -> float:
        """Driver dynamic power at the configured sample rate (W)."""
        return self.driver_energy_per_sample_j * self.sample_rate_hz

    @property
    def total_power_w(self) -> float:
        """Driver dynamic power plus thermal tuning power (W)."""
        return self.dynamic_power_w + self.thermal_tuning_power_w

    def energy_for_samples(self, num_samples: float) -> float:
        """Driver energy to emit ``num_samples`` samples (J), excluding tuning."""
        if num_samples < 0:
            raise DeviceModelError(f"num_samples must be >= 0, got {num_samples}")
        return self.driver_energy_per_sample_j * num_samples
