"""Thermal phase-shifter model.

Coherent summation along each column requires the optical path lengths of all
contributing unit cells to be phase-matched.  The paper proposes a small
thermo-optic phase shifter in each unit cell (across the column waveguide) to
trim out fabrication-induced phase errors.  The shifter adds a small static
tuning power and insertion loss but is *not* in the data path's modulation
loop — this is the design's key difference from MZI meshes.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

from repro.constants import loss_db_to_transmission
from repro.errors import DeviceModelError


@dataclass(frozen=True)
class ThermalPhaseShifter:
    """A thermo-optic phase shifter.

    Parameters
    ----------
    power_per_pi_w:
        Electrical power to produce a π phase shift (W).
    insertion_loss_db:
        Optical insertion loss (dB).
    response_time_s:
        Thermal time constant (s); calibration happens at this timescale, far
        slower than the 10 GHz data path, which is acceptable because phase
        errors drift slowly.
    max_phase_rad:
        Largest phase shift the heater can produce (radians).
    """

    power_per_pi_w: float = 20e-3
    insertion_loss_db: float = 0.05
    response_time_s: float = 10e-6
    max_phase_rad: float = 2.0 * math.pi

    def __post_init__(self) -> None:
        if self.power_per_pi_w <= 0:
            raise DeviceModelError(f"power_per_pi_w must be > 0, got {self.power_per_pi_w}")
        if self.insertion_loss_db < 0:
            raise DeviceModelError(
                f"insertion_loss_db must be >= 0, got {self.insertion_loss_db}"
            )
        if self.response_time_s <= 0:
            raise DeviceModelError(
                f"response_time_s must be > 0, got {self.response_time_s}"
            )
        if self.max_phase_rad <= 0:
            raise DeviceModelError(f"max_phase_rad must be > 0, got {self.max_phase_rad}")

    @property
    def field_transmission(self) -> float:
        """E-field transmission through the shifter."""
        return math.sqrt(loss_db_to_transmission(self.insertion_loss_db))

    def power_for_phase(self, phase_rad: float) -> float:
        """Electrical power needed to hold a given phase shift (W)."""
        phase = phase_rad % self.max_phase_rad
        return self.power_per_pi_w * phase / math.pi

    def apply(self, field_in: complex, phase_rad: float) -> complex:
        """Apply the phase shift (and insertion loss) to an E-field amplitude."""
        if not 0.0 <= phase_rad <= self.max_phase_rad:
            raise DeviceModelError(
                f"phase_rad must be in [0, {self.max_phase_rad}], got {phase_rad}"
            )
        return field_in * self.field_transmission * cmath.exp(1j * phase_rad)

    def correction_phase(self, phase_error_rad: float) -> float:
        """Heater phase setting that cancels a given path phase error."""
        return (-phase_error_rad) % self.max_phase_rad
