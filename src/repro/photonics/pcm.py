"""Phase-change-material (PCM) cell model.

Each crossbar unit cell contains a µm-long waveguide section covered with PCM
(e.g. GST).  Electrically programming the PCM between its amorphous and
crystalline states — or intermediate partial-crystallisation levels — changes
the optical absorption and therefore the E-field transmission of the cell.
Because the material only absorbs, weights are restricted to [0, 1] and are
quantised to 64 levels (6 bits) in the paper.

Programming costs ~100 pJ and ~100 ns per cell and is non-volatile, so the
stored weights consume no static power (paper Sections III-A.1 and IV).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


import numpy as np

from repro.errors import ProgrammingError


class PCMState(enum.Enum):
    """Discrete extremes of the PCM phase configuration."""

    AMORPHOUS = "amorphous"
    CRYSTALLINE = "crystalline"
    INTERMEDIATE = "intermediate"


@dataclass
class PCMCell:
    """A single programmable PCM absorption cell.

    The cell stores a *field transmission* ``w`` in
    ``[min_transmission, max_transmission]`` quantised to ``levels`` values.
    The amorphous state is the most transparent (w = max) and the fully
    crystalline state the most absorbing (w = min).

    Parameters
    ----------
    levels:
        Number of programmable levels (paper: 64, i.e. 6 bits).
    min_transmission, max_transmission:
        E-field transmission range achievable by programming.
    programming_energy_j:
        Energy of one programming operation (J).
    programming_time_s:
        Duration of one programming operation (s).
    insertion_loss_db:
        Residual insertion loss of the PCM section even in the amorphous
        state (dB) — accounted in the optical link budget, not in ``w``.
    """

    levels: int = 64
    min_transmission: float = 0.0
    max_transmission: float = 1.0
    programming_energy_j: float = 100e-12
    programming_time_s: float = 100e-9
    insertion_loss_db: float = 0.1
    _level: int = field(default=0, repr=False)
    _write_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ProgrammingError(f"levels must be >= 2, got {self.levels}")
        if not 0.0 <= self.min_transmission < self.max_transmission <= 1.0:
            raise ProgrammingError(
                "transmission range must satisfy 0 <= min < max <= 1, got "
                f"[{self.min_transmission}, {self.max_transmission}]"
            )
        if self.programming_energy_j < 0 or self.programming_time_s < 0:
            raise ProgrammingError("programming energy and time must be >= 0")

    # ------------------------------------------------------------------ state
    @property
    def level(self) -> int:
        """Currently programmed level index, 0 .. levels - 1."""
        return self._level

    @property
    def transmission(self) -> float:
        """E-field transmission corresponding to the current level."""
        return self.level_to_transmission(self._level)

    @property
    def write_count(self) -> int:
        """Number of programming operations performed on this cell."""
        return self._write_count

    @property
    def state(self) -> PCMState:
        """Discrete phase classification of the current level."""
        if self._level == self.levels - 1:
            return PCMState.AMORPHOUS
        if self._level == 0:
            return PCMState.CRYSTALLINE
        return PCMState.INTERMEDIATE

    # ------------------------------------------------------------------ mapping
    def level_to_transmission(self, level: int) -> float:
        """Map a level index to its E-field transmission."""
        if not 0 <= level < self.levels:
            raise ProgrammingError(
                f"level must be in [0, {self.levels - 1}], got {level}"
            )
        span = self.max_transmission - self.min_transmission
        return self.min_transmission + span * level / (self.levels - 1)

    def transmission_to_level(self, transmission: float) -> int:
        """Quantise a target E-field transmission to the nearest level index."""
        if not self.min_transmission <= transmission <= self.max_transmission:
            raise ProgrammingError(
                f"target transmission {transmission} outside programmable range "
                f"[{self.min_transmission}, {self.max_transmission}]"
            )
        span = self.max_transmission - self.min_transmission
        fraction = (transmission - self.min_transmission) / span
        return int(round(fraction * (self.levels - 1)))

    # ------------------------------------------------------------------ actions
    def program(self, target_transmission: float) -> dict:
        """Program the cell to the level nearest ``target_transmission``.

        Returns a dictionary with the energy and time spent and the realised
        (quantised) transmission, so callers can account programming costs.
        """
        level = self.transmission_to_level(target_transmission)
        return self.program_level(level)

    def program_level(self, level: int) -> dict:
        """Program the cell to an explicit level index."""
        realised = self.level_to_transmission(level)
        self._level = level
        self._write_count += 1
        return {
            "level": level,
            "transmission": realised,
            "energy_j": self.programming_energy_j,
            "time_s": self.programming_time_s,
        }

    def apply(self, field_in: complex) -> complex:
        """Apply the programmed absorption to an incident E-field amplitude."""
        return field_in * self.transmission

    def quantization_error(self, target_transmission: float) -> float:
        """Absolute error between a target transmission and its quantised value."""
        level = self.transmission_to_level(target_transmission)
        return abs(self.level_to_transmission(level) - target_transmission)


def quantize_weight_matrix(
    weights: np.ndarray,
    levels: int = 64,
    min_transmission: float = 0.0,
    max_transmission: float = 1.0,
) -> np.ndarray:
    """Quantise a weight matrix to the PCM's programmable levels.

    ``weights`` must already be normalised to [0, 1] (the PCM can only
    absorb).  Values outside [0, 1] raise :class:`ProgrammingError`.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.size and (weights.min() < -1e-12 or weights.max() > 1.0 + 1e-12):
        raise ProgrammingError(
            "PCM weights must be in [0, 1]; normalise/shift the matrix first "
            f"(got range [{weights.min()}, {weights.max()}])"
        )
    clipped = np.clip(weights, 0.0, 1.0)
    span = max_transmission - min_transmission
    if span <= 0:
        raise ProgrammingError("max_transmission must exceed min_transmission")
    level_indices = np.round(clipped * (levels - 1))
    return min_transmission + span * level_indices / (levels - 1)
