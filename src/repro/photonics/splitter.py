"""Splitter-tree model.

A binary tree of 1×2 splitters distributes the laser light to the N crossbar
rows, giving each row ``E_laser / sqrt(N)`` (ideal case) plus the tree's
excess loss of 0.8 dB (paper Section III-A, [13]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import loss_db_to_transmission
from repro.errors import DeviceModelError
from repro.photonics.mmi import MMISplitter


@dataclass(frozen=True)
class SplitterTree:
    """A 1-to-N binary splitter tree.

    Parameters
    ----------
    num_outputs:
        Number of leaves (crossbar rows) fed by the tree.
    excess_loss_db:
        Total excess loss of the whole tree (dB); the paper's budget of
        0.8 dB is interpreted as a tree-level number.
    """

    num_outputs: int
    excess_loss_db: float = 0.8

    def __post_init__(self) -> None:
        if self.num_outputs < 1:
            raise DeviceModelError(f"num_outputs must be >= 1, got {self.num_outputs}")
        if self.excess_loss_db < 0:
            raise DeviceModelError(
                f"excess_loss_db must be >= 0, got {self.excess_loss_db}"
            )

    @property
    def num_stages(self) -> int:
        """Number of binary splitting stages (ceil(log2(num_outputs)))."""
        if self.num_outputs == 1:
            return 0
        return math.ceil(math.log2(self.num_outputs))

    @property
    def num_splitters(self) -> int:
        """Number of 1×2 splitter devices needed to build the tree."""
        return max(0, self.num_outputs - 1)

    @property
    def splitting_loss_db(self) -> float:
        """Intrinsic (ideal) splitting loss per output, in dB."""
        if self.num_outputs == 1:
            return 0.0
        return 10.0 * math.log10(self.num_outputs)

    @property
    def total_loss_db(self) -> float:
        """Total per-output loss: intrinsic splitting plus excess loss (dB)."""
        return self.splitting_loss_db + self.excess_loss_db

    @property
    def per_output_power_fraction(self) -> float:
        """Fraction of input power delivered to each output, in [0, 1]."""
        return loss_db_to_transmission(self.total_loss_db)

    @property
    def per_output_field_fraction(self) -> float:
        """E-field fraction delivered to each output (≈ 1/sqrt(N) ideal)."""
        return math.sqrt(self.per_output_power_fraction)

    def output_power_w(self, input_power_w: float) -> float:
        """Optical power at each output for ``input_power_w`` at the root (W)."""
        if input_power_w < 0:
            raise DeviceModelError(f"input_power_w must be >= 0, got {input_power_w}")
        return input_power_w * self.per_output_power_fraction

    def build_stage_splitters(self) -> list:
        """Return one :class:`MMISplitter` per stage with evenly divided excess loss.

        This is used by device-level tests to check that the tree-level loss
        equals the cascade of per-stage losses.
        """
        if self.num_stages == 0:
            return []
        per_stage = self.excess_loss_db / self.num_stages
        return [MMISplitter(excess_loss_db=per_stage) for _ in range(self.num_stages)]
