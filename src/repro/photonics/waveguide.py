"""Silicon waveguide propagation model.

The platform's routing waveguides lose 3 dB/cm (paper Section III-A, [10]).
The crossbar's row and column waveguides are long enough — a 128-cell row at a
30 µm pitch is ~4 mm — that propagation loss is one of the terms that makes
array power grow super-linearly with array size.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

from repro.constants import (
    field_transmission_from_loss_db,
    loss_db_to_transmission,
)
from repro.errors import DeviceModelError


@dataclass(frozen=True)
class Waveguide:
    """A straight silicon waveguide segment.

    Parameters
    ----------
    length_m:
        Physical length of the segment in metres.
    loss_db_per_cm:
        Propagation loss in dB per centimetre.
    group_index:
        Group index used for propagation-delay estimates.
    effective_index:
        Effective index used for the propagation phase.
    wavelength_m:
        Operating wavelength (m).
    """

    length_m: float
    loss_db_per_cm: float = 3.0
    group_index: float = 4.2
    effective_index: float = 2.4
    wavelength_m: float = 1.31e-6

    def __post_init__(self) -> None:
        if self.length_m < 0:
            raise DeviceModelError(f"waveguide length must be >= 0, got {self.length_m}")
        if self.loss_db_per_cm < 0:
            raise DeviceModelError(
                f"waveguide loss must be >= 0 dB/cm, got {self.loss_db_per_cm}"
            )
        if self.wavelength_m <= 0:
            raise DeviceModelError(f"wavelength must be > 0, got {self.wavelength_m}")

    # ------------------------------------------------------------------ losses
    @property
    def loss_db(self) -> float:
        """Total propagation loss of the segment (dB)."""
        return self.loss_db_per_cm * self.length_m * 100.0

    @property
    def power_transmission(self) -> float:
        """Optical power transmission of the segment, in [0, 1]."""
        return loss_db_to_transmission(self.loss_db)

    @property
    def field_transmission(self) -> float:
        """Electric-field (amplitude) transmission of the segment."""
        return field_transmission_from_loss_db(self.loss_db)

    # ------------------------------------------------------------------ phase
    @property
    def phase_rad(self) -> float:
        """Propagation phase accumulated along the segment (radians)."""
        return 2.0 * math.pi * self.effective_index * self.length_m / self.wavelength_m

    @property
    def group_delay_s(self) -> float:
        """Group delay of the segment (s)."""
        return self.group_index * self.length_m / 299_792_458.0

    def propagate(self, field_in: complex) -> complex:
        """Propagate a complex E-field amplitude through the segment.

        Both the amplitude attenuation and the propagation phase are applied.
        """
        return field_in * self.field_transmission * cmath.exp(-1j * self.phase_rad)
