"""Directional-coupler model.

The crossbar uses directional couplers (DCs) twice per unit cell: one taps a
column-dependent fraction ``k_in[j]`` of the row E-field into the cell's
bended waveguide, the other couples the PCM-weighted product into the column
waveguide with a row-dependent strength ``k_out[i]``.  Designing these
coupling coefficients correctly is what makes the single-wavelength coherent
summation of Eq. (1) possible (see
:func:`repro.crossbar.array.design_input_coupling` /
:func:`design_output_coupling`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.constants import loss_db_to_transmission
from repro.errors import DeviceModelError


@dataclass(frozen=True)
class DirectionalCoupler:
    """A 2×2 directional coupler with power cross-coupling ratio ``kappa``.

    Parameters
    ----------
    kappa:
        Fraction of optical *power* transferred from the through port to the
        cross port, in [0, 1].
    excess_loss_db:
        Additional insertion loss applied to both outputs (dB).
    """

    kappa: float
    excess_loss_db: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.kappa <= 1.0:
            raise DeviceModelError(f"kappa must be in [0, 1], got {self.kappa}")
        if self.excess_loss_db < 0.0:
            raise DeviceModelError(
                f"excess_loss_db must be >= 0, got {self.excess_loss_db}"
            )

    # ---------------------------------------------------------------- field
    @property
    def through_field(self) -> float:
        """E-field transmission to the through port (no excess loss)."""
        return math.sqrt(1.0 - self.kappa)

    @property
    def cross_field(self) -> float:
        """E-field transmission to the cross port (no excess loss)."""
        return math.sqrt(self.kappa)

    @property
    def excess_field(self) -> float:
        """E-field factor for the excess insertion loss."""
        return math.sqrt(loss_db_to_transmission(self.excess_loss_db))

    def split(self, field_in: complex) -> Tuple[complex, complex]:
        """Split an input E-field into (through, cross) output fields.

        The cross port picks up the conventional 90° coupling phase
        (multiplication by ``1j``); the coherent crossbar model compensates
        this with its path-length calibration, so the functional array model
        works with magnitudes and uses this method only in device-level
        tests.
        """
        through = field_in * self.through_field * self.excess_field
        cross = field_in * self.cross_field * self.excess_field * 1j
        return through, cross

    def combine(self, field_through_in: complex, field_cross_in: complex) -> complex:
        """Coherently combine a through-port field and a cross-port field.

        This is the operation used along each column waveguide: the
        accumulated column field passes straight through while the unit-cell
        product field is injected via the cross port.
        """
        through, _ = self.split(field_through_in)
        injected = field_cross_in * self.cross_field * self.excess_field * 1j
        return through + injected

    # ---------------------------------------------------------------- power
    @property
    def through_power(self) -> float:
        """Power transmission to the through port including excess loss."""
        return (1.0 - self.kappa) * loss_db_to_transmission(self.excess_loss_db)

    @property
    def cross_power(self) -> float:
        """Power transmission to the cross port including excess loss."""
        return self.kappa * loss_db_to_transmission(self.excess_loss_db)

    def is_power_conserving(self, tolerance: float = 1e-12) -> bool:
        """True when the coupler conserves power apart from its excess loss."""
        total = self.through_power + self.cross_power
        return abs(total - loss_db_to_transmission(self.excess_loss_db)) <= tolerance
