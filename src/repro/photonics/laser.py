"""Laser source model.

The crossbar operates on a single wavelength from a single laser shared by
both cores.  Only the wall-plug efficiency matters for system power: the
paper assumes 15 %, so the electrical laser power is the required optical
power divided by 0.15.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceModelError


@dataclass(frozen=True)
class LaserSource:
    """A continuous-wave laser characterised by its wall-plug efficiency.

    Parameters
    ----------
    wall_plug_efficiency:
        Optical output power divided by electrical input power, in (0, 1].
    wavelength_m:
        Emission wavelength (m).
    max_output_power_w:
        Maximum optical output power the device can emit (W).
    min_output_power_w:
        Minimum practical optical output power (W); requests below this are
        rounded up, modelling the laser's threshold/bias floor.
    rin_db_per_hz:
        Relative intensity noise (dB/Hz), used by the noise model.
    """

    wall_plug_efficiency: float = 0.15
    wavelength_m: float = 1.31e-6
    max_output_power_w: float = 10.0
    min_output_power_w: float = 1e-3
    rin_db_per_hz: float = -150.0

    def __post_init__(self) -> None:
        if not 0.0 < self.wall_plug_efficiency <= 1.0:
            raise DeviceModelError(
                f"wall_plug_efficiency must be in (0, 1], got {self.wall_plug_efficiency}"
            )
        if self.wavelength_m <= 0:
            raise DeviceModelError(f"wavelength must be > 0, got {self.wavelength_m}")
        if self.min_output_power_w < 0 or self.max_output_power_w <= 0:
            raise DeviceModelError("laser power limits must be positive")
        if self.min_output_power_w > self.max_output_power_w:
            raise DeviceModelError(
                "min_output_power_w must not exceed max_output_power_w "
                f"({self.min_output_power_w} > {self.max_output_power_w})"
            )

    def clamp_output_power(self, requested_w: float) -> float:
        """Clamp a requested optical output power to the laser's capabilities.

        Raises :class:`DeviceModelError` if the request exceeds the maximum;
        requests below the minimum are rounded up to the minimum.
        """
        if requested_w < 0:
            raise DeviceModelError(f"requested power must be >= 0, got {requested_w}")
        if requested_w > self.max_output_power_w:
            raise DeviceModelError(
                f"required laser power {requested_w:.3f} W exceeds the device maximum "
                f"{self.max_output_power_w:.3f} W — the design point is infeasible"
            )
        return max(requested_w, self.min_output_power_w)

    def electrical_power_w(self, optical_output_w: float) -> float:
        """Electrical (wall-plug) power for a given optical output power (W)."""
        clamped = self.clamp_output_power(optical_output_w)
        return clamped / self.wall_plug_efficiency

    def optical_power_w(self, electrical_input_w: float) -> float:
        """Optical output power produced from a given electrical power (W)."""
        if electrical_input_w < 0:
            raise DeviceModelError(
                f"electrical_input_w must be >= 0, got {electrical_input_w}"
            )
        return electrical_input_w * self.wall_plug_efficiency

    def rin_power_fraction(self, bandwidth_hz: float) -> float:
        """Integrated relative-intensity-noise power fraction over a bandwidth."""
        if bandwidth_hz <= 0:
            raise DeviceModelError(f"bandwidth_hz must be > 0, got {bandwidth_hz}")
        return 10.0 ** (self.rin_db_per_hz / 10.0) * bandwidth_hz
