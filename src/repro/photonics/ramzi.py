"""Ring-assisted Mach-Zehnder (RAMZI) transmitter model.

Coherent operation requires the *phase* of each row's E-field to stay constant
while its *amplitude* carries the data.  A bare ring modulator changes both;
the paper therefore proposes a ring-assisted MZI with one ring ODAC per arm,
operated push-pull so the output amplitude follows the data while the phase
stays fixed (Section III-B.1, [16]).

For system modelling the RAMZI is characterised by its constant-phase
amplitude transfer function and by the power/area of its two ring ODACs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeviceModelError
from repro.photonics.ring import RingResonatorODAC


@dataclass(frozen=True)
class RAMZIModulator:
    """A ring-assisted MZI amplitude modulator with constant output phase.

    Parameters
    ----------
    odac:
        The ring-resonator ODAC placed in each arm.
    num_rings:
        Number of rings (ODACs) in the modulator; the push-pull RAMZI uses 2.
    excess_loss_db:
        MZI splitter/combiner excess loss (dB).
    """

    odac: RingResonatorODAC = field(default_factory=RingResonatorODAC)
    num_rings: int = 2
    excess_loss_db: float = 0.2

    def __post_init__(self) -> None:
        if self.num_rings < 1:
            raise DeviceModelError(f"num_rings must be >= 1, got {self.num_rings}")
        if self.excess_loss_db < 0:
            raise DeviceModelError(
                f"excess_loss_db must be >= 0, got {self.excess_loss_db}"
            )

    # ------------------------------------------------------------------ optics
    @property
    def excess_field_transmission(self) -> float:
        """E-field transmission factor from the MZI excess loss."""
        return float(10.0 ** (-self.excess_loss_db / 20.0))

    def modulate(self, values: np.ndarray) -> np.ndarray:
        """Produce constant-phase output field amplitudes for normalised values.

        The returned amplitudes are real and non-negative: the RAMZI's defining
        property is that the data does not modulate the optical phase.
        """
        amplitudes = self.odac.modulate(values)
        return amplitudes * self.excess_field_transmission

    def phase_is_constant(self, values: np.ndarray) -> bool:
        """Check the constant-phase property over a set of drive values."""
        modulated = self.modulate(values)
        return bool(np.all(np.isreal(modulated)) and np.all(modulated >= 0.0))

    # ------------------------------------------------------------------ costs
    @property
    def dynamic_power_w(self) -> float:
        """Total driver dynamic power of all rings (W)."""
        return self.num_rings * self.odac.dynamic_power_w

    @property
    def thermal_tuning_power_w(self) -> float:
        """Total static thermal tuning power of all rings (W)."""
        return self.num_rings * self.odac.thermal_tuning_power_w

    @property
    def total_power_w(self) -> float:
        """Dynamic plus tuning power of the whole transmitter (W)."""
        return self.dynamic_power_w + self.thermal_tuning_power_w

    @property
    def area_mm2(self) -> float:
        """Total transmitter area (mm²)."""
        return self.num_rings * self.odac.area_mm2

    @property
    def insertion_loss_db(self) -> float:
        """Static insertion loss of the transmitter excluding the OMA penalty (dB)."""
        return self.excess_loss_db
