"""Photonic device models of the 45 nm monolithic silicon-photonic platform.

Each device is a small class exposing

* its optical behaviour (power/field transmission, transfer functions), used
  by the functional crossbar model in :mod:`repro.crossbar`, and
* its electrical overheads (static power, energy per operation, area), used
  by the chip power/area models in :mod:`repro.perf`.

The numeric defaults come from the paper's Section III loss/energy table and
are centralised in :class:`repro.config.TechnologyConfig`.
"""

from repro.photonics.coupler import DirectionalCoupler
from repro.photonics.grating import GratingCoupler
from repro.photonics.laser import LaserSource
from repro.photonics.loss_budget import CrossbarLossBudget, LossContribution
from repro.photonics.mmi import MMICrossing, MMISplitter
from repro.photonics.pcm import PCMCell, PCMState
from repro.photonics.phase_shifter import ThermalPhaseShifter
from repro.photonics.photodiode import BalancedPhotodiode, CoherentReceiverFrontEnd
from repro.photonics.ramzi import RAMZIModulator
from repro.photonics.ring import RingResonatorODAC
from repro.photonics.splitter import SplitterTree
from repro.photonics.waveguide import Waveguide

__all__ = [
    "BalancedPhotodiode",
    "CoherentReceiverFrontEnd",
    "CrossbarLossBudget",
    "DirectionalCoupler",
    "GratingCoupler",
    "LaserSource",
    "LossContribution",
    "MMICrossing",
    "MMISplitter",
    "PCMCell",
    "PCMState",
    "RAMZIModulator",
    "RingResonatorODAC",
    "SplitterTree",
    "ThermalPhaseShifter",
    "Waveguide",
]
