"""Optical link budget of an N×M coherent crossbar.

The laser light traverses, in order: the grating coupler, the splitter tree,
the row transmitter (RAMZI with its OMA penalty), the row waveguide with its
MMI crossings and input directional couplers, one unit cell (PCM section),
and finally the column waveguide with its output couplers and per-cell phase
shifters, before reaching the balanced photodiode.

Two kinds of loss are distinguished:

* *intrinsic distribution loss* — the unavoidable 1/M power split of the
  laser across the M column outputs implied by Eq. (1) of the paper (in the
  full-scale case the architecture is otherwise energy-conserving);
* *excess loss* — every non-ideality listed in the paper's Section III-A loss
  table.  Excess loss grows linearly in dB with the array dimensions
  (exponentially in power), which is what eventually caps the
  energy-efficient array size (Section VI-A.2).

:class:`CrossbarLossBudget` itemises both so the laser-power solver in
:mod:`repro.perf.laser_power` and the benchmarks can report a breakdown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.config.technology import TechnologyConfig
from repro.constants import loss_db_to_transmission
from repro.errors import DeviceModelError


@dataclass(frozen=True)
class LossContribution:
    """A single named contribution to the optical link budget."""

    name: str
    loss_db: float
    scales_with_array: bool

    def __post_init__(self) -> None:
        if self.loss_db < 0:
            raise DeviceModelError(
                f"loss contribution {self.name!r} must be >= 0 dB, got {self.loss_db}"
            )


class CrossbarLossBudget:
    """Worst-case optical link budget of an N×M crossbar core.

    Parameters
    ----------
    rows, columns:
        Array dimensions.
    technology:
        Device constants; defaults to the paper's 45 nm platform.
    worst_case:
        When True (default) the longest optical path (first row, last column)
        is budgeted; when False the average path is used.
    """

    def __init__(
        self,
        rows: int,
        columns: int,
        technology: TechnologyConfig | None = None,
        worst_case: bool = True,
    ) -> None:
        if rows < 1 or columns < 1:
            raise DeviceModelError(
                f"array dimensions must be >= 1, got {rows}x{columns}"
            )
        self.rows = rows
        self.columns = columns
        self.technology = technology or TechnologyConfig()
        self.worst_case = worst_case

    # ------------------------------------------------------------------ paths
    @property
    def row_cells_traversed(self) -> float:
        """Number of unit cells the light passes along the row waveguide."""
        span = self.columns - 1
        return float(span if self.worst_case else span / 2.0)

    @property
    def column_cells_traversed(self) -> float:
        """Number of unit cells the light passes along the column waveguide."""
        span = self.rows - 1
        return float(span if self.worst_case else span / 2.0)

    @property
    def path_length_m(self) -> float:
        """Physical length of the budgeted optical path inside the array (m)."""
        cells = self.row_cells_traversed + self.column_cells_traversed + 1
        return cells * self.technology.unit_cell_pitch_m

    @property
    def crossings_traversed(self) -> float:
        """Number of MMI crossings on the budgeted path."""
        return self.row_cells_traversed + self.column_cells_traversed

    # ------------------------------------------------------------------ budget
    def contributions(self) -> List[LossContribution]:
        """Itemised excess-loss contributions along the budgeted path."""
        tech = self.technology
        waveguide_loss_db = tech.waveguide_loss_db_per_cm * self.path_length_m * 100.0
        crossing_loss_db = tech.mmi_crossing_loss_db * self.crossings_traversed
        coupler_loss_db = (
            tech.directional_coupler_excess_loss_db * self.crossings_traversed
        )
        phase_shifter_loss_db = (
            tech.phase_shifter_insertion_loss_db * self.column_cells_traversed
        )
        return [
            LossContribution("grating_coupler", tech.grating_coupler_loss_db, False),
            LossContribution("splitter_tree_excess", tech.splitter_tree_loss_db, False),
            LossContribution("odac_oma_penalty", tech.odac_oma_penalty_db, False),
            LossContribution("waveguide_propagation", waveguide_loss_db, True),
            LossContribution("mmi_crossings", crossing_loss_db, True),
            LossContribution("directional_coupler_excess", coupler_loss_db, True),
            LossContribution("phase_shifters", phase_shifter_loss_db, True),
            LossContribution("pcm_insertion", tech.pcm_insertion_loss_db, False),
        ]

    @property
    def excess_loss_db(self) -> float:
        """Total excess loss along the budgeted path (dB)."""
        return sum(contribution.loss_db for contribution in self.contributions())

    @property
    def array_scaling_loss_db(self) -> float:
        """The part of the excess loss that grows with the array dimensions (dB)."""
        return sum(
            contribution.loss_db
            for contribution in self.contributions()
            if contribution.scales_with_array
        )

    @property
    def fixed_loss_db(self) -> float:
        """The part of the excess loss that is independent of array size (dB)."""
        return self.excess_loss_db - self.array_scaling_loss_db

    @property
    def distribution_loss_db(self) -> float:
        """Intrinsic 1/M power-distribution loss per column output (dB)."""
        return 10.0 * math.log10(self.columns)

    @property
    def total_loss_db(self) -> float:
        """Excess plus intrinsic distribution loss per column output (dB)."""
        return self.excess_loss_db + self.distribution_loss_db

    @property
    def excess_transmission(self) -> float:
        """Power transmission corresponding to the excess loss, in [0, 1]."""
        return loss_db_to_transmission(self.excess_loss_db)

    @property
    def total_transmission(self) -> float:
        """Power transmission from laser to one column output at full scale."""
        return loss_db_to_transmission(self.total_loss_db)

    # ------------------------------------------------------------------ reports
    def as_dict(self) -> Dict[str, float]:
        """Budget summary keyed by contribution name, plus totals (dB)."""
        summary = {c.name: c.loss_db for c in self.contributions()}
        summary["distribution_1_over_M"] = self.distribution_loss_db
        summary["total_excess_db"] = self.excess_loss_db
        summary["total_db"] = self.total_loss_db
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CrossbarLossBudget({self.rows}x{self.columns}, "
            f"excess={self.excess_loss_db:.2f} dB, total={self.total_loss_db:.2f} dB)"
        )
