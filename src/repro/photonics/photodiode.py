"""Balanced photodiode and coherent receiver front-end models.

Each crossbar column terminates in a coherent receiver: the column field is
mixed with a local-oscillator tap of the laser in a directional coupler and
detected by a balanced photodiode pair, producing a photocurrent proportional
to ``|E_laser| * |E_column|`` (paper Section III-A.2).  The photocurrent is
amplified by a TIA and digitised by an ADC (modelled in
:mod:`repro.electronics`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.constants import (
    BOLTZMANN_CONSTANT_J_K,
    ELEMENTARY_CHARGE_C,
    ROOM_TEMPERATURE_K,
    photon_energy_j,
)
from repro.errors import DeviceModelError


@dataclass(frozen=True)
class BalancedPhotodiode:
    """A balanced photodiode pair for coherent detection.

    Parameters
    ----------
    responsivity_a_per_w:
        Photodiode responsivity (A/W).
    dark_current_a:
        Dark current per diode (A).
    bandwidth_hz:
        Detection bandwidth (Hz).
    """

    responsivity_a_per_w: float = 1.0
    dark_current_a: float = 10e-9
    bandwidth_hz: float = 10e9

    def __post_init__(self) -> None:
        if self.responsivity_a_per_w <= 0:
            raise DeviceModelError(
                f"responsivity must be > 0, got {self.responsivity_a_per_w}"
            )
        if self.dark_current_a < 0:
            raise DeviceModelError(f"dark current must be >= 0, got {self.dark_current_a}")
        if self.bandwidth_hz <= 0:
            raise DeviceModelError(f"bandwidth must be > 0, got {self.bandwidth_hz}")

    def balanced_current(self, lo_power_w: float, signal_power_w: float) -> float:
        """Balanced (difference) photocurrent for LO and signal powers (A).

        For a 50/50 mixing coupler the balanced output is
        ``2 R sqrt(P_lo P_sig)``; common-mode terms cancel.
        """
        if lo_power_w < 0 or signal_power_w < 0:
            raise DeviceModelError("optical powers must be >= 0")
        return 2.0 * self.responsivity_a_per_w * math.sqrt(lo_power_w * signal_power_w)

    def shot_noise_current_a(self, average_power_w: float) -> float:
        """RMS shot-noise current for a given average detected power (A)."""
        if average_power_w < 0:
            raise DeviceModelError("average_power_w must be >= 0")
        photocurrent = self.responsivity_a_per_w * average_power_w + self.dark_current_a
        return math.sqrt(2.0 * ELEMENTARY_CHARGE_C * photocurrent * self.bandwidth_hz)


@dataclass(frozen=True)
class CoherentReceiverFrontEnd:
    """Coherent receiver front-end: balanced PD + TIA input-referred noise.

    Used by the laser-power solver to determine how much optical power must
    reach each column output so that the signal-to-noise ratio supports the
    target bit precision at the MAC rate.
    """

    photodiode: BalancedPhotodiode = BalancedPhotodiode()
    tia_input_noise_a_rms: float = 1.2e-6
    tia_transimpedance_ohm: float = 5e3
    wavelength_m: float = 1.31e-6

    def __post_init__(self) -> None:
        if self.tia_input_noise_a_rms < 0:
            raise DeviceModelError("tia_input_noise_a_rms must be >= 0")
        if self.tia_transimpedance_ohm <= 0:
            raise DeviceModelError("tia_transimpedance_ohm must be > 0")

    def output_voltage(self, lo_power_w: float, signal_power_w: float) -> float:
        """TIA output voltage for given LO / signal powers (V)."""
        current = self.photodiode.balanced_current(lo_power_w, signal_power_w)
        return current * self.tia_transimpedance_ohm

    def thermal_noise_current_a(self) -> float:
        """Equivalent thermal (Johnson) noise current of the TIA input (A rms)."""
        return math.sqrt(
            4.0
            * BOLTZMANN_CONSTANT_J_K
            * ROOM_TEMPERATURE_K
            * self.photodiode.bandwidth_hz
            / self.tia_transimpedance_ohm
        )

    def total_noise_current_a(self, lo_power_w: float, signal_power_w: float) -> float:
        """Total RMS noise current: shot + thermal + TIA input noise (A)."""
        average = 0.5 * (lo_power_w + signal_power_w)
        shot = self.photodiode.shot_noise_current_a(average)
        thermal = self.thermal_noise_current_a()
        return math.sqrt(shot**2 + thermal**2 + self.tia_input_noise_a_rms**2)

    def snr(self, lo_power_w: float, signal_power_w: float) -> float:
        """Electrical signal-to-noise power ratio of the detected output."""
        signal = self.photodiode.balanced_current(lo_power_w, signal_power_w)
        noise = self.total_noise_current_a(lo_power_w, signal_power_w)
        if noise == 0.0:
            return math.inf
        return (signal / noise) ** 2

    def effective_bits(self, lo_power_w: float, signal_power_w: float) -> float:
        """Effective number of bits implied by the receiver SNR (ENOB)."""
        snr = self.snr(lo_power_w, signal_power_w)
        if snr <= 0:
            return 0.0
        snr_db = 10.0 * math.log10(snr)
        return max(0.0, (snr_db - 1.76) / 6.02)

    def minimum_signal_power_for_bits(
        self, target_bits: float, lo_power_w: float = 1e-3
    ) -> float:
        """Signal power needed at the column output for ``target_bits`` ENOB (W).

        A simple bisection over signal power; used as a cross-check for the
        fixed receiver-sensitivity number in :class:`TechnologyConfig`.
        """
        if target_bits <= 0:
            return 0.0
        low, high = 1e-15, 1e-1
        if self.effective_bits(lo_power_w, high) < target_bits:
            raise DeviceModelError(
                f"receiver cannot reach {target_bits} bits even at {high} W signal power"
            )
        for _ in range(200):
            mid = math.sqrt(low * high)
            if self.effective_bits(lo_power_w, mid) >= target_bits:
                high = mid
            else:
                low = mid
        return high

    def shot_noise_limited_photons_per_symbol(self, target_bits: float) -> float:
        """Photons per symbol needed at the shot-noise limit for ``target_bits``."""
        if target_bits <= 0:
            return 0.0
        snr_required = 10.0 ** ((6.02 * target_bits + 1.76) / 10.0)
        # For coherent detection, SNR ~= 4 * N_photons (LO-limited); invert.
        return snr_required / 4.0

    def photon_energy(self) -> float:
        """Energy of one photon at the configured wavelength (J)."""
        return photon_energy_j(self.wavelength_m)
