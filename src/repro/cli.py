"""Command-line interface.

``python -m repro <command>`` exposes the most common workflows without
writing any Python:

* ``evaluate``  — evaluate a workload on a design point and print the report;
* ``compare``   — Table I style comparison against the NVIDIA A100;
* ``optimize``  — run the Section VI-B design-space optimization flow;
* ``figure``    — regenerate one of the paper's figures/tables and write the
  series to CSV/JSON;
* ``infer``     — run batched functional INT6 inference on the optical
  crossbar and report optical-vs-float agreement plus throughput;
* ``workloads`` — list the bundled CNN workload descriptions.

Examples
--------
::

    python -m repro evaluate --network resnet50 --rows 128 --columns 128
    python -m repro compare --network resnet50
    python -m repro optimize --network resnet50 --area-cap 160
    python -m repro figure --name fig6 --output fig6.csv
    python -m repro infer --network lenet5 --images 16 --rows 64 --columns 64
    python -m repro infer --network lenet5 --images 16 --workers thread
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.analysis import (
    generate_fig1_landscape,
    generate_fig6_array_sweep,
    generate_fig7a_batch_power,
    generate_fig7b_sram_ipsw,
    generate_fig7c_dual_core_ips,
    generate_fig8_breakdown,
    generate_table1,
    save_rows,
)
from repro.config import ChipConfig, SramConfig, default_sweep_chip
from repro.core.inference import (
    FunctionalInferenceEngine,
    agreement_metrics,
    generate_random_weights,
)
from repro.core.sharding import resolve_worker_count
from repro.crossbar.noise import CrossbarNoiseModel
from repro.errors import SimulationError
from repro.core import (
    DesignOptimizer,
    SimulationFramework,
    compare_to_gpu,
    format_comparison_table,
    format_metrics_report,
)
from repro.nn import (
    Network,
    build_alexnet,
    build_lenet5,
    build_mlp,
    build_mobilenet_v1,
    build_resnet18,
    build_resnet34,
    build_resnet50,
    build_vgg16,
)

#: Workload name -> builder mapping used by the ``--network`` option.
WORKLOADS: Dict[str, Callable[[], Network]] = {
    "resnet50": build_resnet50,
    "resnet34": build_resnet34,
    "resnet18": build_resnet18,
    "vgg16": build_vgg16,
    "alexnet": build_alexnet,
    "mobilenet_v1": build_mobilenet_v1,
    "lenet5": build_lenet5,
    "mlp": build_mlp,
}

#: Figure name -> generator mapping used by the ``figure`` command.
FIGURES = {
    "fig1": generate_fig1_landscape,
    "fig6": generate_fig6_array_sweep,
    "fig7a": generate_fig7a_batch_power,
    "fig7b": generate_fig7b_sram_ipsw,
    "fig7c": generate_fig7c_dual_core_ips,
    "fig8": generate_fig8_breakdown,
    "table1": generate_table1,
}


def _parse_workers(value: str):
    """Parse the ``--workers`` option: 'serial', 'thread' or a positive int.

    Delegates validation to :func:`repro.core.sharding.resolve_worker_count`
    so the CLI accepts exactly the specs the execution engine does.
    """
    spec: "str | int" = value
    if value not in ("serial", "thread"):
        try:
            spec = int(value)
        except ValueError:
            pass
    try:
        resolve_worker_count(spec, num_cores=1)
    except SimulationError as error:
        raise argparse.ArgumentTypeError(str(error))
    return spec


def build_network(name: str) -> Network:
    """Build a bundled workload by name."""
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown network {name!r}; choose from {', '.join(sorted(WORKLOADS))}"
        )


def config_from_args(args: argparse.Namespace) -> ChipConfig:
    """Build a ChipConfig from the common CLI options."""
    return ChipConfig(
        rows=args.rows,
        columns=args.columns,
        num_cores=args.cores,
        batch_size=args.batch,
        mac_clock_hz=args.clock_ghz * 1e9,
        dram_kind=args.dram,
        sram=SramConfig(
            input_mb=args.input_sram_mb,
            filter_mb=args.filter_sram_mb,
            output_mb=args.output_sram_mb,
            accumulator_mb=args.accumulator_sram_mb,
        ),
    )


def _add_chip_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=128, help="crossbar rows (default 128)")
    parser.add_argument("--columns", type=int, default=128, help="crossbar columns (default 128)")
    parser.add_argument("--cores", type=int, default=2, choices=(1, 2), help="crossbar cores")
    parser.add_argument("--batch", type=int, default=32, help="batch size (default 32)")
    parser.add_argument("--clock-ghz", type=float, default=10.0, help="MAC clock in GHz")
    parser.add_argument("--dram", choices=("hbm", "pcie"), default="hbm", help="DRAM attachment")
    parser.add_argument("--input-sram-mb", type=float, default=26.3)
    parser.add_argument("--filter-sram-mb", type=float, default=0.75)
    parser.add_argument("--output-sram-mb", type=float, default=0.75)
    parser.add_argument("--accumulator-sram-mb", type=float, default=0.75)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optical PCM crossbar accelerator modelling (Sturm & Moazeni, DATE 2023)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    evaluate = subparsers.add_parser("evaluate", help="evaluate a workload on a design point")
    evaluate.add_argument("--network", default="resnet50", help="workload name")
    _add_chip_arguments(evaluate)
    evaluate.add_argument("--json", action="store_true", help="print a JSON summary instead of text")

    compare = subparsers.add_parser("compare", help="Table I comparison against the NVIDIA A100")
    compare.add_argument("--network", default="resnet50", help="workload name")
    _add_chip_arguments(compare)

    optimize = subparsers.add_parser("optimize", help="run the Section VI-B optimization flow")
    optimize.add_argument("--network", default="resnet50", help="workload name")
    optimize.add_argument("--area-cap", type=float, default=160.0, help="chip area cap in mm^2")

    figure = subparsers.add_parser("figure", help="regenerate a paper figure/table")
    figure.add_argument("--name", required=True, choices=sorted(FIGURES), help="figure id")
    figure.add_argument("--network", default="resnet50", help="workload name")
    figure.add_argument("--output", default=None, help="write the series to this CSV/JSON file")

    infer = subparsers.add_parser(
        "infer", help="batched functional INT6 inference on the optical crossbar"
    )
    infer.add_argument("--network", default="lenet5", help="workload name")
    _add_chip_arguments(infer)
    infer.add_argument(
        "--images", type=int, default=8, help="number of random images in the batch"
    )
    infer.add_argument(
        "--noise",
        choices=("none", "typical", "pessimistic"),
        default="none",
        help="analog impairment preset for the optical datapath",
    )
    infer.add_argument(
        "--workers",
        type=_parse_workers,
        default="serial",
        help=(
            "sharded tile execution: 'serial' (default), 'thread' (one worker "
            "per crossbar core) or a positive worker count; results are "
            "bitwise identical for every setting"
        ),
    )
    infer.add_argument("--weight-seed", type=int, default=0, help="synthetic weight seed")
    infer.add_argument("--image-seed", type=int, default=1, help="random image seed")
    infer.add_argument("--json", action="store_true", help="print a JSON summary instead of text")

    subparsers.add_parser("workloads", help="list the bundled workload descriptions")
    return parser


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------


def _cmd_evaluate(args: argparse.Namespace) -> int:
    network = build_network(args.network)
    config = config_from_args(args)
    metrics = SimulationFramework(network).evaluate(config)
    if args.json:
        print(json.dumps(metrics.summary(), indent=2, default=float))
    else:
        print(format_metrics_report(metrics))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    network = build_network(args.network)
    config = config_from_args(args)
    metrics = SimulationFramework(network).evaluate(config)
    print(format_comparison_table(compare_to_gpu(metrics)))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    network = build_network(args.network)
    optimizer = DesignOptimizer(network, default_sweep_chip(), area_cap_mm2=args.area_cap)
    result = optimizer.optimize()
    print(json.dumps(result.summary(), indent=2, default=float))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    network = build_network(args.network)
    generator = FIGURES[args.name]
    data = generator(network=network)
    if args.output:
        if isinstance(data, list):
            save_rows(data, args.output)
        else:
            with open(args.output, "w") as handle:
                json.dump(data, handle, indent=2, default=float)
        print(f"wrote {args.name} series to {args.output}")
    else:
        print(json.dumps(data, indent=2, default=float))
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    if args.images < 1:
        raise SystemExit(f"--images must be >= 1, got {args.images}")
    network = build_network(args.network)
    config = config_from_args(args)
    noise_presets = {
        "none": None,
        "typical": CrossbarNoiseModel.typical(),
        "pessimistic": CrossbarNoiseModel.pessimistic(),
    }
    weights = generate_random_weights(network, seed=args.weight_seed, scale=0.3)
    engine = FunctionalInferenceEngine(
        network,
        weights,
        config,
        noise_model=noise_presets[args.noise],
        execution=args.workers,
    )
    rng = np.random.default_rng(args.image_seed)
    images = rng.uniform(0.0, 1.0, (args.images,) + network.input_shape.as_tuple())

    # The first (cold) batch pays the one-time PCM tile programming; the
    # second (warm) batch shows the steady-state throughput the tile cache
    # enables.  Both are reported so the cache's effect is visible.
    start = time.perf_counter()
    optical = engine.run_batch(images)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    engine.run_batch(images)
    warm_s = time.perf_counter() - start
    reference = engine.run_batch_reference(images)

    agreement = agreement_metrics(optical, reference)
    stats = engine.accelerator.functional_statistics()
    summary = {
        "network": args.network,
        "images": args.images,
        "noise": args.noise,
        "workers": str(args.workers),
        "per_core_tile_dispatches": list(stats["per_core_tile_dispatches"]),
        "cold_batch_seconds": cold_s,
        "warm_batch_seconds": warm_s,
        "images_per_second": args.images / warm_s if warm_s > 0 else float("inf"),
        "mean_relative_error": agreement["mean_relative_error"],
        "top1_match_rate": agreement["top1_match_rate"],
        "programming_events": stats["programming_events"],
        "tile_cache_hits": stats["tile_cache_hits"],
        "tile_cache_misses": stats["tile_cache_misses"],
    }
    if args.json:
        print(json.dumps(summary, indent=2, default=float))
    else:
        print(
            f"{args.network}: {args.images} images, cold batch {cold_s:.3f} s, "
            f"warm batch {warm_s:.3f} s "
            f"({summary['images_per_second']:.1f} images/s, noise={args.noise})"
        )
        print(
            f"  agreement: mean relative error {summary['mean_relative_error']:.4f}, "
            f"top-1 match rate {summary['top1_match_rate']:.2f}"
        )
        print(
            f"  PCM programming events: {summary['programming_events']} "
            f"(tile cache: {summary['tile_cache_hits']} hits, "
            f"{summary['tile_cache_misses']} misses)"
        )
        dispatches = ", ".join(
            f"core {core}: {count}"
            for core, count in enumerate(summary["per_core_tile_dispatches"])
        )
        print(f"  tile GEMMs per crossbar core (workers={summary['workers']}): {dispatches}")
    return 0


def _cmd_workloads(_: argparse.Namespace) -> int:
    for name in sorted(WORKLOADS):
        network = WORKLOADS[name]()
        print(
            f"{name:<14s} {network.total_macs / 1e9:7.2f} GMAC   "
            f"{network.total_weights / 1e6:7.2f} M params   "
            f"{len(network.crossbar_layers):3d} crossbar layers"
        )
    return 0


COMMANDS = {
    "evaluate": _cmd_evaluate,
    "compare": _cmd_compare,
    "optimize": _cmd_optimize,
    "figure": _cmd_figure,
    "infer": _cmd_infer,
    "workloads": _cmd_workloads,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
