"""Command-line interface.

``python -m repro <command>`` exposes the most common workflows without
writing any Python:

* ``evaluate``  — evaluate a workload on a design point and print the report;
* ``compare``   — Table I style comparison against the NVIDIA A100;
* ``optimize``  — run the Section VI-B design-space optimization flow;
* ``figure``    — regenerate one of the paper's figures/tables and write the
  series to CSV/JSON;
* ``infer``     — run batched functional INT6 inference on the optical
  crossbar and report optical-vs-float agreement plus throughput;
* ``serve``     — run an online serving session (dynamic micro-batching over
  an engine-replica pool) under synthetic traffic and report SLO telemetry,
  or expose the server over HTTP with ``--http PORT``;
* ``loadgen``   — sweep open-/closed-loop load points against a fresh server
  per point (or a remote ``--url`` HTTP server) and print a
  throughput/latency table;
* ``workloads`` — list the bundled CNN workload descriptions;
* ``trace-report`` — summarise a Chrome trace-event JSON file written by
  ``serve --trace-out`` into a per-stage latency table (offline analysis);
* ``lint``      — run the project-specific static-analysis rules (RPR1xx)
  over the package source (exit 1 on any unsuppressed finding).

Examples
--------
::

    python -m repro evaluate --network resnet50 --rows 128 --columns 128
    python -m repro compare --network resnet50
    python -m repro optimize --network resnet50 --area-cap 160
    python -m repro figure --name fig6 --output fig6.csv
    python -m repro infer --network lenet5 --images 16 --rows 64 --columns 64
    python -m repro infer --network lenet5 --images 16 --workers process:2
    python -m repro serve --network lenet5 --requests 32 --rate 500 --executor thread:2
    python -m repro serve --network lenet5 --http 8080 --policy adaptive --slo-ms 50
    python -m repro loadgen --network lenet5 --mode closed --concurrency 1,2,4
    python -m repro loadgen --network lenet5 --url http://127.0.0.1:8080 --rates 250,500
    python -m repro serve --network lenet5 --requests 64 --trace-out trace.json --slow-ms 20
    python -m repro trace-report trace.json --top 3
    python -m repro lint --format json --select RPR103,RPR106
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from collections import Counter
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.analysis import (
    generate_fig1_landscape,
    generate_fig6_array_sweep,
    generate_fig7a_batch_power,
    generate_fig7b_sram_ipsw,
    generate_fig7c_dual_core_ips,
    generate_fig8_breakdown,
    generate_table1,
    save_rows,
)
from repro.config import ChipConfig, SramConfig, default_sweep_chip
from repro.core import (
    DesignOptimizer,
    SimulationFramework,
    compare_to_gpu,
    format_comparison_table,
    format_metrics_report,
)
from repro.core.inference import (
    FunctionalInferenceEngine,
    agreement_metrics,
    generate_random_weights,
)
from repro.crossbar.noise import CrossbarNoiseModel
from repro.errors import SimulationError
from repro.nn import (
    Network,
    build_alexnet,
    build_lenet5,
    build_mlp,
    build_mobilenet_v1,
    build_resnet18,
    build_resnet34,
    build_resnet50,
    build_vgg16,
)
from repro.serve import (
    ARRIVAL_PROCESSES,
    IPC_MODES,
    POLICY_KINDS,
    AsyncServeHTTPServer,
    AutoscalerPolicy,
    CircuitBreakerPolicy,
    EngineReplicaSpec,
    EngineWorkerPool,
    ExecutorSpec,
    HTTPInferenceClient,
    InferenceServer,
    LoadGenerator,
    ModelRegistry,
    ServeHTTPServer,
    mixed_model_schedule,
    parse_executor_spec,
    parse_fault_spec,
)

#: Workload name -> builder mapping used by the ``--network`` option.
WORKLOADS: Dict[str, Callable[[], Network]] = {
    "resnet50": build_resnet50,
    "resnet34": build_resnet34,
    "resnet18": build_resnet18,
    "vgg16": build_vgg16,
    "alexnet": build_alexnet,
    "mobilenet_v1": build_mobilenet_v1,
    "lenet5": build_lenet5,
    "mlp": build_mlp,
}

#: Figure name -> generator mapping used by the ``figure`` command.
FIGURES = {
    "fig1": generate_fig1_landscape,
    "fig6": generate_fig6_array_sweep,
    "fig7a": generate_fig7a_batch_power,
    "fig7b": generate_fig7b_sram_ipsw,
    "fig7c": generate_fig7c_dual_core_ips,
    "fig8": generate_fig8_breakdown,
    "table1": generate_table1,
}


def _parse_model_assignment(value: str):
    """Parse one ``--model NAME=WORKLOAD`` assignment into ``(name, workload)``.

    ``NAME`` is the hosted-model name requests route by; ``WORKLOAD`` is one
    of the bundled workload builders (see ``--network`` / ``workloads``).
    """
    name, separator, workload = value.partition("=")
    name = name.strip()
    workload = workload.strip()
    if not separator or not name or not workload:
        raise argparse.ArgumentTypeError(
            f"expected NAME=WORKLOAD (e.g. small=lenet5), got {value!r}"
        )
    if workload not in WORKLOADS:
        raise argparse.ArgumentTypeError(
            f"unknown workload {workload!r}; choose from {', '.join(sorted(WORKLOADS))}"
        )
    return name, workload


def _parse_workers(value: str) -> ExecutorSpec:
    """Parse an executor spelling shared by ``infer --workers`` and ``serve``.

    Delegates to :func:`repro.serve.parse_executor_spec`, so every command
    accepts exactly the same spellings: 'serial', 'thread', 'thread:N',
    'process', 'process:N' or a positive integer (thread pool of N).
    Malformed specs are rejected with the parser's SimulationError message.
    """
    try:
        return parse_executor_spec(value)
    except SimulationError as error:
        raise argparse.ArgumentTypeError(str(error)) from error


def _sharding_execution(spec: ExecutorSpec) -> "str | int":
    """Map a serial/thread :class:`ExecutorSpec` onto the accelerator's
    intra-engine tile-sharding spelling (``process`` does not apply there)."""
    if spec.kind == "serial":
        return "serial"
    return "thread" if spec.count is None else spec.count


#: Noise preset name -> model used by the functional commands.
NOISE_PRESETS = {
    "none": lambda: None,
    "typical": CrossbarNoiseModel.typical,
    "pessimistic": CrossbarNoiseModel.pessimistic,
}


def build_network(name: str) -> Network:
    """Build a bundled workload by name."""
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown network {name!r}; choose from {', '.join(sorted(WORKLOADS))}"
        ) from None


def config_from_args(args: argparse.Namespace) -> ChipConfig:
    """Build a ChipConfig from the common CLI options."""
    return ChipConfig(
        rows=args.rows,
        columns=args.columns,
        num_cores=args.cores,
        batch_size=args.batch,
        mac_clock_hz=args.clock_ghz * 1e9,
        dram_kind=args.dram,
        sram=SramConfig(
            input_mb=args.input_sram_mb,
            filter_mb=args.filter_sram_mb,
            output_mb=args.output_sram_mb,
            accumulator_mb=args.accumulator_sram_mb,
        ),
    )


def _parse_number_list(value: str, convert=float):
    """Parse a comma-separated list of positive numbers ('250,500,1000')."""
    try:
        numbers = tuple(convert(part) for part in value.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {value!r}"
        ) from None
    if not numbers or any(number <= 0 for number in numbers):
        raise argparse.ArgumentTypeError(f"expected positive numbers, got {value!r}")
    return numbers


def _parse_int_list(value: str):
    """Parse a comma-separated list of positive integers ('1,2,4')."""
    return _parse_number_list(value, convert=int)


def _positive_int(value: str) -> int:
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value!r}"
        ) from None
    if number < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value!r}")
    return number


def _positive_float(value: str) -> float:
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value!r}"
        ) from None
    if number <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {value!r}")
    return number


def _nonnegative_float(value: str) -> float:
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {value!r}"
        ) from None
    if number < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative number, got {value!r}")
    return number


def _nonnegative_int(value: str) -> int:
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value!r}"
        ) from None
    if number < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {value!r}")
    return number


def _unit_interval_float(value: str) -> float:
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number in [0, 1], got {value!r}"
        ) from None
    if not (0.0 <= number <= 1.0):
        raise argparse.ArgumentTypeError(f"expected a number in [0, 1], got {value!r}")
    return number


def _parse_fault_rule(value: str) -> str:
    """Validate an ``--inject-fault`` spelling eagerly (keep the string)."""
    try:
        parse_fault_spec(value)
    except SimulationError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    return value


def _add_serving_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by the ``serve`` and ``loadgen`` commands."""
    parser.add_argument("--network", default="lenet5", help="workload name")
    _add_chip_arguments(parser)
    parser.add_argument(
        "--model",
        action="append",
        dest="models",
        type=_parse_model_assignment,
        metavar="NAME=WORKLOAD",
        default=None,
        help=(
            "host a named model (repeatable): NAME routes requests, WORKLOAD "
            "is a bundled workload (e.g. --model small=lenet5 --model mlp=mlp); "
            "without --model the server hosts one model named after --network"
        ),
    )
    parser.add_argument(
        "--mix",
        type=_parse_number_list,
        default=None,
        help=(
            "per-model traffic weights for synthetic multi-model traffic "
            "(comma-separated, one per --model; default: uniform)"
        ),
    )
    parser.add_argument(
        "--executor",
        type=_parse_workers,
        default="serial",
        help=(
            "engine-replica pool: 'serial', 'thread[:N]' or 'process:N' "
            "(process replicas scale past the GIL)"
        ),
    )
    parser.add_argument(
        "--ipc",
        choices=IPC_MODES,
        default="pickle",
        help=(
            "tensor transport for process executors: 'pickle' serializes "
            "batches across the worker pipe, 'shm' moves them zero-copy "
            "through a shared-memory slot arena (bitwise-identical outputs)"
        ),
    )
    parser.add_argument(
        "--max-batch", type=_positive_int, default=8, help="micro-batch flush-on-full size"
    )
    parser.add_argument(
        "--max-wait-ms",
        type=_nonnegative_float,
        default=2.0,
        help="micro-batch flush-on-timeout wait in milliseconds",
    )
    parser.add_argument(
        "--queue-capacity", type=_positive_int, default=128, help="admission-queue bound"
    )
    parser.add_argument(
        "--policy",
        choices=POLICY_KINDS,
        default="fixed",
        help=(
            "micro-batch flush policy: 'fixed' (static max-batch/max-wait) or "
            "'adaptive' (SLO-deadline flush with analytical max-batch auto-tuning; "
            "--max-batch becomes the cap)"
        ),
    )
    parser.add_argument(
        "--slo-ms",
        type=_positive_float,
        default=50.0,
        help="adaptive policy: per-request latency budget in milliseconds",
    )
    parser.add_argument(
        "--noise",
        choices=sorted(NOISE_PRESETS),
        default="none",
        help="analog impairment preset for the optical datapath",
    )
    parser.add_argument("--weight-seed", type=int, default=0, help="synthetic weight seed")
    parser.add_argument("--image-seed", type=int, default=1, help="random image seed")
    parser.add_argument("--arrival-seed", type=int, default=2, help="arrival-process seed")
    # ---------------------------------------------------------------- robustness
    parser.add_argument(
        "--dispatch-timeout-ms",
        type=_positive_float,
        default=None,
        help=(
            "per-dispatch replica answer budget in milliseconds; a process "
            "replica that misses it is declared hung, killed and replaced "
            "(default: wait forever)"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=2,
        help=(
            "re-dispatch attempts for a micro-batch after a replica failure "
            "before it fails permanently; with --url this also bounds the "
            "HTTP client's transport retries"
        ),
    )
    parser.add_argument(
        "--breaker",
        action="store_true",
        help=(
            "enable the per-model circuit breaker: repeated batch failures "
            "open it and shed load as HTTP 503 + Retry-After until recovery"
        ),
    )
    parser.add_argument(
        "--breaker-threshold",
        type=_positive_float,
        default=0.5,
        help="failure fraction over the rolling window that opens the breaker",
    )
    parser.add_argument(
        "--breaker-window",
        type=_positive_int,
        default=8,
        help="batch outcomes in the breaker's rolling window",
    )
    parser.add_argument(
        "--breaker-recovery-ms",
        type=_positive_float,
        default=5000.0,
        help="how long an open breaker sheds load before half-opening",
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        dest="inject_faults",
        type=_parse_fault_rule,
        metavar="SPEC",
        default=None,
        help=(
            "inject a deterministic replica fault (repeatable; demos/chaos "
            "drills): KIND[:key=value,...] with KIND crash|hang|slow|corrupt "
            "and keys every/at/probability/delay_ms/times/seed, e.g. "
            "'crash:every=5' or 'slow:probability=0.2,delay_ms=30,seed=7'"
        ),
    )
    # ---------------------------------------------------------------- observability
    parser.add_argument(
        "--trace-sample",
        type=_unit_interval_float,
        default=1.0,
        metavar="RATE",
        help=(
            "fraction of requests that carry a full trace (seeded sampling; "
            "1.0 traces everything, 0 disables tracing entirely)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "write the retained request traces as Chrome trace-event JSON "
            "(load in Perfetto / chrome://tracing, or summarise offline "
            "with 'python -m repro trace-report FILE')"
        ),
    )
    parser.add_argument(
        "--slow-ms",
        type=_positive_float,
        default=None,
        metavar="MS",
        help=(
            "log a JSON-lines exemplar (trace id + per-stage breakdown) to "
            "stderr for every request slower end-to-end than this many "
            "milliseconds"
        ),
    )


def _add_chip_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=128, help="crossbar rows (default 128)")
    parser.add_argument("--columns", type=int, default=128, help="crossbar columns (default 128)")
    parser.add_argument("--cores", type=int, default=2, choices=(1, 2), help="crossbar cores")
    parser.add_argument("--batch", type=int, default=32, help="batch size (default 32)")
    parser.add_argument("--clock-ghz", type=float, default=10.0, help="MAC clock in GHz")
    parser.add_argument("--dram", choices=("hbm", "pcie"), default="hbm", help="DRAM attachment")
    parser.add_argument("--input-sram-mb", type=float, default=26.3)
    parser.add_argument("--filter-sram-mb", type=float, default=0.75)
    parser.add_argument("--output-sram-mb", type=float, default=0.75)
    parser.add_argument("--accumulator-sram-mb", type=float, default=0.75)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optical PCM crossbar accelerator modelling (Sturm & Moazeni, DATE 2023)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    evaluate = subparsers.add_parser("evaluate", help="evaluate a workload on a design point")
    evaluate.add_argument("--network", default="resnet50", help="workload name")
    _add_chip_arguments(evaluate)
    evaluate.add_argument("--json", action="store_true", help="print a JSON summary instead of text")

    compare = subparsers.add_parser("compare", help="Table I comparison against the NVIDIA A100")
    compare.add_argument("--network", default="resnet50", help="workload name")
    _add_chip_arguments(compare)

    optimize = subparsers.add_parser("optimize", help="run the Section VI-B optimization flow")
    optimize.add_argument("--network", default="resnet50", help="workload name")
    optimize.add_argument("--area-cap", type=float, default=160.0, help="chip area cap in mm^2")

    figure = subparsers.add_parser("figure", help="regenerate a paper figure/table")
    figure.add_argument("--name", required=True, choices=sorted(FIGURES), help="figure id")
    figure.add_argument("--network", default="resnet50", help="workload name")
    figure.add_argument("--output", default=None, help="write the series to this CSV/JSON file")

    infer = subparsers.add_parser(
        "infer", help="batched functional INT6 inference on the optical crossbar"
    )
    infer.add_argument("--network", default="lenet5", help="workload name")
    _add_chip_arguments(infer)
    infer.add_argument(
        "--images", type=int, default=8, help="number of random images in the batch"
    )
    infer.add_argument(
        "--noise",
        choices=sorted(NOISE_PRESETS),
        default="none",
        help="analog impairment preset for the optical datapath",
    )
    infer.add_argument(
        "--workers",
        type=_parse_workers,
        default="serial",
        help=(
            "execution: 'serial' (default), 'thread' (one sharding worker per "
            "crossbar core), 'thread:N' / a positive worker count (sharded "
            "thread pool), or 'process:N' (data-parallel engine replicas, one "
            "per process); deterministic results are bitwise identical for "
            "every setting (with --noise, the process path chunks the batch "
            "across replicas, so noisy outputs differ from one monolithic "
            "batch)"
        ),
    )
    infer.add_argument("--weight-seed", type=int, default=0, help="synthetic weight seed")
    infer.add_argument("--image-seed", type=int, default=1, help="random image seed")
    infer.add_argument("--json", action="store_true", help="print a JSON summary instead of text")

    serve = subparsers.add_parser(
        "serve",
        help="online serving session: dynamic micro-batching over engine replicas",
    )
    _add_serving_arguments(serve)
    serve.add_argument(
        "--requests",
        type=_positive_int,
        default=32,
        help="number of requests to serve (default 32)",
    )
    serve.add_argument(
        "--rate", type=_positive_float, default=500.0, help="mean arrival rate in requests/s"
    )
    serve.add_argument(
        "--arrival",
        choices=sorted(ARRIVAL_PROCESSES),
        default="poisson",
        help="open-loop arrival process",
    )
    serve.add_argument("--json", action="store_true", help="print a JSON summary instead of text")
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "expose the server over HTTP on this port (0 picks a free one) "
            "instead of driving synthetic traffic; serves until interrupted, "
            "--duration elapses or a /v1/shutdown request arrives"
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="HTTP bind host (default 127.0.0.1)"
    )
    frontend = serve.add_mutually_exclusive_group()
    frontend.add_argument(
        "--async-http",
        dest="async_http",
        action="store_true",
        default=True,
        help=(
            "HTTP mode: serve on the single-event-loop asyncio front-end "
            "(the default) — keep-alive multiplexing, streamed NDJSON "
            "responses and SSE progress events"
        ),
    )
    frontend.add_argument(
        "--legacy-http",
        dest="async_http",
        action="store_false",
        help=(
            "HTTP mode: serve on the legacy thread-per-connection front-end "
            "instead of the asyncio one (kept one release as a fallback; no "
            "streaming or SSE support)"
        ),
    )
    serve.add_argument(
        "--duration",
        type=_positive_float,
        default=None,
        help="HTTP mode: stop serving after this many seconds",
    )
    serve.add_argument(
        "--allow-remote-shutdown",
        action="store_true",
        help="HTTP mode: honour POST /v1/shutdown requests",
    )
    serve.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help=(
            "HTTP mode: write the bound base URL to this file once the socket "
            "is listening (lets scripts and CI discover a --http 0 port "
            "without racing the bind)"
        ),
    )
    serve.add_argument(
        "--autoscale",
        action="store_true",
        help=(
            "enable queue-depth-driven replica autoscaling per hosted model "
            "(scale up on sustained depth, scale down after an idle cooldown, "
            "draining replicas before retiring them); a 'serial' --executor "
            "is upgraded to a thread pool starting at --min-replicas"
        ),
    )
    serve.add_argument(
        "--min-replicas",
        type=_positive_int,
        default=1,
        help="autoscale: lower replica bound per model (default 1)",
    )
    serve.add_argument(
        "--max-replicas",
        type=_positive_int,
        default=4,
        help="autoscale: upper replica bound per model (default 4)",
    )
    serve.add_argument(
        "--scale-up-depth",
        type=_positive_int,
        default=4,
        help="autoscale: queue depth that counts as overload (default 4)",
    )
    serve.add_argument(
        "--scale-sustain-ms",
        type=_nonnegative_float,
        default=100.0,
        help="autoscale: how long the overload must persist before scaling up",
    )
    serve.add_argument(
        "--scale-cooldown-ms",
        type=_nonnegative_float,
        default=2000.0,
        help="autoscale: idle time before each scale-down step",
    )
    serve.add_argument(
        "--scale-interval-ms",
        type=_positive_float,
        default=50.0,
        help="autoscale: control-loop sampling period",
    )

    loadgen = subparsers.add_parser(
        "loadgen",
        help="sweep open-/closed-loop load points and print a throughput/latency table",
    )
    _add_serving_arguments(loadgen)
    loadgen.add_argument(
        "--mode", choices=("open", "closed"), default="open", help="load-generation loop"
    )
    loadgen.add_argument(
        "--arrival",
        choices=sorted(ARRIVAL_PROCESSES),
        default="poisson",
        help="open-loop arrival process",
    )
    loadgen.add_argument(
        "--rates",
        type=_parse_number_list,
        default=(250.0, 500.0, 1000.0),
        help="comma-separated open-loop arrival rates in requests/s",
    )
    loadgen.add_argument(
        "--concurrency",
        type=_parse_int_list,
        default=(1, 2, 4),
        help="comma-separated closed-loop client counts",
    )
    loadgen.add_argument(
        "--requests",
        type=_positive_int,
        default=24,
        help="requests per load point (default 24)",
    )
    loadgen.add_argument(
        "--shed",
        action="store_true",
        help="open loop: drop (rather than block) requests when the queue is full",
    )
    loadgen.add_argument("--json", action="store_true", help="print a JSON summary instead of text")
    loadgen.add_argument(
        "--url",
        default=None,
        help=(
            "drive a remote HTTP server (e.g. http://127.0.0.1:8080) instead of "
            "building a local one; chip/executor/policy options are then decided "
            "by the remote server and the bitwise check is skipped"
        ),
    )
    loadgen.add_argument(
        "--encoding",
        choices=("json", "npy"),
        default="json",
        help="HTTP payload encoding for --url mode (npy is denser and bitwise-exact)",
    )
    loadgen.add_argument(
        "--connections",
        type=_positive_int,
        default=16,
        metavar="N",
        help=(
            "--url mode: keep-alive connection budget — at most N sockets "
            "are held open and reused across requests (default 16)"
        ),
    )

    subparsers.add_parser("workloads", help="list the bundled workload descriptions")

    trace_report = subparsers.add_parser(
        "trace-report",
        help="summarise a Chrome trace-event JSON file into a per-stage latency table",
    )
    trace_report.add_argument(
        "trace_file",
        help="Chrome trace-event JSON written by 'serve --trace-out'",
    )
    trace_report.add_argument(
        "--top",
        type=_positive_int,
        default=5,
        help="number of slowest requests to list (default 5)",
    )
    trace_report.add_argument(
        "--json", action="store_true", help="print a JSON summary instead of text"
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the project-specific static-analysis rules (RPR1xx)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: the repro package source)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is the stable machine-readable schema)",
    )
    lint.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (e.g. RPR101,RPR103); default all",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by `# repro: noqa[CODE]` comments",
    )
    return parser


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------


def _cmd_evaluate(args: argparse.Namespace) -> int:
    network = build_network(args.network)
    config = config_from_args(args)
    metrics = SimulationFramework(network).evaluate(config)
    if args.json:
        print(json.dumps(metrics.summary(), indent=2, default=float))
    else:
        print(format_metrics_report(metrics))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    network = build_network(args.network)
    config = config_from_args(args)
    metrics = SimulationFramework(network).evaluate(config)
    print(format_comparison_table(compare_to_gpu(metrics)))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    network = build_network(args.network)
    optimizer = DesignOptimizer(network, default_sweep_chip(), area_cap_mm2=args.area_cap)
    result = optimizer.optimize()
    print(json.dumps(result.summary(), indent=2, default=float))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    network = build_network(args.network)
    generator = FIGURES[args.name]
    data = generator(network=network)
    if args.output:
        if isinstance(data, list):
            save_rows(data, args.output)
        else:
            with open(args.output, "w") as handle:
                json.dump(data, handle, indent=2, default=float)
        print(f"wrote {args.name} series to {args.output}")
    else:
        print(json.dumps(data, indent=2, default=float))
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    if args.images < 1:
        raise SystemExit(f"--images must be >= 1, got {args.images}")
    network = build_network(args.network)
    config = config_from_args(args)
    noise_model = NOISE_PRESETS[args.noise]()
    weights = generate_random_weights(network, seed=args.weight_seed, scale=0.3)
    rng = np.random.default_rng(args.image_seed)
    images = rng.uniform(0.0, 1.0, (args.images,) + network.input_shape.as_tuple())

    # The first (cold) batch pays the one-time PCM tile programming; the
    # second (warm) batch shows the steady-state throughput the tile cache
    # enables.  Both are reported so the cache's effect is visible.
    if args.workers.kind == "process":
        # Data-parallel path: the batch is chunked across N engine replicas,
        # each living in its own worker process (scales past the GIL).
        replica = EngineReplicaSpec(
            network=network, weights=weights, config=config, noise_model=noise_model
        )
        with EngineWorkerPool(replica, args.workers) as pool:
            start = time.perf_counter()
            optical = pool.run_batch_sharded(images)
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            pool.run_batch_sharded(images)
            warm_s = time.perf_counter() - start
            stats = pool.statistics()
        reference = FunctionalInferenceEngine(
            network, weights, config
        ).run_batch_reference(images)
    else:
        engine = FunctionalInferenceEngine(
            network,
            weights,
            config,
            noise_model=noise_model,
            execution=_sharding_execution(args.workers),
        )
        start = time.perf_counter()
        optical = engine.run_batch(images)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        engine.run_batch(images)
        warm_s = time.perf_counter() - start
        reference = engine.run_batch_reference(images)
        stats = engine.accelerator.functional_statistics()

    agreement = agreement_metrics(optical, reference)
    summary = {
        "network": args.network,
        "images": args.images,
        "noise": args.noise,
        "workers": str(args.workers),
        "per_core_tile_dispatches": list(stats["per_core_tile_dispatches"]),
        "cold_batch_seconds": cold_s,
        "warm_batch_seconds": warm_s,
        "images_per_second": args.images / warm_s if warm_s > 0 else float("inf"),
        "mean_relative_error": agreement["mean_relative_error"],
        "top1_match_rate": agreement["top1_match_rate"],
        "programming_events": stats["programming_events"],
        "tile_cache_hits": stats["tile_cache_hits"],
        "tile_cache_misses": stats["tile_cache_misses"],
    }
    if args.json:
        print(json.dumps(summary, indent=2, default=float))
    else:
        print(
            f"{args.network}: {args.images} images, cold batch {cold_s:.3f} s, "
            f"warm batch {warm_s:.3f} s "
            f"({summary['images_per_second']:.1f} images/s, noise={args.noise})"
        )
        print(
            f"  agreement: mean relative error {summary['mean_relative_error']:.4f}, "
            f"top-1 match rate {summary['top1_match_rate']:.2f}"
        )
        print(
            f"  PCM programming events: {summary['programming_events']} "
            f"(tile cache: {summary['tile_cache_hits']} hits, "
            f"{summary['tile_cache_misses']} misses)"
        )
        dispatches = ", ".join(
            f"core {core}: {count}"
            for core, count in enumerate(summary["per_core_tile_dispatches"])
        )
        print(f"  tile GEMMs per crossbar core (workers={summary['workers']}): {dispatches}")
    return 0


def _model_entries(args: argparse.Namespace):
    """``[(name, workload)]`` from repeated ``--model``, or the legacy ``--network``."""
    entries = list(getattr(args, "models", None) or [(args.network, args.network)])
    names = [name for name, _ in entries]
    if len(set(names)) != len(names):
        raise SystemExit(f"duplicate model names in --model: {', '.join(names)}")
    if args.mix is not None and len(args.mix) != len(entries):
        raise SystemExit(
            f"--mix needs one weight per model, got {len(args.mix)} weights "
            f"for {len(entries)} models"
        )
    return entries


def _built_entries(args: argparse.Namespace):
    """``[(name, network, weights)]`` with per-model synthetic weights.

    Models get staggered weight seeds (``--weight-seed + index``) so two
    hosted variants of the same workload still compute distinct functions —
    which is what makes the routing bitwise-check meaningful.
    """
    entries = []
    for index, (name, workload) in enumerate(_model_entries(args)):
        network = build_network(workload)
        weights = generate_random_weights(
            network, seed=args.weight_seed + index, scale=0.3
        )
        entries.append((name, network, weights))
    return entries


def _autoscaler_from_args(args: argparse.Namespace) -> Optional[AutoscalerPolicy]:
    if not getattr(args, "autoscale", False):
        return None
    try:
        return AutoscalerPolicy(
            min_replicas=args.min_replicas,
            max_replicas=args.max_replicas,
            scale_up_queue_depth=args.scale_up_depth,
            sustain_s=args.scale_sustain_ms / 1e3,
            cooldown_s=args.scale_cooldown_ms / 1e3,
            interval_s=args.scale_interval_ms / 1e3,
        )
    except SimulationError as error:
        raise SystemExit(str(error)) from error


def _make_server(args: argparse.Namespace, built_entries) -> InferenceServer:
    """Build a (possibly multi-model, possibly autoscaled) inference server."""
    config = config_from_args(args)
    noise_model = NOISE_PRESETS[args.noise]()
    autoscaler = _autoscaler_from_args(args)
    executor = args.executor
    if autoscaler is not None and executor.kind == "serial":
        # Autoscaling needs a resizable pool; start a thread pool at the floor.
        executor = ExecutorSpec("thread", autoscaler.min_replicas)
    breaker = None
    if getattr(args, "breaker", False):
        try:
            breaker = CircuitBreakerPolicy(
                failure_threshold=args.breaker_threshold,
                window=args.breaker_window,
                recovery_s=args.breaker_recovery_ms / 1e3,
            )
        except SimulationError as error:
            raise SystemExit(str(error)) from error
    dispatch_timeout_ms = getattr(args, "dispatch_timeout_ms", None)
    registry = ModelRegistry()
    for name, network, weights in built_entries:
        registry.add(
            name,
            network,
            weights,
            config=config,
            noise_model=noise_model,
            executor=executor,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms / 1e3,
            queue_capacity=args.queue_capacity,
            policy=args.policy,
            slo_s=args.slo_ms / 1e3,
            dispatch_timeout_s=(
                None if dispatch_timeout_ms is None else dispatch_timeout_ms / 1e3
            ),
            max_attempts=getattr(args, "max_retries", 2) + 1,
            breaker=breaker,
            faults=getattr(args, "inject_faults", None),
            ipc=getattr(args, "ipc", "pickle"),
        )
    trace_sample = getattr(args, "trace_sample", 1.0)
    return InferenceServer(
        registry=registry,
        autoscaler=autoscaler,
        tracing=trace_sample > 0,
        trace_sample=trace_sample,
        slow_ms=getattr(args, "slow_ms", None),
    )


def _export_trace(args: argparse.Namespace, server: Optional[InferenceServer]) -> None:
    """Honour ``--trace-out`` after a serving run (no-op without the flag)."""
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        return
    if server is None or server.tracer is None:
        print(
            "--trace-out ignored: no local tracer "
            "(tracing disabled or remote --url target)",
            file=sys.stderr,
        )
        return
    traces = server.export_trace(trace_out)
    # stderr, so `--json` stdout stays machine-parseable.
    print(f"wrote {traces} request traces to {trace_out}", file=sys.stderr)


def _build_traffic(args: argparse.Namespace, built_entries, num_requests: int):
    """Per-request model schedule + interleaved images for synthetic traffic.

    Returns ``(schedule, images, images_by_model)``; ``schedule`` is ``None``
    for a single-model session (requests then route to the default model,
    exactly like the pre-multi-model CLI).
    """
    if num_requests < 1:
        raise SystemExit(f"--requests must be >= 1, got {num_requests}")
    names = [name for name, _, _ in built_entries]
    shapes = {name: network.input_shape.as_tuple() for name, network, _ in built_entries}
    if len(names) == 1:
        rng = np.random.default_rng(args.image_seed)
        images = rng.uniform(0.0, 1.0, (num_requests,) + shapes[names[0]])
        return None, images, {names[0]: images}
    schedule = mixed_model_schedule(
        names, num_requests, weights=args.mix, seed=args.arrival_seed
    )
    images_by_model = {}
    for index, name in enumerate(names):
        rng = np.random.default_rng(args.image_seed + index)
        count = schedule.count(name)
        images_by_model[name] = rng.uniform(0.0, 1.0, (count,) + shapes[name])
    cursors = {name: iter(images_by_model[name]) for name in names}
    images = [next(cursors[name]) for name in schedule]
    return schedule, images, images_by_model


def _direct_references(args, built_entries, images_by_model):
    """Per-model direct ``run_batch`` references for bitwise verification.

    None when verification does not apply (a noise model makes served noise
    streams differ from one monolithic batch).
    """
    if args.noise != "none":
        return None
    config = config_from_args(args)
    return {
        name: FunctionalInferenceEngine(network, weights, config).run_batch(
            images_by_model[name]
        )
        for name, network, weights in built_entries
        if len(images_by_model[name])
    }


def _verify_served_outputs(directs, report, schedule) -> Optional[bool]:
    """Bitwise check of served outputs vs the precomputed direct references.

    Returns None when the check does not apply (no reference, or open-loop
    shedding dropped requests so the output rows no longer line up 1:1).
    """
    by_model = _verify_by_model(directs, report, schedule)
    if by_model is None:
        return None
    return all(by_model.values())


def _cross_model_telemetry(report, schedule) -> Dict[str, object]:
    """Whole-run latency/batch/queue numbers for the serve/loadgen summaries.

    Single-model runs use the server's own telemetry (delivery-inclusive
    latency).  Multi-model runs merge the per-model batch/queue counters and
    take the latency percentiles from the client side — each model's server
    telemetry describes only its own traffic, so presenting the default
    model's numbers as whole-run figures would be misleading.
    """
    if schedule is None:
        telemetry = report.server["telemetry"]
        return {
            "latency_p50_s": telemetry["latency_p50_s"],
            "latency_p95_s": telemetry["latency_p95_s"],
            "latency_p99_s": telemetry["latency_p99_s"],
            "batch_size_histogram": telemetry["batch_size_histogram"],
            "mean_batch_size": telemetry["mean_batch_size"],
            "queue_depth_max": telemetry["queue_depth_max"],
        }
    histogram: Counter = Counter()
    depth_max = 0
    for model_stats in report.server["models"].values():
        telemetry = model_stats["telemetry"]
        histogram.update(
            {int(size): count for size, count in telemetry["batch_size_histogram"].items()}
        )
        depth_max = max(depth_max, telemetry["queue_depth_max"])
    batches = sum(histogram.values())
    batched_requests = sum(size * count for size, count in histogram.items())
    return {
        "latency_p50_s": report.client_latency["latency_p50_s"],
        "latency_p95_s": report.client_latency["latency_p95_s"],
        "latency_p99_s": report.client_latency["latency_p99_s"],
        "batch_size_histogram": dict(sorted(histogram.items())),
        "mean_batch_size": batched_requests / batches if batches else 0.0,
        "queue_depth_max": depth_max,
    }


def _cross_model_pool(report, schedule):
    """``(per_core_tile_dispatches, replicas)`` summed over every model's pool."""
    if schedule is None:
        pool = report.server["pool"]
        return list(pool.get("per_core_tile_dispatches", ())), pool.get("replicas")
    dispatches: Optional[tuple] = None
    replicas = 0
    for model_stats in report.server["models"].values():
        pool = model_stats["pool"]
        replicas += pool.get("replicas") or 0
        per_core = tuple(pool.get("per_core_tile_dispatches", ()))
        if not per_core:
            continue  # a model that served nothing has no per-core counters
        if dispatches is None:
            dispatches = per_core
        else:
            dispatches = tuple(a + b for a, b in zip(dispatches, per_core))
    return list(dispatches or ()), replicas


def _verify_by_model(directs, report, schedule) -> Optional[Dict[str, bool]]:
    """Per-model bitwise verdicts (see :func:`_verify_served_outputs`).

    Models that received zero requests have no reference and therefore no
    verdict — look them up with ``.get(name)`` (``None`` renders as "n/a").
    """
    if directs is None or report.rejected:
        return None
    if schedule is None:
        (name, direct), = directs.items()
        return {name: bool(np.array_equal(report.outputs, direct))}
    verdicts = {}
    for name, direct in directs.items():
        rows = [report.outputs[i] for i, n in enumerate(schedule) if n == name]
        served = np.stack(rows) if rows else np.empty((0, 0))
        verdicts[name] = bool(np.array_equal(served, direct))
    return verdicts


def _cmd_serve_http(args: argparse.Namespace) -> int:
    """``serve --http PORT``: expose the server over a socket until stopped."""
    built = _built_entries(args)
    server = _make_server(args, built)
    hosted = ", ".join(name for name, _, _ in built)
    front_cls = AsyncServeHTTPServer if getattr(args, "async_http", True) else ServeHTTPServer
    with server:
        with front_cls(
            server,
            host=args.host,
            port=args.http,
            allow_shutdown=args.allow_remote_shutdown,
        ) as front:
            if args.ready_file:
                with open(args.ready_file, "w") as handle:
                    handle.write(front.url + "\n")
            frontend_kind = "async" if front_cls is AsyncServeHTTPServer else "legacy threaded"
            print(
                f"serving {hosted} (executor={args.executor}, "
                f"policy={args.policy}, autoscale="
                f"{'on' if args.autoscale else 'off'}, "
                f"frontend={frontend_kind}) at {front.url}"
            )
            print(f"  POST {front.url}/v1/infer    — single image or batch (optional 'model')")
            if front_cls is AsyncServeHTTPServer:
                print(
                    f"  POST {front.url}/v1/infer    — ... with 'stream': true for "
                    "NDJSON streaming, 'request_id' for SSE progress"
                )
                print(f"  GET  {front.url}/v1/infer/ID/events — SSE progress stream")
            print(f"  GET  {front.url}/v1/models   — hosted-model listing")
            print(f"  GET  {front.url}/v1/stats    — SLO telemetry snapshot (?model=NAME)")
            print(f"  GET  {front.url}/metrics     — Prometheus text exposition")
            if server.tracer is not None:
                print(f"  GET  {front.url}/v1/trace/ID — one request trace as JSON")
            print(f"  GET  {front.url}/healthz     — liveness probe")
            if args.allow_remote_shutdown:
                print(f"  POST {front.url}/v1/shutdown — stop the server")

            # Graceful shutdown: SIGTERM (orchestrators) and SIGINT (Ctrl-C)
            # flip the front-end's shutdown flag; the context managers below
            # then stop accepting connections, drain the admission queues,
            # finish in-flight batches and join the autoscaler/dispatch
            # threads — exiting 0 with final telemetry, not mid-flight.
            def _graceful_shutdown(signum, frame):
                print(
                    f"received {signal.Signals(signum).name}, draining and "
                    "shutting down"
                )
                front.request_shutdown()

            previous_handlers = {}
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    previous_handlers[signum] = signal.signal(
                        signum, _graceful_shutdown
                    )
                except ValueError:
                    pass  # not the main thread (embedded/test use): skip
            try:
                front.wait(args.duration)
            except KeyboardInterrupt:
                print("interrupted, shutting down")
            finally:
                for signum, handler in previous_handlers.items():
                    signal.signal(signum, handler)
        final_stats = server.stats()
    _export_trace(args, server)
    for name, model_stats in final_stats["models"].items():
        telemetry = model_stats["telemetry"]
        scaling = telemetry["autoscaler"]
        faults = (model_stats.get("pool") or {}).get("faults") or {}
        robustness = ""
        if faults.get("replica_restarts") or telemetry.get("requests_failed"):
            robustness = (
                f", replica restarts {faults.get('replica_restarts', 0)}, "
                f"failed {telemetry.get('requests_failed', 0)}"
            )
        print(
            f"{name}: served {telemetry['requests_completed']} requests "
            f"(p99 {telemetry['latency_p99_s'] * 1e3:.2f} ms, "
            f"mean batch {telemetry['mean_batch_size']:.2f}, "
            f"replicas {model_stats['replicas']}, "
            f"scale-ups {scaling['scale_ups']}, scale-downs {scaling['scale_downs']}"
            f"{robustness})"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.http is not None:
        return _cmd_serve_http(args)
    built = _built_entries(args)
    schedule, images, images_by_model = _build_traffic(args, built, args.requests)
    arrivals = ARRIVAL_PROCESSES[args.arrival](args.rate, args.requests, seed=args.arrival_seed)
    with _make_server(args, built) as server:
        report = LoadGenerator(server).run_open_loop(images, arrivals, models=schedule)
    _export_trace(args, server)
    directs = _direct_references(args, built, images_by_model)
    by_model = _verify_by_model(directs, report, schedule)
    bitwise = None if by_model is None else all(by_model.values())

    telemetry = _cross_model_telemetry(report, schedule)
    dispatches, replicas = _cross_model_pool(report, schedule)
    summary = {
        "network": args.network if schedule is None else None,
        "models": {
            name: {
                "network": model_stats["network"],
                "requests": model_stats["telemetry"]["requests_completed"],
                "replicas": model_stats["replicas"],
                "scale_ups": model_stats["telemetry"]["autoscaler"]["scale_ups"],
                "scale_downs": model_stats["telemetry"]["autoscaler"]["scale_downs"],
                "bitwise_match_vs_run_batch": None if by_model is None else by_model.get(name),
            }
            for name, model_stats in report.server["models"].items()
        },
        "autoscale": bool(args.autoscale),
        "executor": str(args.executor),
        "arrival": args.arrival,
        "rate_rps": args.rate,
        "requests": report.requests,
        "achieved_rps": report.achieved_rps,
        "latency_p50_ms": telemetry["latency_p50_s"] * 1e3,
        "latency_p95_ms": telemetry["latency_p95_s"] * 1e3,
        "latency_p99_ms": telemetry["latency_p99_s"] * 1e3,
        "mean_batch_size": telemetry["mean_batch_size"],
        "batch_size_histogram": telemetry["batch_size_histogram"],
        "queue_depth_max": telemetry["queue_depth_max"],
        "per_core_tile_dispatches": dispatches,
        "replicas": replicas,
        "bitwise_match_vs_run_batch": bitwise,
    }
    if args.json:
        print(json.dumps(summary, indent=2, default=float))
    else:
        hosted = args.network if schedule is None else ", ".join(summary["models"])
        print(
            f"{hosted}: served {summary['requests']} requests "
            f"({args.arrival} arrivals at {args.rate:.0f} rps, "
            f"executor={summary['executor']}) -> {summary['achieved_rps']:.1f} rps"
        )
        print(
            f"  latency p50/p95/p99: {summary['latency_p50_ms']:.2f} / "
            f"{summary['latency_p95_ms']:.2f} / {summary['latency_p99_ms']:.2f} ms"
        )
        histogram = ", ".join(
            f"{size}x{count}" for size, count in summary["batch_size_histogram"].items()
        )
        print(
            f"  micro-batches: mean size {summary['mean_batch_size']:.2f} "
            f"(histogram: {histogram}); max queue depth {summary['queue_depth_max']}"
        )
        dispatches = ", ".join(
            f"core {core}: {count}"
            for core, count in enumerate(summary["per_core_tile_dispatches"])
        )
        print(f"  tile GEMMs per crossbar core (all replicas): {dispatches}")
        if schedule is not None:
            for name, model_summary in summary["models"].items():
                verdict = {None: "n/a", True: "bitwise-identical", False: "MISMATCH"}[
                    model_summary["bitwise_match_vs_run_batch"]
                ]
                print(
                    f"  model {name} ({model_summary['network']}): "
                    f"{model_summary['requests']} requests, "
                    f"replicas {model_summary['replicas']}, "
                    f"outputs {verdict}"
                )
        if bitwise is not None:
            verdict = "bitwise-identical" if bitwise else "MISMATCH"
            print(f"  served outputs vs direct run_batch: {verdict}")
    return 0 if bitwise in (None, True) else 1


def _run_load_point(args: argparse.Namespace, generator: LoadGenerator, images, point, schedule):
    """One open-/closed-loop load point against an already-built target."""
    if args.mode == "open":
        arrivals = ARRIVAL_PROCESSES[args.arrival](
            point, args.requests, seed=args.arrival_seed
        )
        return generator.run_open_loop(
            images, arrivals, shed_on_overflow=args.shed, models=schedule
        )
    return generator.run_closed_loop(images, concurrency=int(point), models=schedule)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    if args.url:
        # The remote server owns the chip/executor/policy/weight choices, so
        # only each workload's input shape matters locally: build the images,
        # skip weight/noise construction and the bitwise reference.  With
        # --model the request schedule routes by name on the remote server.
        entries = _model_entries(args)
        shaped = [(name, build_network(workload), None) for name, workload in entries]
        schedule, images, _ = _build_traffic(args, shaped, args.requests)
        directs = None
    else:
        built = _built_entries(args)
        schedule, images, images_by_model = _build_traffic(args, built, args.requests)
        directs = _direct_references(args, built, images_by_model)
    encoding = "npy_b64" if args.encoding == "npy" else "json"
    points = args.rates if args.mode == "open" else args.concurrency
    rows = []
    last_server: Optional[InferenceServer] = None
    for point in points:
        if args.url:
            with HTTPInferenceClient(
                args.url,
                encoding=encoding,
                max_retries=args.max_retries,
                max_connections=getattr(args, "connections", 16),
            ) as client:
                report = _run_load_point(
                    args, LoadGenerator(client), images, point, schedule
                )
                transport = client.transport_stats()
        else:
            with _make_server(args, built) as server:
                report = _run_load_point(
                    args, LoadGenerator(server), images, point, schedule
                )
            last_server = server
        bitwise = _verify_served_outputs(directs, report, schedule)
        telemetry = _cross_model_telemetry(report, schedule)
        # Against a remote server the telemetry snapshot is cumulative over
        # the server's whole lifetime (other points, other clients), so the
        # per-point latency columns come from this run's client-side samples
        # instead; multi-model runs also use client-side latency (server
        # telemetry is per model); locally a single-model point gets a fresh
        # server and the (delivery-inclusive) server-side numbers are the
        # better ones.
        latency_source = (
            report.client_latency if (args.url or schedule is not None) else telemetry
        )
        row = {
            "load": point if args.mode == "open" else int(point),
            "requests": report.requests,
            "rejected": report.rejected,
            "achieved_rps": report.achieved_rps,
            "latency_p50_ms": latency_source["latency_p50_s"] * 1e3,
            "latency_p99_ms": latency_source["latency_p99_s"] * 1e3,
            "mean_batch_size": telemetry["mean_batch_size"],
            "queue_depth_max": telemetry["queue_depth_max"],
            "bitwise_match_vs_run_batch": bitwise,
        }
        if args.url:
            # How hard the keep-alive pool worked: dials vs reuses shows
            # whether --connections actually bounded the socket count.
            row["transport"] = transport
        rows.append(row)
    # Each local load point gets a fresh server, so the exported trace covers
    # the last point of the sweep (a remote --url target has no local tracer).
    _export_trace(args, last_server)
    if args.json:
        print(
            json.dumps(
                {
                    "mode": args.mode,
                    "executor": str(args.executor),
                    "url": args.url,
                    "points": rows,
                },
                indent=2,
                default=float,
            )
        )
    else:
        load_header = "rate_rps" if args.mode == "open" else "clients"
        target = args.url if args.url else f"executor={args.executor}"
        hosted = (
            args.network
            if schedule is None
            else ", ".join(name for name, _ in _model_entries(args))
        )
        print(
            f"{hosted}: {args.mode}-loop sweep, {target}, "
            f"{args.requests} requests/point"
        )
        print(
            f"  {load_header:>9s} {'rps':>8s} {'p50_ms':>8s} {'p99_ms':>8s} "
            f"{'batch':>6s} {'depth':>6s} {'shed':>5s} {'match':>6s}"
        )
        for row in rows:
            match = {None: "n/a", True: "yes", False: "NO"}[
                row["bitwise_match_vs_run_batch"]
            ]
            print(
                f"  {row['load']:>9.0f} {row['achieved_rps']:>8.1f} "
                f"{row['latency_p50_ms']:>8.2f} {row['latency_p99_ms']:>8.2f} "
                f"{row['mean_batch_size']:>6.2f} {row['queue_depth_max']:>6d} "
                f"{row['rejected']:>5d} {match:>6s}"
            )
    failed = any(row["bitwise_match_vs_run_batch"] is False for row in rows)
    return 1 if failed else 0


def _cmd_workloads(_: argparse.Namespace) -> int:
    for name in sorted(WORKLOADS):
        network = WORKLOADS[name]()
        print(
            f"{name:<14s} {network.total_macs / 1e9:7.2f} GMAC   "
            f"{network.total_weights / 1e6:7.2f} M params   "
            f"{len(network.crossbar_layers):3d} crossbar layers"
        )
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs.report import format_report, report_from_file

    try:
        summary = report_from_file(args.trace_file, top=args.top)
    except OSError as error:
        raise SystemExit(f"cannot read {args.trace_file!r}: {error}") from error
    except SimulationError as error:
        raise SystemExit(str(error)) from error
    if args.json:
        print(json.dumps(summary, indent=2, default=float))
    else:
        print(format_report(summary))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.lint import format_json, format_text, run_lint

    paths = args.paths or [Path(__file__).resolve().parent]
    select = (
        [code for code in args.select.split(",") if code.strip()]
        if args.select
        else None
    )
    report = run_lint(paths, select=select)
    if args.format == "json":
        print(format_json(report))
    else:
        print(format_text(report, show_suppressed=args.show_suppressed))
    return 1 if report.unsuppressed else 0


COMMANDS = {
    "evaluate": _cmd_evaluate,
    "compare": _cmd_compare,
    "optimize": _cmd_optimize,
    "figure": _cmd_figure,
    "infer": _cmd_infer,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "workloads": _cmd_workloads,
    "trace-report": _cmd_trace_report,
    "lint": _cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
