"""Command-line interface.

``python -m repro <command>`` exposes the most common workflows without
writing any Python:

* ``evaluate``  — evaluate a workload on a design point and print the report;
* ``compare``   — Table I style comparison against the NVIDIA A100;
* ``optimize``  — run the Section VI-B design-space optimization flow;
* ``figure``    — regenerate one of the paper's figures/tables and write the
  series to CSV/JSON;
* ``workloads`` — list the bundled CNN workload descriptions.

Examples
--------
::

    python -m repro evaluate --network resnet50 --rows 128 --columns 128
    python -m repro compare --network resnet50
    python -m repro optimize --network resnet50 --area-cap 160
    python -m repro figure --name fig6 --output fig6.csv
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis import (
    generate_fig1_landscape,
    generate_fig6_array_sweep,
    generate_fig7a_batch_power,
    generate_fig7b_sram_ipsw,
    generate_fig7c_dual_core_ips,
    generate_fig8_breakdown,
    generate_table1,
    save_rows,
)
from repro.config import ChipConfig, SramConfig, default_sweep_chip
from repro.core import (
    DesignOptimizer,
    SimulationFramework,
    compare_to_gpu,
    format_comparison_table,
    format_metrics_report,
)
from repro.nn import (
    Network,
    build_alexnet,
    build_lenet5,
    build_mlp,
    build_mobilenet_v1,
    build_resnet18,
    build_resnet34,
    build_resnet50,
    build_vgg16,
)

#: Workload name -> builder mapping used by the ``--network`` option.
WORKLOADS: Dict[str, Callable[[], Network]] = {
    "resnet50": build_resnet50,
    "resnet34": build_resnet34,
    "resnet18": build_resnet18,
    "vgg16": build_vgg16,
    "alexnet": build_alexnet,
    "mobilenet_v1": build_mobilenet_v1,
    "lenet5": build_lenet5,
    "mlp": build_mlp,
}

#: Figure name -> generator mapping used by the ``figure`` command.
FIGURES = {
    "fig1": generate_fig1_landscape,
    "fig6": generate_fig6_array_sweep,
    "fig7a": generate_fig7a_batch_power,
    "fig7b": generate_fig7b_sram_ipsw,
    "fig7c": generate_fig7c_dual_core_ips,
    "fig8": generate_fig8_breakdown,
    "table1": generate_table1,
}


def build_network(name: str) -> Network:
    """Build a bundled workload by name."""
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown network {name!r}; choose from {', '.join(sorted(WORKLOADS))}"
        )


def config_from_args(args: argparse.Namespace) -> ChipConfig:
    """Build a ChipConfig from the common CLI options."""
    return ChipConfig(
        rows=args.rows,
        columns=args.columns,
        num_cores=args.cores,
        batch_size=args.batch,
        mac_clock_hz=args.clock_ghz * 1e9,
        dram_kind=args.dram,
        sram=SramConfig(
            input_mb=args.input_sram_mb,
            filter_mb=args.filter_sram_mb,
            output_mb=args.output_sram_mb,
            accumulator_mb=args.accumulator_sram_mb,
        ),
    )


def _add_chip_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=128, help="crossbar rows (default 128)")
    parser.add_argument("--columns", type=int, default=128, help="crossbar columns (default 128)")
    parser.add_argument("--cores", type=int, default=2, choices=(1, 2), help="crossbar cores")
    parser.add_argument("--batch", type=int, default=32, help="batch size (default 32)")
    parser.add_argument("--clock-ghz", type=float, default=10.0, help="MAC clock in GHz")
    parser.add_argument("--dram", choices=("hbm", "pcie"), default="hbm", help="DRAM attachment")
    parser.add_argument("--input-sram-mb", type=float, default=26.3)
    parser.add_argument("--filter-sram-mb", type=float, default=0.75)
    parser.add_argument("--output-sram-mb", type=float, default=0.75)
    parser.add_argument("--accumulator-sram-mb", type=float, default=0.75)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optical PCM crossbar accelerator modelling (Sturm & Moazeni, DATE 2023)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    evaluate = subparsers.add_parser("evaluate", help="evaluate a workload on a design point")
    evaluate.add_argument("--network", default="resnet50", help="workload name")
    _add_chip_arguments(evaluate)
    evaluate.add_argument("--json", action="store_true", help="print a JSON summary instead of text")

    compare = subparsers.add_parser("compare", help="Table I comparison against the NVIDIA A100")
    compare.add_argument("--network", default="resnet50", help="workload name")
    _add_chip_arguments(compare)

    optimize = subparsers.add_parser("optimize", help="run the Section VI-B optimization flow")
    optimize.add_argument("--network", default="resnet50", help="workload name")
    optimize.add_argument("--area-cap", type=float, default=160.0, help="chip area cap in mm^2")

    figure = subparsers.add_parser("figure", help="regenerate a paper figure/table")
    figure.add_argument("--name", required=True, choices=sorted(FIGURES), help="figure id")
    figure.add_argument("--network", default="resnet50", help="workload name")
    figure.add_argument("--output", default=None, help="write the series to this CSV/JSON file")

    subparsers.add_parser("workloads", help="list the bundled workload descriptions")
    return parser


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------


def _cmd_evaluate(args: argparse.Namespace) -> int:
    network = build_network(args.network)
    config = config_from_args(args)
    metrics = SimulationFramework(network).evaluate(config)
    if args.json:
        print(json.dumps(metrics.summary(), indent=2, default=float))
    else:
        print(format_metrics_report(metrics))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    network = build_network(args.network)
    config = config_from_args(args)
    metrics = SimulationFramework(network).evaluate(config)
    print(format_comparison_table(compare_to_gpu(metrics)))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    network = build_network(args.network)
    optimizer = DesignOptimizer(network, default_sweep_chip(), area_cap_mm2=args.area_cap)
    result = optimizer.optimize()
    print(json.dumps(result.summary(), indent=2, default=float))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    network = build_network(args.network)
    generator = FIGURES[args.name]
    data = generator(network=network)
    if args.output:
        if isinstance(data, list):
            save_rows(data, args.output)
        else:
            with open(args.output, "w") as handle:
                json.dump(data, handle, indent=2, default=float)
        print(f"wrote {args.name} series to {args.output}")
    else:
        print(json.dumps(data, indent=2, default=float))
    return 0


def _cmd_workloads(_: argparse.Namespace) -> int:
    for name in sorted(WORKLOADS):
        network = WORKLOADS[name]()
        print(
            f"{name:<14s} {network.total_macs / 1e9:7.2f} GMAC   "
            f"{network.total_weights / 1e6:7.2f} M params   "
            f"{len(network.crossbar_layers):3d} crossbar layers"
        )
    return 0


COMMANDS = {
    "evaluate": _cmd_evaluate,
    "compare": _cmd_compare,
    "optimize": _cmd_optimize,
    "figure": _cmd_figure,
    "workloads": _cmd_workloads,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
