"""Shared physical constants and unit-conversion helpers.

The modelling code in this package uses a single, consistent set of SI-ish
base units so that numbers can flow between modules without ambiguity:

* energy      -> joules (J)
* power       -> watts (W)
* time        -> seconds (s)
* frequency   -> hertz (Hz)
* area        -> square millimetres (mm^2)
* data volume -> bits (b)
* optical loss / gain -> decibels (dB); a *loss* is a positive dB number

Helper functions below convert between the unit prefixes that the paper
quotes (fJ/bit, pJ/bit, mW, MB, ...) and these base units.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

#: Planck constant (J*s).
PLANCK_CONSTANT_J_S = 6.626_070_15e-34

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT_M_S = 299_792_458.0

#: Elementary charge (C).
ELEMENTARY_CHARGE_C = 1.602_176_634e-19

#: Boltzmann constant (J/K).
BOLTZMANN_CONSTANT_J_K = 1.380_649e-23

#: Default operating wavelength for the silicon-photonic platform (m).
DEFAULT_WAVELENGTH_M = 1.31e-6

#: Room temperature used for thermal-noise estimates (K).
ROOM_TEMPERATURE_K = 300.0


# ---------------------------------------------------------------------------
# Metric prefixes
# ---------------------------------------------------------------------------

FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

#: Number of bits in one byte.
BITS_PER_BYTE = 8

#: Number of bytes in one mebibyte (the paper quotes SRAM sizes in "MB",
#: which we interpret as 2**20 bytes, the convention used by SRAM compilers).
BYTES_PER_MB = 1 << 20

#: Number of bits in one mebibyte.
BITS_PER_MB = BYTES_PER_MB * BITS_PER_BYTE


# ---------------------------------------------------------------------------
# Decibel helpers
# ---------------------------------------------------------------------------


def db_to_linear(db: float) -> float:
    """Convert a power ratio expressed in dB to a linear ratio.

    ``db_to_linear(3.0)`` is approximately ``2.0``.
    """
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Raises
    ------
    ValueError
        If ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"linear ratio must be > 0, got {ratio}")
    return 10.0 * math.log10(ratio)


def loss_db_to_transmission(loss_db: float) -> float:
    """Convert an optical *loss* in dB to a power transmission factor in [0, 1].

    A loss of 3 dB corresponds to a transmission of ~0.5.  Negative losses
    (gain) are allowed and return transmissions above one.
    """
    return 10.0 ** (-loss_db / 10.0)


def transmission_to_loss_db(transmission: float) -> float:
    """Convert a power transmission factor to a loss in dB."""
    if transmission <= 0.0:
        raise ValueError(f"transmission must be > 0, got {transmission}")
    return -10.0 * math.log10(transmission)


def field_transmission_from_loss_db(loss_db: float) -> float:
    """Electric-field (amplitude) transmission corresponding to a power loss in dB.

    The field transmission is the square root of the power transmission.
    """
    return math.sqrt(loss_db_to_transmission(loss_db))


def dbm_to_watts(dbm: float) -> float:
    """Convert optical power in dBm to watts."""
    return 1e-3 * 10.0 ** (dbm / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert optical power in watts to dBm."""
    if watts <= 0.0:
        raise ValueError(f"power must be > 0 W to express in dBm, got {watts}")
    return 10.0 * math.log10(watts / 1e-3)


# ---------------------------------------------------------------------------
# Energy / data helpers
# ---------------------------------------------------------------------------


def fj(value: float) -> float:
    """Femtojoules to joules."""
    return value * FEMTO


def pj(value: float) -> float:
    """Picojoules to joules."""
    return value * PICO


def nj(value: float) -> float:
    """Nanojoules to joules."""
    return value * NANO


def mw(value: float) -> float:
    """Milliwatts to watts."""
    return value * MILLI


def ghz(value: float) -> float:
    """Gigahertz to hertz."""
    return value * GIGA


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * NANO


def mb_to_bits(megabytes: float) -> float:
    """Mebibytes to bits."""
    return megabytes * BITS_PER_MB


def bits_to_mb(bits: float) -> float:
    """Bits to mebibytes."""
    return bits / BITS_PER_MB


def photon_energy_j(wavelength_m: float = DEFAULT_WAVELENGTH_M) -> float:
    """Energy of a single photon at ``wavelength_m`` (J)."""
    if wavelength_m <= 0.0:
        raise ValueError(f"wavelength must be > 0, got {wavelength_m}")
    return PLANCK_CONSTANT_J_S * SPEED_OF_LIGHT_M_S / wavelength_m
