"""Executor specifications and the engine-replica worker pool.

Serving parallelism in this subsystem is *data parallelism over engine
replicas*: every worker owns a full :class:`~repro.core.inference.
FunctionalInferenceEngine` (network + weights + programmed PCM tiles), and
micro-batches are dispatched to whichever replica is free.  Three executor
kinds are supported, spelled the same way everywhere (the ``serve`` /
``loadgen`` commands and ``infer --workers`` share :func:`parse_executor_spec`):

``serial``
    One replica, executed inline on the calling thread.
``thread`` / ``thread:N``
    ``N`` replicas served by a thread pool.  Replicas are checked out of a
    free-list per dispatch, so no engine is ever used by two threads at once.
``process`` / ``process:N``
    ``N`` replicas, each living in its own worker *process*.  The replica
    specification (network, weights, chip config, noise model, seed) is
    serialized to every worker, which rebuilds — and re-programs — its own
    tile plans at start-up.  Because the per-tile noise seeds are
    content-keyed (see :mod:`repro.core.accelerator`), every replica programs
    bitwise-identical tiles; in deterministic mode the pool's outputs are
    bitwise identical to a single local engine.  This is the executor that
    finally scales sharded functional inference past the GIL.
"""

from __future__ import annotations

import os
import queue
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.config.chip import ChipConfig
from repro.core.inference import FunctionalInferenceEngine
from repro.crossbar.noise import CrossbarNoiseModel
from repro.errors import ServeError, SimulationError
from repro.nn.network import Network

#: Executor kinds understood by :func:`parse_executor_spec`.
EXECUTOR_KINDS = ("serial", "thread", "process")

#: Default replica count when a bare ``thread`` / ``process`` spelling leaves
#: it implicit and no contextual default applies (bounded so a bare spelling
#: on a many-core host cannot fork dozens of replicas by accident).
DEFAULT_REPLICAS = max(2, min(4, os.cpu_count() or 2))


@dataclass(frozen=True)
class ExecutorSpec:
    """A parsed executor specification.

    ``count is None`` means "use the context's default" — the sharded tile
    datapath maps a bare ``thread`` to one worker per crossbar core, while the
    serving pool maps bare ``thread`` / ``process`` to :data:`DEFAULT_REPLICAS`.
    """

    kind: str
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in EXECUTOR_KINDS:
            raise SimulationError(
                f"executor kind must be one of {EXECUTOR_KINDS}, got {self.kind!r}"
            )
        if self.kind == "serial":
            object.__setattr__(self, "count", 1)
        if self.count is not None and self.count < 1:
            raise SimulationError(
                f"executor worker count must be >= 1, got {self.count}"
            )

    def resolved_count(self, default: int = DEFAULT_REPLICAS) -> int:
        """The worker count, with ``default`` filling an implicit spelling."""
        return int(self.count) if self.count is not None else max(int(default), 1)

    def __str__(self) -> str:
        if self.kind == "serial" or self.count is None:
            return self.kind
        return f"{self.kind}:{self.count}"


def parse_executor_spec(value: Union[str, int, "ExecutorSpec"]) -> ExecutorSpec:
    """Parse an executor spelling shared by ``serve`` and ``infer --workers``.

    Accepted spellings: ``"serial"``, ``"thread"``, ``"thread:N"``,
    ``"process"``, ``"process:N"`` and a bare positive integer (kept for
    backwards compatibility with ``infer --workers N``, where it means a
    thread pool of ``N`` workers).  Anything else raises a
    :class:`~repro.errors.SimulationError` naming the accepted forms.
    """
    if isinstance(value, ExecutorSpec):
        return value
    if isinstance(value, bool):
        raise SimulationError(_spec_error_message(value))
    if isinstance(value, int):
        if value < 1:
            raise SimulationError(_spec_error_message(value))
        return ExecutorSpec("thread", value)
    if not isinstance(value, str):
        raise SimulationError(_spec_error_message(value))

    text = value.strip()
    if text in EXECUTOR_KINDS:
        return ExecutorSpec(text, 1 if text == "serial" else None)
    if text.isdigit() or (text.startswith("-") and text[1:].isdigit()):
        count = int(text)
        if count < 1:
            raise SimulationError(_spec_error_message(value))
        return ExecutorSpec("thread", count)
    kind, separator, suffix = text.partition(":")
    if separator and kind in ("thread", "process"):
        if not suffix.isdigit() or int(suffix) < 1:
            raise SimulationError(_spec_error_message(value))
        return ExecutorSpec(kind, int(suffix))
    raise SimulationError(_spec_error_message(value))


def _spec_error_message(value) -> str:
    return (
        f"invalid executor spec {value!r}: expected 'serial', 'thread', "
        "'thread:N', 'process', 'process:N' or a positive integer"
    )


@dataclass(frozen=True)
class EngineReplicaSpec:
    """Everything needed to (re)build an engine replica in any worker.

    The fields are plain dataclasses and numpy arrays, so the spec pickles
    cleanly into worker processes; :meth:`build` reconstructs the engine —
    including re-programming its PCM tile plans on first use.  Replicas built
    from the same spec share the accelerator seed, and per-tile noise streams
    are content-keyed, so deterministic outputs are identical across replicas.
    """

    network: Network
    weights: Dict[str, np.ndarray]
    config: Optional[ChipConfig] = None
    noise_model: Optional[CrossbarNoiseModel] = None
    seed: int = 0
    #: Intra-replica tile sharding passed through to the accelerator
    #: (``"serial"``, ``"thread"`` or a worker count); replicas default to
    #: serial tile execution because serving parallelism already comes from
    #: the replica pool.
    execution: Union[str, int] = "serial"
    #: Optional representative input run through every replica at start-up so
    #: the one-time PCM tile programming does not land on the first request.
    warmup_image: Optional[np.ndarray] = None

    def build(self) -> FunctionalInferenceEngine:
        engine = FunctionalInferenceEngine(
            self.network,
            dict(self.weights),
            self.config,
            noise_model=self.noise_model,
            seed=self.seed,
            execution=self.execution,
        )
        if self.warmup_image is not None:
            engine.run_batch(np.asarray(self.warmup_image, dtype=float)[None])
        return engine


# ---------------------------------------------------------------------------
# process-worker plumbing (module level so it pickles)
# ---------------------------------------------------------------------------

_WORKER_ENGINE: Optional[FunctionalInferenceEngine] = None
_WORKER_BASELINE: Dict[str, object] = {}


def subtract_functional_statistics(
    current: Dict[str, object], baseline: Dict[str, object]
) -> Dict[str, object]:
    """``current - baseline``, counter-wise (tuples subtract elementwise)."""
    delta: Dict[str, object] = {}
    for key, value in current.items():
        base = baseline.get(key)
        if isinstance(value, tuple):
            base = base if isinstance(base, tuple) else (0,) * len(value)
            delta[key] = tuple(a - b for a, b in zip(value, base))
        else:
            delta[key] = value - (base or 0)
    return delta


def _process_worker_init(spec: EngineReplicaSpec) -> None:
    """Build this worker process's private engine replica (runs once).

    The post-build statistics snapshot (which includes any warmup batch) is
    kept as this replica's baseline, so the counters reported back to the
    parent describe served traffic only.
    """
    global _WORKER_ENGINE, _WORKER_BASELINE
    _WORKER_ENGINE = spec.build()
    _WORKER_BASELINE = _WORKER_ENGINE.accelerator.functional_statistics()


def _process_worker_run(images: np.ndarray) -> Tuple[int, np.ndarray, Dict[str, object]]:
    """Run one micro-batch on this process's replica.

    Returns ``(pid, outputs, stats)`` — the traffic-only functional
    statistics snapshot (start-up baseline subtracted) rides along with every
    result so the parent can aggregate per-replica counters without a
    separate round-trip.
    """
    if _WORKER_ENGINE is None:  # pragma: no cover - initializer always ran
        raise ServeError("process worker used before initialization")
    outputs = _WORKER_ENGINE.run_batch(images)
    stats = subtract_functional_statistics(
        _WORKER_ENGINE.accelerator.functional_statistics(), _WORKER_BASELINE
    )
    return os.getpid(), outputs, stats


def merge_functional_statistics(snapshots: List[Dict[str, object]]) -> Dict[str, object]:
    """Sum functional-statistics snapshots across engine replicas.

    Scalar counters add; the ``per_core_*`` tuples add elementwise.  An empty
    list yields an empty dict (no replica has executed yet).
    """
    merged: Dict[str, object] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if isinstance(value, tuple):
                previous = merged.get(key, (0,) * len(value))
                merged[key] = tuple(a + b for a, b in zip(previous, value))
            else:
                merged[key] = merged.get(key, 0) + value
    return merged


class EngineWorkerPool:
    """A pool of :class:`FunctionalInferenceEngine` replicas.

    Parameters
    ----------
    replica:
        The serialized engine description every worker builds its replica
        from.
    executor:
        Executor spelling (see :func:`parse_executor_spec`) or a parsed
        :class:`ExecutorSpec`.

    :meth:`submit` dispatches one micro-batch to one free replica and returns
    a future of the (batch, num_outputs) result; :meth:`run_batch_sharded`
    splits a large batch across all replicas and reassembles the outputs in
    input order.
    """

    def __init__(
        self,
        replica: EngineReplicaSpec,
        executor: Union[str, int, ExecutorSpec] = "serial",
    ) -> None:
        self.replica = replica
        self.spec = parse_executor_spec(executor)
        self.count = self.spec.resolved_count()
        self._closed = False
        self._engines: List[FunctionalInferenceEngine] = []
        self._baselines: List[Dict[str, object]] = []
        self._free: "queue.SimpleQueue[FunctionalInferenceEngine]" = queue.SimpleQueue()
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._process_stats: Dict[int, Dict[str, object]] = {}
        self._process_stats_lock = threading.Lock()

        if self.spec.kind == "process":
            self._process_pool = ProcessPoolExecutor(
                max_workers=self.count,
                initializer=_process_worker_init,
                initargs=(replica,),
            )
        else:
            self._engines = [replica.build() for _ in range(self.count)]
            # Traffic-only statistics: anything the build (warmup included)
            # accumulated is baseline, not served work.
            self._baselines = [
                engine.accelerator.functional_statistics() for engine in self._engines
            ]
            for engine in self._engines:
                self._free.put(engine)
            if self.spec.kind == "thread":
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=self.count, thread_name_prefix="serve-replica"
                )

    # ------------------------------------------------------------------ dispatch
    def submit(self, images: np.ndarray) -> "Future[np.ndarray]":
        """Dispatch one micro-batch to one free replica; returns a future."""
        if self._closed:
            raise ServeError("worker pool is closed")
        images = np.asarray(images, dtype=float)
        if self.spec.kind == "process":
            assert self._process_pool is not None
            outer: "Future[np.ndarray]" = Future()
            inner = self._process_pool.submit(_process_worker_run, images)
            inner.add_done_callback(lambda done: self._finish_process(done, outer))
            return outer
        if self.spec.kind == "thread":
            assert self._thread_pool is not None
            return self._thread_pool.submit(self._checkout_run, images)
        future: "Future[np.ndarray]" = Future()
        try:
            future.set_result(self._checkout_run(images))
        except Exception as error:  # surface through the future like the pools do
            future.set_exception(error)
        return future

    def _finish_process(self, inner: Future, outer: "Future[np.ndarray]") -> None:
        error = inner.exception()
        if error is not None:
            outer.set_exception(error)
            return
        pid, outputs, stats = inner.result()
        with self._process_stats_lock:
            self._process_stats[pid] = stats
        outer.set_result(outputs)

    def _checkout_run(self, images: np.ndarray) -> np.ndarray:
        engine = self._free.get()
        try:
            return engine.run_batch(images)
        finally:
            self._free.put(engine)

    def run_batch(self, images: np.ndarray) -> np.ndarray:
        """Run one batch on a single replica, synchronously."""
        return self.submit(images).result()

    def run_batch_sharded(self, images: np.ndarray) -> np.ndarray:
        """Split ``images`` across all replicas and reassemble in input order.

        This is the data-parallel path ``infer --workers process:N`` uses: each
        replica runs a contiguous chunk of the batch, and the chunk outputs are
        concatenated back in order, so deterministic results are bitwise
        identical to a single-engine :meth:`run_batch` of the whole batch.
        """
        images = np.asarray(images, dtype=float)
        chunks = [c for c in np.array_split(images, self.count) if c.shape[0] > 0]
        futures = [self.submit(chunk) for chunk in chunks]
        return np.concatenate([future.result() for future in futures], axis=0)

    # ------------------------------------------------------------------ stats
    def statistics(self) -> Dict[str, object]:
        """Aggregate *traffic-only* functional statistics across replicas.

        Whatever a replica accumulated while being built (including its
        warmup batch and the PCM tile programming it triggers) is treated as
        baseline and subtracted, so the counters describe served work and are
        comparable across executor kinds.  For process replicas the counters
        come from the snapshot piggybacked on each result, so replicas that
        have not executed a batch yet are invisible (the pool cannot reach
        into their address space) — which is consistent: a replica that never
        served contributes zero traffic.
        """
        if self.spec.kind == "process":
            with self._process_stats_lock:
                snapshots = list(self._process_stats.values())
        else:
            snapshots = [
                subtract_functional_statistics(
                    engine.accelerator.functional_statistics(), baseline
                )
                for engine, baseline in zip(self._engines, self._baselines)
            ]
        merged = merge_functional_statistics(snapshots)
        merged["replicas"] = self.count
        merged["executor"] = str(self.spec)
        return merged

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Shut the pool down (idempotent); pending futures complete first."""
        if self._closed:
            return
        self._closed = True
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)

    def __enter__(self) -> "EngineWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
