"""Executor specifications and the engine-replica worker pool.

Serving parallelism in this subsystem is *data parallelism over engine
replicas*: every worker owns a full :class:`~repro.core.inference.
FunctionalInferenceEngine` (network + weights + programmed PCM tiles), and
micro-batches are dispatched to whichever replica is free.  Three executor
kinds are supported, spelled the same way everywhere (the ``serve`` /
``loadgen`` commands and ``infer --workers`` share :func:`parse_executor_spec`):

``serial``
    One replica, executed inline on the calling thread.
``thread`` / ``thread:N``
    ``N`` replicas served by a thread pool.  Replicas are checked out of a
    free-list per dispatch, so no engine is ever used by two threads at once.
``process`` / ``process:N``
    ``N`` replicas, each living in its own worker *process*.  The replica
    specification (network, weights, chip config, noise model, seed) is
    serialized to every worker, which rebuilds — and re-programs — its own
    tile plans at start-up.  Because the per-tile noise seeds are
    content-keyed (see :mod:`repro.core.accelerator`), every replica programs
    bitwise-identical tiles; in deterministic mode the pool's outputs are
    bitwise identical to a single local engine.  This is the executor that
    finally scales sharded functional inference past the GIL.
"""

from __future__ import annotations

import itertools
import os
import pickle
import queue
import signal
import threading
import time
from collections import Counter
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.concurrency import make_lock, thread_shared
from repro.config.chip import ChipConfig
from repro.core.inference import FunctionalInferenceEngine
from repro.crossbar.noise import CrossbarNoiseModel
from repro.errors import (
    CorruptResultError,
    ReplicaCrashError,
    ReplicaFailureError,
    ReplicaTimeoutError,
    ServeError,
    SimulationError,
)
from repro.nn.network import Network
from repro.obs.tracing import DispatchTraceRecorder, replica_span_records
from repro.serve.faults import FaultAction, FaultInjector
from repro.serve.shm import (
    DEFAULT_SLOT_BATCH,
    ArenaLayout,
    ShmSlotArena,
    SlotDescriptor,
    attach_untracked,
    parse_ipc_mode,
)

#: Executor kinds understood by :func:`parse_executor_spec`.
EXECUTOR_KINDS = ("serial", "thread", "process")

#: Default replica count when a bare ``thread`` / ``process`` spelling leaves
#: it implicit and no contextual default applies (bounded so a bare spelling
#: on a many-core host cannot fork dozens of replicas by accident).
DEFAULT_REPLICAS = max(2, min(4, os.cpu_count() or 2))


@dataclass(frozen=True)
class ExecutorSpec:
    """A parsed executor specification.

    ``count is None`` means "use the context's default" — the sharded tile
    datapath maps a bare ``thread`` to one worker per crossbar core, while the
    serving pool maps bare ``thread`` / ``process`` to :data:`DEFAULT_REPLICAS`.
    """

    kind: str
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in EXECUTOR_KINDS:
            raise SimulationError(
                f"executor kind must be one of {EXECUTOR_KINDS}, got {self.kind!r}"
            )
        if self.kind == "serial":
            object.__setattr__(self, "count", 1)
        if self.count is not None and self.count < 1:
            raise SimulationError(
                f"executor worker count must be >= 1, got {self.count}"
            )

    def resolved_count(self, default: int = DEFAULT_REPLICAS) -> int:
        """The worker count, with ``default`` filling an implicit spelling."""
        return int(self.count) if self.count is not None else max(int(default), 1)

    def __str__(self) -> str:
        if self.kind == "serial" or self.count is None:
            return self.kind
        return f"{self.kind}:{self.count}"


def parse_executor_spec(value: Union[str, int, "ExecutorSpec"]) -> ExecutorSpec:
    """Parse an executor spelling shared by ``serve`` and ``infer --workers``.

    Accepted spellings: ``"serial"``, ``"thread"``, ``"thread:N"``,
    ``"process"``, ``"process:N"`` and a bare positive integer (kept for
    backwards compatibility with ``infer --workers N``, where it means a
    thread pool of ``N`` workers).  Anything else raises a
    :class:`~repro.errors.SimulationError` naming the accepted forms.
    """
    if isinstance(value, ExecutorSpec):
        return value
    if isinstance(value, bool):
        raise SimulationError(_spec_error_message(value))
    if isinstance(value, int):
        if value < 1:
            raise SimulationError(_spec_error_message(value))
        return ExecutorSpec("thread", value)
    if not isinstance(value, str):
        raise SimulationError(_spec_error_message(value))

    text = value.strip()
    if text in EXECUTOR_KINDS:
        return ExecutorSpec(text, 1 if text == "serial" else None)
    if text.isdigit() or (text.startswith("-") and text[1:].isdigit()):
        count = int(text)
        if count < 1:
            raise SimulationError(_spec_error_message(value))
        return ExecutorSpec("thread", count)
    kind, separator, suffix = text.partition(":")
    if separator and kind in ("thread", "process"):
        if not suffix.isdigit() or int(suffix) < 1:
            raise SimulationError(_spec_error_message(value))
        return ExecutorSpec(kind, int(suffix))
    raise SimulationError(_spec_error_message(value))


def _spec_error_message(value) -> str:
    return (
        f"invalid executor spec {value!r}: expected 'serial', 'thread', "
        "'thread:N', 'process', 'process:N' or a positive integer"
    )


#: How many times any :class:`EngineReplicaSpec` has been pickled in this
#: process.  The worker pool serializes each spec exactly once (the payload
#: is cached and reused across replica builds *and* supervision restarts);
#: this counter is the hook the regression test uses to prove it.
_SPEC_SERIALIZATIONS = 0


def spec_serialization_count() -> int:
    """Process-wide count of :class:`EngineReplicaSpec` pickle events."""
    return _SPEC_SERIALIZATIONS


@dataclass(frozen=True)
class EngineReplicaSpec:
    """Everything needed to (re)build an engine replica in any worker.

    The fields are plain dataclasses and numpy arrays, so the spec pickles
    cleanly into worker processes; :meth:`build` reconstructs the engine —
    including re-programming its PCM tile plans on first use.  Replicas built
    from the same spec share the accelerator seed, and per-tile noise streams
    are content-keyed, so deterministic outputs are identical across replicas.

    Serializing a spec is not cheap (the weights ride along), so the pool
    pickles it once and hands every worker the same cached bytes;
    :meth:`__getstate__` counts serializations to keep that guarantee tested.
    """

    network: Network
    weights: Dict[str, np.ndarray]
    config: Optional[ChipConfig] = None
    noise_model: Optional[CrossbarNoiseModel] = None
    seed: int = 0
    #: Intra-replica tile sharding passed through to the accelerator
    #: (``"serial"``, ``"thread"`` or a worker count); replicas default to
    #: serial tile execution because serving parallelism already comes from
    #: the replica pool.
    execution: Union[str, int] = "serial"
    #: Optional representative input run through every replica at start-up so
    #: the one-time PCM tile programming does not land on the first request.
    warmup_image: Optional[np.ndarray] = None

    def __getstate__(self) -> Dict[str, object]:
        global _SPEC_SERIALIZATIONS
        _SPEC_SERIALIZATIONS += 1
        return dict(self.__dict__)

    def build(self) -> FunctionalInferenceEngine:
        engine = FunctionalInferenceEngine(
            self.network,
            dict(self.weights),
            self.config,
            noise_model=self.noise_model,
            seed=self.seed,
            execution=self.execution,
        )
        if self.warmup_image is not None:
            engine.run_batch(np.asarray(self.warmup_image, dtype=float)[None])
        return engine


# ---------------------------------------------------------------------------
# process-worker plumbing (module level so it pickles)
# ---------------------------------------------------------------------------

_WORKER_ENGINE: Optional[FunctionalInferenceEngine] = None
_WORKER_BASELINE: Dict[str, object] = {}
#: ``(ArenaLayout, SharedMemory)`` when this worker serves an shm-mode pool;
#: attached once at initialization, untracked (the parent owns the segment).
_WORKER_SEGMENT: Optional[Tuple[ArenaLayout, object]] = None

#: Per-process uniquifier for replica span ids: a batch retried on the same
#: worker (or two batches on one worker) must not reuse span ids.
_WORKER_SPAN_TOKEN = itertools.count()


def subtract_functional_statistics(
    current: Dict[str, object], baseline: Dict[str, object]
) -> Dict[str, object]:
    """``current - baseline``, counter-wise (tuples subtract elementwise)."""
    delta: Dict[str, object] = {}
    for key, value in current.items():
        base = baseline.get(key)
        if isinstance(value, tuple):
            base = base if isinstance(base, tuple) else (0,) * len(value)
            delta[key] = tuple(a - b for a, b in zip(value, base))
        else:
            delta[key] = value - (base or 0)
    return delta


def _process_worker_init(
    payload: Union[bytes, EngineReplicaSpec],
    arena_layout: Optional[ArenaLayout] = None,
) -> None:
    """Build this worker process's private engine replica (runs once).

    ``payload`` is normally the pool's cached ``pickle.dumps(spec)`` bytes —
    decoded here so the executor machinery never re-pickles the spec itself —
    but a raw spec is still accepted for direct use.  In shm mode
    ``arena_layout`` describes the pool's shared segment; the worker attaches
    *untracked* (the parent owns the segment's lifetime) and keeps the
    mapping for every later dispatch.

    The post-build statistics snapshot (which includes any warmup batch) is
    kept as this replica's baseline, so the counters reported back to the
    parent describe served traffic only.
    """
    global _WORKER_ENGINE, _WORKER_BASELINE, _WORKER_SEGMENT
    spec = pickle.loads(payload) if isinstance(payload, bytes) else payload
    _WORKER_ENGINE = spec.build()
    _WORKER_BASELINE = _WORKER_ENGINE.accelerator.functional_statistics()
    if arena_layout is not None:
        _WORKER_SEGMENT = (arena_layout, attach_untracked(arena_layout.name))


def _poison_outputs(outputs: np.ndarray) -> np.ndarray:
    """NaN-poison a copy of ``outputs`` (the ``corrupt`` fault payload)."""
    poisoned = np.array(outputs, dtype=float, copy=True)
    poisoned.reshape(-1)[0] = np.nan
    return poisoned


def _process_worker_run(
    images: np.ndarray,
    fault: Optional[FaultAction] = None,
    trace_contexts: Optional[List[Tuple[str, str]]] = None,
) -> Tuple[int, np.ndarray, Dict[str, object], List[Dict[str, object]]]:
    """Run one micro-batch on this process's replica.

    Returns ``(pid, outputs, stats, trace_records)`` — the traffic-only
    functional statistics snapshot (start-up baseline subtracted) rides along
    with every result so the parent can aggregate per-replica counters
    without a separate round-trip, and so do the replica-side span records
    when ``trace_contexts`` carries ``(trace_id, parent_span_id)`` pairs
    across the pickle boundary (see
    :func:`repro.obs.tracing.replica_span_records`; times are relative to
    this call's entry, on this process's own monotonic clock).

    ``fault`` (injected chaos, see :mod:`repro.serve.faults`) is applied
    *here*, inside the worker process, so an injected ``crash`` is a real
    SIGKILL mid-batch (the parent sees ``BrokenProcessPool``, exactly like a
    genuine OOM kill), ``hang``/``slow`` stall the worker for real, and
    ``corrupt`` returns NaN-poisoned outputs for the parent's validation to
    catch.
    """
    if _WORKER_ENGINE is None:  # pragma: no cover - initializer always ran
        raise ServeError("process worker used before initialization")
    entry_s = time.monotonic()
    if fault is not None:
        if fault.kind == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault.kind in ("hang", "slow"):
            time.sleep(fault.delay_s)
    outputs = _WORKER_ENGINE.run_batch(images)
    if fault is not None and fault.kind == "corrupt":
        outputs = _poison_outputs(outputs)
    stats = subtract_functional_statistics(
        _WORKER_ENGINE.accelerator.functional_statistics(), _WORKER_BASELINE
    )
    records: List[Dict[str, object]] = []
    if trace_contexts:
        records = replica_span_records(
            trace_contexts,
            os.getpid(),
            next(_WORKER_SPAN_TOKEN),
            0.0,
            time.monotonic() - entry_s,
            batch=int(np.asarray(images).shape[0]),
        )
    return os.getpid(), outputs, stats, records


def _process_worker_run_shm(
    slot: SlotDescriptor,
    fault: Optional[FaultAction] = None,
    trace_contexts: Optional[List[Tuple[str, str]]] = None,
) -> Tuple[int, int, Dict[str, object], List[Dict[str, object]]]:
    """Run one micro-batch whose tensors live in the shared-memory arena.

    The zero-copy twin of :func:`_process_worker_run`: inputs are read in
    place from the slot's numpy view, outputs are written back into the same
    slot, and only ``(pid, rows, stats, trace_records)`` crosses the pipe.
    Fault semantics are identical — an injected ``crash`` SIGKILLs this
    process *before* the slot is read, which is exactly what proves the
    supervision contract: the parent still owns the slot, the input bytes are
    still live, and the retry re-dispatches them bitwise to the replacement.
    """
    if _WORKER_ENGINE is None or _WORKER_SEGMENT is None:  # pragma: no cover
        raise ServeError("shm process worker used before initialization")
    entry_s = time.monotonic()
    if fault is not None:
        if fault.kind == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault.kind in ("hang", "slow"):
            time.sleep(fault.delay_s)
    layout, segment = _WORKER_SEGMENT
    inputs, out_view = layout.slot_views(segment.buf, slot.index)
    outputs = _WORKER_ENGINE.run_batch(inputs[: slot.batch])
    if fault is not None and fault.kind == "corrupt":
        outputs = _poison_outputs(outputs)
    out_view[: slot.batch] = outputs
    stats = subtract_functional_statistics(
        _WORKER_ENGINE.accelerator.functional_statistics(), _WORKER_BASELINE
    )
    records: List[Dict[str, object]] = []
    if trace_contexts:
        records = replica_span_records(
            trace_contexts,
            os.getpid(),
            next(_WORKER_SPAN_TOKEN),
            0.0,
            time.monotonic() - entry_s,
            batch=int(slot.batch),
        )
    return os.getpid(), int(slot.batch), stats, records


def merge_functional_statistics(snapshots: List[Dict[str, object]]) -> Dict[str, object]:
    """Sum functional-statistics snapshots across engine replicas.

    Scalar counters add; the ``per_core_*`` tuples add elementwise.  An empty
    list yields an empty dict (no replica has executed yet).
    """
    merged: Dict[str, object] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if isinstance(value, tuple):
                previous = merged.get(key, (0,) * len(value))
                merged[key] = tuple(a + b for a, b in zip(previous, value))
            else:
                merged[key] = merged.get(key, 0) + value
    return merged


class _LocalReplica:
    """One in-process engine replica (``serial`` / ``thread`` executors).

    A thread cannot be SIGKILLed or interrupted mid-``run_batch``, so the
    ``crash`` and ``hang`` faults are *simulated* here: a crash raises
    :class:`~repro.errors.ReplicaCrashError` before touching the engine, and
    a hang sleeps (bounded by the dispatch timeout) then raises
    :class:`~repro.errors.ReplicaTimeoutError` — the same exceptions the
    supervision layer sees from a real process-replica death or timeout, so
    every retry/restart path is exercised without a process executor.
    """

    def __init__(self, spec: EngineReplicaSpec) -> None:
        self.engine = spec.build()
        # Traffic-only statistics: anything the build (warmup included)
        # accumulated is baseline, not served work.
        self.baseline = self.engine.accelerator.functional_statistics()

    def run(
        self,
        images: np.ndarray,
        timeout_s: Optional[float] = None,
        fault: Optional[FaultAction] = None,
        recorder: Optional[DispatchTraceRecorder] = None,
    ) -> np.ndarray:
        start_s = time.monotonic()
        if fault is not None:
            if fault.kind == "crash":
                raise ReplicaCrashError("injected crash (in-process replica)")
            if fault.kind == "hang":
                stall = fault.delay_s if timeout_s is None else min(fault.delay_s, timeout_s)
                time.sleep(stall)
                raise ReplicaTimeoutError(
                    f"injected hang: replica stalled past the "
                    f"{timeout_s if timeout_s is not None else fault.delay_s} s budget"
                )
            if fault.kind == "slow":
                time.sleep(fault.delay_s)
        outputs = self.engine.run_batch(images)
        if fault is not None and fault.kind == "corrupt":
            outputs = _poison_outputs(outputs)
        if recorder is not None and recorder.contexts:
            records = replica_span_records(
                recorder.contexts,
                os.getpid(),
                next(_WORKER_SPAN_TOKEN),
                0.0,
                time.monotonic() - start_s,
                batch=int(np.asarray(images).shape[0]),
            )
            recorder.add_replica_records(records, start_s)
        return outputs

    def statistics_delta(self) -> Dict[str, object]:
        return subtract_functional_statistics(
            self.engine.accelerator.functional_statistics(), self.baseline
        )

    def kill(self) -> None:
        pass

    def close(self) -> None:
        pass


class _ProcessReplica:
    """One engine replica living in its own worker process.

    Each replica owns a single-worker :class:`ProcessPoolExecutor`, so the
    pool can add and retire process replicas independently (the fixed-size
    executor of the original design could not grow or shrink).  Per-batch
    functional statistics ride back with every result and are pushed into the
    owning pool's pid-keyed sink, where they survive the replica's retirement.

    ``payload`` is the pool's cached ``pickle.dumps(spec)`` — serialized once
    per pool, not once per replica build, so supervision restarts do not
    re-pickle the (weight-laden) spec.  In shm mode ``arena`` is the pool's
    shared slot arena: dispatches carrying a :class:`SlotDescriptor` take the
    zero-copy path, and results are read back out of the slot on this side.
    """

    def __init__(
        self,
        payload: Union[bytes, EngineReplicaSpec],
        stats_sink,
        arena: Optional[ShmSlotArena] = None,
    ) -> None:
        self._executor = ProcessPoolExecutor(
            max_workers=1,
            initializer=_process_worker_init,
            initargs=(payload, arena.layout if arena is not None else None),
        )
        self._stats_sink = stats_sink
        self._arena = arena

    def run(
        self,
        images: np.ndarray,
        timeout_s: Optional[float] = None,
        fault: Optional[FaultAction] = None,
        recorder: Optional[DispatchTraceRecorder] = None,
        slot: Optional[SlotDescriptor] = None,
    ) -> np.ndarray:
        contexts = list(recorder.contexts) if recorder is not None else None
        # Worker span records carry times relative to the worker's own entry;
        # rebasing them on the submit timestamp keeps them on this process's
        # monotonic timeline (the small pickle/IPC lead is absorbed into the
        # replica_run span rather than appearing as an unexplained gap).
        base_s = time.monotonic()
        if slot is not None:
            future = self._executor.submit(
                _process_worker_run_shm, slot, fault, contexts
            )
        else:
            future = self._executor.submit(
                _process_worker_run, images, fault, contexts
            )
        try:
            pid, outputs, stats, records = future.result(timeout=timeout_s)
        except FuturesTimeoutError:
            # The worker is hung (or just too slow): it stays checked out of
            # the free list, so the supervisor can kill and replace it
            # without racing a late result.
            raise ReplicaTimeoutError(
                f"process replica did not answer within {timeout_s} s"
            ) from None
        self._stats_sink(pid, stats)
        if recorder is not None and records:
            recorder.add_replica_records(records, base_s)
        if slot is not None:
            # The worker wrote the result rows into the slot before its
            # control message resolved the future (the happens-before edge),
            # so this read can never be torn.
            return self._arena.read_outputs(slot)
        return outputs

    def statistics_delta(self) -> Optional[Dict[str, object]]:
        return None  # reported through the pid-keyed sink instead

    def pids(self) -> List[int]:
        """Live worker PIDs (empty until the lazy first dispatch forks)."""
        processes = getattr(self._executor, "_processes", None) or {}
        return [proc.pid for proc in list(processes.values()) if proc.pid is not None]

    def kill(self) -> None:
        """Hard-stop the worker process (used when it is hung or broken)."""
        processes = getattr(self._executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, ValueError):
                pass  # already dead or already reaped; the goal is "not running"
        self._executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        self._executor.shutdown(wait=True)


@thread_shared
class EngineWorkerPool:
    """A dynamically sized pool of :class:`FunctionalInferenceEngine` replicas.

    Parameters
    ----------
    replica:
        The serialized engine description every worker builds its replica
        from.
    executor:
        Executor spelling (see :func:`parse_executor_spec`) or a parsed
        :class:`ExecutorSpec`.
    max_count:
        Upper bound for :meth:`resize` (head-room the autoscaler can grow
        into).  Defaults to the executor's replica count, i.e. a fixed pool.
    dispatch_timeout_s:
        Per-dispatch answer budget.  A process replica that does not return
        within it is declared hung, hard-killed and replaced; ``None`` (the
        default) waits forever.  In-process replicas cannot be interrupted,
        so for ``thread`` pools the budget only bounds *injected* hangs.
    max_attempts:
        Dispatch attempts per micro-batch before it fails permanently with
        :class:`~repro.errors.ReplicaFailureError`.  Inference is pure, so a
        retried batch re-executes bitwise identically on the fresh replica.
    backoff_base_s, backoff_max_s:
        Exponential restart backoff: the ``k``-th consecutive replica failure
        waits ``min(backoff_base_s * 2**(k-1), backoff_max_s)`` before the
        replacement replica is built (a crash-looping workload must not
        hot-spin rebuilds).  A successful batch resets the streak.
    fault_injector:
        Optional :class:`~repro.serve.faults.FaultInjector` consulted once
        per dispatch.  ``None`` (the default) skips injection entirely.
    validate_outputs:
        Reject non-finite (NaN/Inf) replica outputs as
        :class:`~repro.errors.CorruptResultError`, which counts as a replica
        failure and triggers the same replace-and-retry path.
    sleep:
        Injectable backoff sleeper (tests pass a recorder to assert the
        exponential schedule without waiting it out).
    ipc:
        Tensor transport across the ``process`` replica boundary:
        ``"pickle"`` (the default) serializes batches through the executor
        pipe; ``"shm"`` routes them through a preallocated shared-memory
        slot arena (:class:`~repro.serve.shm.ShmSlotArena`) so only a tiny
        slot descriptor is pickled per dispatch.  Local (``serial`` /
        ``thread``) replicas already share the caller's address space, so
        the knob is accepted but has no effect there.  Outputs are bitwise
        identical in both modes.
    slot_batch:
        Per-slot batch capacity in shm mode (rows of the arena's input and
        output regions).  Defaults to
        :data:`~repro.serve.shm.DEFAULT_SLOT_BATCH`; the server passes its
        ``max_batch`` so every micro-batch fits one slot.  Oversized batches
        transparently fall back to the pickle path (and are counted).

    :meth:`submit` dispatches one micro-batch to one free replica and returns
    a future of the (batch, num_outputs) result; :meth:`run_batch_sharded`
    splits a large batch across all replicas and reassembles the outputs in
    input order; :meth:`resize` grows or shrinks the replica set at runtime
    (``thread`` / ``process`` kinds), draining each retiring replica —
    waiting for its in-flight batch — before tearing it down.

    **Supervision.**  A replica that crashes (``BrokenProcessPool``), hangs
    past ``dispatch_timeout_s``, or returns corrupted outputs is *retired* —
    never returned to the free list, which is the invariant that keeps one
    dead process from poisoning the pool — and replaced in place (the pool's
    ``count`` never changes during a restart, so a concurrent ``resize()``
    neither double-counts nor retires the recovering slot).  The failed
    batch is re-dispatched to another replica up to ``max_attempts`` times.
    """

    def __init__(
        self,
        replica: EngineReplicaSpec,
        executor: Union[str, int, ExecutorSpec] = "serial",
        max_count: Optional[int] = None,
        *,
        dispatch_timeout_s: Optional[float] = None,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        fault_injector: Optional[FaultInjector] = None,
        validate_outputs: bool = True,
        sleep: Callable[[float], None] = time.sleep,
        ipc: str = "pickle",
        slot_batch: Optional[int] = None,
    ) -> None:
        self.replica = replica
        self.spec = parse_executor_spec(executor)
        self.ipc = parse_ipc_mode(ipc)
        self.count = self.spec.resolved_count()
        self.max_count = (
            self.count if max_count is None else max(self.count, int(max_count))
        )
        if dispatch_timeout_s is not None and dispatch_timeout_s <= 0:
            raise SimulationError(
                f"dispatch_timeout_s must be > 0 (or None), got {dispatch_timeout_s}"
            )
        if int(max_attempts) < 1:
            raise SimulationError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_base_s < 0 or backoff_max_s < 0:
            raise SimulationError("backoff_base_s and backoff_max_s must be >= 0")
        self.dispatch_timeout_s = dispatch_timeout_s
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.validate_outputs = bool(validate_outputs)
        self._injector = fault_injector
        self._sleep = sleep
        self._closed = False
        self._replicas: List[object] = []
        self._free: "queue.SimpleQueue[object]" = queue.SimpleQueue()
        # _resize_lock serializes resize() calls; _structure_lock guards the
        # replica/retired lists and is only ever held briefly, so stats reads
        # never wait behind a scale-down's drain.
        self._resize_lock = make_lock("EngineWorkerPool._resize_lock")
        self._structure_lock = make_lock("EngineWorkerPool._structure_lock")
        self._retired_stats: List[Dict[str, object]] = []
        self._dispatch: Optional[ThreadPoolExecutor] = None
        self._process_stats: Dict[int, Dict[str, object]] = {}
        self._process_stats_lock = make_lock("EngineWorkerPool._process_stats_lock")
        # Supervision bookkeeping (kept off the no-fault hot path: a clean
        # dispatch touches none of this beyond one unlocked streak read).
        self._fault_lock = make_lock("EngineWorkerPool._fault_lock")
        self._failure_counts: Counter = Counter()
        self._retry_histogram: Counter = Counter()
        self._restarts = 0
        self._restarting = 0
        self._batches_failed = 0
        self._batches_recovered = 0
        self._consecutive_failures = 0
        self._last_backoff_s = 0.0

        # One serialization per spec, ever: the cached payload is reused by
        # every replica build *and* every supervision restart (the
        # double-pickle fix — the weight-laden spec used to be re-pickled by
        # ProcessPoolExecutor on each restart).
        self._replica_payload: Optional[bytes] = None
        self._arena: Optional[ShmSlotArena] = None
        if self.spec.kind == "process":
            self._replica_payload = pickle.dumps(self.replica)
            if self.ipc == "shm":
                # One slot per potential dispatch thread: admission can
                # never deadlock, and resize() never outgrows the segment.
                self._arena = ShmSlotArena(
                    slot_batch=int(slot_batch) if slot_batch else DEFAULT_SLOT_BATCH,
                    input_shape=self.replica.network.input_shape.as_tuple(),
                    output_size=self.replica.network.output_shape.num_elements,
                    slots=self.max_count,
                )

        for _ in range(self.count):
            handle = self._build_replica()
            self._replicas.append(handle)
            self._free.put(handle)
        if self.spec.kind != "serial":
            # Dispatch threads block while their checked-out replica runs (for
            # process replicas: while waiting on the worker), so the pool
            # needs one potential thread per replica it may ever hold.
            self._dispatch = ThreadPoolExecutor(
                max_workers=self.max_count, thread_name_prefix="serve-replica"
            )

    def _build_replica(self):
        if self.spec.kind == "process":
            return _ProcessReplica(
                self._replica_payload, self._record_process_stats, arena=self._arena
            )
        return _LocalReplica(self.replica)

    def _record_process_stats(self, pid: int, stats: Dict[str, object]) -> None:
        with self._process_stats_lock:
            self._process_stats[pid] = stats

    # ------------------------------------------------------------------ dispatch
    def submit(
        self,
        images: np.ndarray,
        trace: Optional[DispatchTraceRecorder] = None,
    ) -> "Future[np.ndarray]":
        """Dispatch one micro-batch to one free replica; returns a future.

        ``trace`` (a :class:`~repro.obs.tracing.DispatchTraceRecorder`)
        carries the batch's span contexts down to the replica and collects
        retry/restart events plus replica-side child spans on the way back.
        """
        if self._closed:
            raise ServeError("worker pool is closed")
        images = np.asarray(images, dtype=float)
        if self._dispatch is not None:
            return self._dispatch.submit(self._checkout_run, images, trace)
        future: "Future[np.ndarray]" = Future()
        try:
            future.set_result(self._checkout_run(images, trace))
        except Exception as error:  # surface through the future like the pools do
            future.set_exception(error)
        return future

    def _checkout_run(
        self,
        images: np.ndarray,
        trace: Optional[DispatchTraceRecorder] = None,
    ) -> np.ndarray:
        slot: Optional[SlotDescriptor] = None
        if self._arena is not None:
            if self._arena.fits(images):
                # Acquire a slot and write the inputs ONCE, before the retry
                # loop: a replica SIGKILLed mid-batch never touches slot
                # bookkeeping, so the retry re-dispatches the identical
                # still-live bytes to the replacement replica.
                index = self._arena.acquire(timeout_s=self.dispatch_timeout_s)
                if index is not None:
                    slot = self._arena.write_inputs(index, images)
            if slot is None:
                # Oversized batch (or slot admission timed out): the pickle
                # path is always available and bitwise identical.
                self._arena.record_fallback()
        try:
            return self._checkout_run_attempts(images, trace, slot)
        finally:
            if slot is not None:
                self._arena.release(slot.index)

    def _checkout_run_attempts(
        self,
        images: np.ndarray,
        trace: Optional[DispatchTraceRecorder],
        slot: Optional[SlotDescriptor],
    ) -> np.ndarray:
        run_kwargs = {} if slot is None else {"slot": slot}
        attempt = 0
        while True:
            handle = self._free.get()
            attempt_start = time.monotonic()
            action = self._injector.next_action() if self._injector is not None else None
            try:
                outputs = handle.run(
                    images,
                    timeout_s=self.dispatch_timeout_s,
                    fault=action,
                    recorder=trace,
                    **run_kwargs,
                )
                if self.validate_outputs and not np.all(np.isfinite(outputs)):
                    raise CorruptResultError(
                        "replica returned non-finite outputs (NaN/Inf); "
                        "result dropped and replica replaced"
                    )
            except (
                ReplicaCrashError,
                ReplicaTimeoutError,
                CorruptResultError,
                BrokenExecutor,
            ) as error:
                # Replica fault: the handle is never returned to the free
                # list (a broken process pool would poison every later
                # dispatch) — it is retired and replaced, and the batch is
                # re-dispatched while the attempt budget lasts.
                attempt += 1
                failure_ts = time.monotonic()
                self._record_replica_failure(error)
                if trace is not None:
                    trace.add_event(
                        "attempt",
                        attempt_start,
                        failure_ts,
                        attempt=attempt,
                        error=type(error).__name__,
                    )
                try:
                    self._replace_replica(handle)
                except Exception as rebuild_error:
                    self._record_batch_failed()
                    raise ReplicaFailureError(
                        f"replica restart failed after {type(error).__name__} "
                        f"({error}): {rebuild_error}",
                        attempts=attempt,
                        last_error=error,
                    ) from error
                finally:
                    if trace is not None:
                        trace.add_event(
                            "restart", failure_ts, time.monotonic(), attempt=attempt
                        )
                if attempt >= self.max_attempts:
                    self._record_batch_failed()
                    raise ReplicaFailureError(
                        f"micro-batch failed after {attempt} dispatch "
                        f"attempt(s); last error: {type(error).__name__}: {error}",
                        attempts=attempt,
                        last_error=error,
                    ) from error
                continue
            except BaseException:
                # Not a replica fault (e.g. a malformed batch): the replica
                # is healthy, so return it and surface the error unchanged.
                self._free.put(handle)
                raise
            self._free.put(handle)
            self._record_batch_success(attempt)
            return outputs

    # ------------------------------------------------------------------ supervision
    def _record_replica_failure(self, error: BaseException) -> None:
        with self._fault_lock:
            self._failure_counts[type(error).__name__] += 1

    def _record_batch_failed(self) -> None:
        with self._fault_lock:
            self._batches_failed += 1

    def _record_batch_success(self, attempt: int) -> None:
        if attempt == 0 and self._consecutive_failures == 0:
            return  # clean dispatch on a healthy pool: nothing to record
        with self._fault_lock:
            if attempt:
                self._batches_recovered += 1
                self._retry_histogram[attempt] += 1
            self._consecutive_failures = 0

    def _replace_replica(self, failed: object) -> None:
        """Retire ``failed`` and install a fresh replica in its slot.

        The swap is in place under ``_structure_lock``, so ``count`` is
        constant throughout — a concurrent ``resize()`` sees a full-strength
        pool and can neither double-count the recovering slot nor retire it
        (only free-listed replicas are eligible for scale-down, and the
        failed handle is checked out).  The exponential backoff runs on the
        failing dispatch thread; healthy replicas keep serving meanwhile.
        """
        with self._fault_lock:
            self._consecutive_failures += 1
            streak = self._consecutive_failures
            self._restarting += 1
        try:
            delta = None
            try:
                delta = failed.statistics_delta()
            except Exception:  # repro: noqa[RPR105] - a dead process replica
                pass  # has no readable counters; losing its stats is the cost
            try:
                failed.kill()
            except Exception:  # repro: noqa[RPR105] - best-effort kill of an
                pass  # already-crashed replica; failure means it is gone
            backoff = min(
                self.backoff_base_s * (2 ** (streak - 1)), self.backoff_max_s
            )
            with self._fault_lock:
                self._last_backoff_s = backoff
            if backoff > 0:
                self._sleep(backoff)
            if self._closed:
                with self._structure_lock:
                    if failed in self._replicas:
                        self._replicas.remove(failed)
                        self.count = len(self._replicas)
                raise ServeError("worker pool closed during replica restart")
            replacement = self._build_replica()
            with self._structure_lock:
                if delta:
                    self._retired_stats.append(delta)
                try:
                    index = self._replicas.index(failed)
                except ValueError:
                    self._replicas.append(replacement)
                else:
                    self._replicas[index] = replacement
                self.count = len(self._replicas)
            self._free.put(replacement)
            with self._fault_lock:
                self._restarts += 1
        finally:
            with self._fault_lock:
                self._restarting -= 1

    @property
    def restarting(self) -> int:
        """Replica restarts in progress (the autoscaler defers scale-down)."""
        with self._fault_lock:
            return self._restarting

    def replica_pids(self) -> List[int]:
        """Worker PIDs of live process replicas (empty for local kinds)."""
        with self._structure_lock:
            handles = list(self._replicas)
        pids: List[int] = []
        for handle in handles:
            getter = getattr(handle, "pids", None)
            if getter is not None:
                pids.extend(getter())
        return pids

    def fault_statistics(self) -> Dict[str, object]:
        """Supervision counters: failures, restarts, retries, injection."""
        with self._fault_lock:
            stats: Dict[str, object] = {
                "dispatch_timeout_s": self.dispatch_timeout_s,
                "max_attempts": self.max_attempts,
                "replica_failures": dict(sorted(self._failure_counts.items())),
                "replica_restarts": self._restarts,
                "restarting": self._restarting,
                "batches_failed": self._batches_failed,
                "batches_recovered": self._batches_recovered,
                "retry_histogram": {
                    int(k): v for k, v in sorted(self._retry_histogram.items())
                },
                "consecutive_failures": self._consecutive_failures,
                "last_backoff_s": self._last_backoff_s,
            }
        stats["injection"] = (
            self._injector.snapshot() if self._injector is not None else None
        )
        return stats

    # ------------------------------------------------------------------ resize
    @property
    def resizable(self) -> bool:
        """Whether :meth:`resize` applies (``serial`` pools are fixed at 1)."""
        return self.spec.kind != "serial"

    def resize(self, target: int, drain_timeout_s: Optional[float] = 30.0) -> int:
        """Grow or shrink the replica set to ``target``; returns the new count.

        ``target`` is clamped into ``[1, max_count]``.  Growing builds fresh
        replicas (process replicas re-program their tiles in their own worker
        at first dispatch).  Shrinking *drains before retiring*: each retiring
        replica is taken out of the free list — which waits until its
        in-flight batch completes — so no work is ever dropped.  If a busy
        replica does not come free within ``drain_timeout_s`` the shrink
        stops early and the achieved count is returned.
        """
        if not self.resizable:
            raise ServeError(
                "serial worker pools execute inline and cannot be resized; "
                "use a thread:N or process:N executor"
            )
        if self._closed:
            raise ServeError("worker pool is closed")
        target = max(1, min(int(target), self.max_count))
        with self._resize_lock:
            while self.count < target:
                handle = self._build_replica()
                with self._structure_lock:
                    self._replicas.append(handle)
                    self.count = len(self._replicas)
                self._free.put(handle)
            while self.count > target:
                try:
                    # Drain-before-retire: wait (without holding the
                    # structure lock) until a replica comes free, i.e. its
                    # in-flight batch has completed.  _resize_lock is held by
                    # design — it only serializes resize() callers, never the
                    # dispatch path, so waiting under it cannot stall serving.
                    handle = self._free.get(timeout=drain_timeout_s)  # repro: noqa[RPR103]
                except queue.Empty:
                    break  # replicas stayed busy past the drain budget
                delta = handle.statistics_delta()
                with self._structure_lock:
                    if delta is not None:
                        self._retired_stats.append(delta)
                    self._replicas.remove(handle)
                    self.count = len(self._replicas)
                handle.close()
            return self.count

    def run_batch(self, images: np.ndarray) -> np.ndarray:
        """Run one batch on a single replica, synchronously."""
        return self.submit(images).result()

    def run_batch_sharded(self, images: np.ndarray) -> np.ndarray:
        """Split ``images`` across all replicas and reassemble in input order.

        This is the data-parallel path ``infer --workers process:N`` uses: each
        replica runs a contiguous chunk of the batch, and the chunk outputs are
        concatenated back in order, so deterministic results are bitwise
        identical to a single-engine :meth:`run_batch` of the whole batch.
        """
        images = np.asarray(images, dtype=float)
        chunks = [c for c in np.array_split(images, self.count) if c.shape[0] > 0]
        futures = [self.submit(chunk) for chunk in chunks]
        return np.concatenate([future.result() for future in futures], axis=0)

    # ------------------------------------------------------------------ stats
    def statistics(self) -> Dict[str, object]:
        """Aggregate *traffic-only* functional statistics across replicas.

        Whatever a replica accumulated while being built (including its
        warmup batch and the PCM tile programming it triggers) is treated as
        baseline and subtracted, so the counters describe served work and are
        comparable across executor kinds.  Replicas retired by :meth:`resize`
        keep contributing the traffic they served.  For process replicas the
        counters come from the snapshot piggybacked on each result, so
        replicas that have not executed a batch yet are invisible (the pool
        cannot reach into their address space) — which is consistent: a
        replica that never served contributes zero traffic.
        """
        if self.spec.kind == "process":
            with self._process_stats_lock:
                snapshots = list(self._process_stats.values())
        else:
            with self._structure_lock:
                handles = list(self._replicas)
                retired = list(self._retired_stats)
            snapshots = [handle.statistics_delta() for handle in handles] + retired
        merged = merge_functional_statistics([s for s in snapshots if s])
        merged["replicas"] = self.count
        merged["executor"] = str(self.spec)
        merged["faults"] = self.fault_statistics()
        merged["ipc"] = self.ipc_statistics()
        return merged

    def ipc_statistics(self) -> Dict[str, object]:
        """Transport telemetry: mode, slot occupancy, bytes kept off pickle."""
        stats: Dict[str, object] = {
            "mode": self.ipc,
            "zero_copy_active": self._arena is not None,
        }
        if self._arena is not None:
            stats.update(self._arena.snapshot())
        return stats

    def register_metrics(self, registry, labels: Optional[Dict[str, str]] = None) -> None:
        """Export pool state into a :class:`repro.obs.MetricsRegistry`.

        Registers a scrape-time collector over :meth:`statistics`, so the
        replica count, the accelerator's merged functional counters (the
        paper's cost drivers: PCM programming events/energy/time, tile-cache
        traffic, per-core dispatch balance) and the supervision counters all
        land on ``/metrics`` without double bookkeeping.
        """
        base = dict(labels or {})

        def _family(name, metric_type, help_text, samples):
            return {"name": name, "type": metric_type, "help": help_text, "samples": samples}

        def _collect():
            stats = self.statistics()
            faults = stats.get("faults") or {}
            families = [
                _family(
                    "repro_replicas",
                    "gauge",
                    "Live engine replicas in the worker pool.",
                    [(base, float(stats.get("replicas", 0)))],
                ),
                _family(
                    "repro_replica_restarts_total",
                    "counter",
                    "Replica restarts performed by the supervisor.",
                    [(base, float(faults.get("replica_restarts", 0)))],
                ),
                _family(
                    "repro_batches_recovered_total",
                    "counter",
                    "Micro-batches recovered by dispatch retry.",
                    [(base, float(faults.get("batches_recovered", 0)))],
                ),
            ]
            ipc = stats.get("ipc") or {}
            if ipc.get("zero_copy_active"):
                families.extend(
                    [
                        _family(
                            "repro_ipc_copy_bytes_avoided_total",
                            "counter",
                            "Tensor bytes moved through shared memory instead "
                            "of the pickle pipe.",
                            [({**base, "ipc": "shm"}, float(ipc.get("copy_bytes_avoided", 0)))],
                        ),
                        _family(
                            "repro_ipc_slots_in_use",
                            "gauge",
                            "Shared-memory arena slots currently checked out.",
                            [(base, float(ipc.get("slots_in_use", 0)))],
                        ),
                        _family(
                            "repro_ipc_slot_high_water",
                            "gauge",
                            "Peak concurrent shared-memory slot occupancy.",
                            [(base, float(ipc.get("slot_high_water", 0)))],
                        ),
                        _family(
                            "repro_ipc_pickle_fallbacks_total",
                            "counter",
                            "Dispatches that fell back to the pickle path "
                            "(oversized batch or slot admission timeout).",
                            [(base, float(ipc.get("pickle_fallbacks", 0)))],
                        ),
                    ]
                )
            failures = faults.get("replica_failures") or {}
            if failures:
                families.append(
                    _family(
                        "repro_replica_failures_total",
                        "counter",
                        "Replica failures by error type.",
                        [
                            ({**base, "error": error}, float(count))
                            for error, count in sorted(failures.items())
                        ],
                    )
                )
            for key, name, help_text in (
                (
                    "programming_events",
                    "repro_accelerator_programming_events_total",
                    "PCM tile programming events across replicas.",
                ),
                (
                    "programming_energy_j",
                    "repro_accelerator_programming_energy_joules_total",
                    "PCM tile programming energy across replicas (J).",
                ),
                (
                    "programming_time_s",
                    "repro_accelerator_programming_seconds_total",
                    "PCM tile programming time across replicas (s).",
                ),
                (
                    "sharded_dispatches",
                    "repro_accelerator_sharded_dispatches_total",
                    "Sharded tile dispatches across replicas.",
                ),
            ):
                if key in stats:
                    families.append(
                        _family(name, "counter", help_text, [(base, float(stats[key]))])
                    )
            cache_samples = [
                ({**base, "event": event}, float(stats[key]))
                for key, event in (
                    ("tile_cache_hits", "hit"),
                    ("tile_cache_misses", "miss"),
                    ("tile_cache_evictions", "eviction"),
                )
                if key in stats
            ]
            if cache_samples:
                families.append(
                    _family(
                        "repro_accelerator_tile_cache_total",
                        "counter",
                        "Tile-cache events by kind across replicas.",
                        cache_samples,
                    )
                )
            for key, name, help_text in (
                (
                    "per_core_tile_dispatches",
                    "repro_accelerator_core_tile_dispatches_total",
                    "Tile dispatches per crossbar core across replicas.",
                ),
                (
                    "per_core_busy_time_s",
                    "repro_accelerator_core_busy_seconds_total",
                    "Modelled busy time per crossbar core across replicas (s).",
                ),
            ):
                values = stats.get(key)
                if values:
                    families.append(
                        _family(
                            name,
                            "counter",
                            help_text,
                            [
                                ({**base, "core": str(index)}, float(value))
                                for index, value in enumerate(values)
                            ],
                        )
                    )
            return families

        registry.register_collector(_collect)

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Shut the pool down (idempotent); pending futures complete first."""
        with self._structure_lock:
            if self._closed:
                return
            self._closed = True
        if self._dispatch is not None:
            self._dispatch.shutdown(wait=True)
        for handle in self._replicas:
            handle.close()
        if self._arena is not None:
            # Workers have exited (their attachments die with them); the pool
            # is the segment's sole owner, so this unlink is the one and only.
            self._arena.close()

    def __enter__(self) -> "EngineWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
