"""Online inference serving: dynamic micro-batching over engine replicas.

The paper's throughput analysis (Fig. 7) shows batching is what amortises
PCM tile programming; this package turns that offline observation into an
*online* serving system.  Single-image requests are admitted into a bounded
queue, flushed into micro-batches by a ``max_batch`` / ``max_wait`` policy,
executed on a pool of :class:`~repro.core.inference.FunctionalInferenceEngine`
replicas (``serial``, ``thread:N`` or GIL-free ``process:N`` executors), and
delivered in submission order with full SLO telemetry (latency percentiles,
throughput, queue depth, batch-size histogram).

Two front-ends share that pipeline: in-process submission
(:class:`InferenceServer.submit`) and an HTTP socket
(:class:`ServeHTTPServer` — ``POST /v1/infer``, ``GET /v1/models``,
``GET /v1/stats``, ``GET /healthz``) with a matching stdlib
:class:`HTTPInferenceClient`.  Flush decisions are pluggable
(:class:`FixedFlushPolicy` / :class:`AdaptiveFlushPolicy` with SLO deadlines
and ``analytical_schedule()``-seeded batch auto-tuning).

Serving is **fault tolerant**: replica dispatches are supervised (crash /
hang / corruption detection, exponential-backoff restarts, bounded
re-dispatch — bitwise-identical because inference is pure), a per-model
:class:`CircuitBreaker` sheds load as HTTP 503 + ``Retry-After`` while a
model is sick, and a seeded deterministic :class:`FaultInjector`
(``--inject-fault``) makes the whole failure path testable in CI (the
``chaos`` lane).

One server can host **several named models** (a :class:`ModelRegistry` of
:class:`ModelDefinition`\\ s — each with its own batcher, flush policy,
telemetry and replica pool) behind the same endpoints, with requests routed
by model name; and an :class:`AutoscalerPolicy` enables the queue-depth
driven control loop that grows each model's replica pool under sustained
load and shrinks it back (drain-before-retire) after an idle cooldown.

Serving is **observable** end to end: every request carries a trace through
``admit → queue_wait → batch_assemble → dispatch → replica_execute →
reorder → deliver`` (propagated across process-replica boundaries, exported
as Chrome trace-event JSON or ``GET /v1/trace/{id}``), every component
registers into a unified :class:`~repro.obs.MetricsRegistry` exposed as
Prometheus text at ``GET /metrics``, and the per-stage latency breakdown
plus a slow-request exemplar log (``--slow-ms``) pinpoint where time goes.
See ``docs/observability.md``.

See ``docs/serving.md`` for the CLI commands (``python -m repro serve`` /
``python -m repro loadgen``), the HTTP API and the knob reference.
"""

from repro.serve.autoscaler import Autoscaler, AutoscalerPolicy, AutoscalerState
from repro.serve.batcher import (
    AdaptiveFlushPolicy,
    AnalyticalCostModel,
    FixedFlushPolicy,
    FlushPolicy,
    MicroBatcher,
    POLICY_KINDS,
    ServeRequest,
    make_flush_policy,
)
from repro.serve.faults import (
    FAULT_KINDS,
    CircuitBreaker,
    CircuitBreakerPolicy,
    FaultAction,
    FaultInjector,
    FaultRule,
    parse_fault_spec,
)
from repro.serve.registry import ModelDefinition, ModelRegistry
from repro.serve.http import (
    API_ROUTES,
    HTTPInferenceClient,
    ServeHTTPServer,
    decode_array_b64,
    encode_array_b64,
)
from repro.serve.http_async import AsyncServeHTTPServer
from repro.serve.loadgen import (
    ARRIVAL_PROCESSES,
    LoadGenerator,
    LoadReport,
    bursty_arrivals,
    mixed_model_schedule,
    poisson_arrivals,
)
from repro.serve.server import InferenceServer
from repro.serve.telemetry import (
    FrontendTelemetry,
    LatencyReservoir,
    ServeTelemetry,
    latency_summary,
)
from repro.serve.shm import (
    DEFAULT_SLOT_BATCH,
    IPC_MODES,
    ArenaLayout,
    ShmSlotArena,
    SlotDescriptor,
    parse_ipc_mode,
)
from repro.serve.workers import (
    DEFAULT_REPLICAS,
    EngineReplicaSpec,
    EngineWorkerPool,
    ExecutorSpec,
    merge_functional_statistics,
    parse_executor_spec,
    spec_serialization_count,
    subtract_functional_statistics,
)

__all__ = [
    "API_ROUTES",
    "ARRIVAL_PROCESSES",
    "AdaptiveFlushPolicy",
    "AnalyticalCostModel",
    "AsyncServeHTTPServer",
    "Autoscaler",
    "AutoscalerPolicy",
    "AutoscalerState",
    "ArenaLayout",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "DEFAULT_REPLICAS",
    "DEFAULT_SLOT_BATCH",
    "IPC_MODES",
    "EngineReplicaSpec",
    "EngineWorkerPool",
    "ExecutorSpec",
    "FAULT_KINDS",
    "FaultAction",
    "FaultInjector",
    "FaultRule",
    "FixedFlushPolicy",
    "FlushPolicy",
    "FrontendTelemetry",
    "HTTPInferenceClient",
    "InferenceServer",
    "LatencyReservoir",
    "LoadGenerator",
    "LoadReport",
    "MicroBatcher",
    "ModelDefinition",
    "ModelRegistry",
    "POLICY_KINDS",
    "ServeHTTPServer",
    "ServeRequest",
    "ServeTelemetry",
    "ShmSlotArena",
    "SlotDescriptor",
    "bursty_arrivals",
    "decode_array_b64",
    "encode_array_b64",
    "latency_summary",
    "make_flush_policy",
    "merge_functional_statistics",
    "mixed_model_schedule",
    "parse_executor_spec",
    "parse_fault_spec",
    "parse_ipc_mode",
    "poisson_arrivals",
    "spec_serialization_count",
    "subtract_functional_statistics",
]
