"""Online inference serving: dynamic micro-batching over engine replicas.

The paper's throughput analysis (Fig. 7) shows batching is what amortises
PCM tile programming; this package turns that offline observation into an
*online* serving system.  Single-image requests are admitted into a bounded
queue, flushed into micro-batches by a ``max_batch`` / ``max_wait`` policy,
executed on a pool of :class:`~repro.core.inference.FunctionalInferenceEngine`
replicas (``serial``, ``thread:N`` or GIL-free ``process:N`` executors), and
delivered in submission order with full SLO telemetry (latency percentiles,
throughput, queue depth, batch-size histogram).

See ``docs/serving.md`` for the CLI commands (``python -m repro serve`` /
``python -m repro loadgen``) and the knob reference.
"""

from repro.serve.batcher import MicroBatcher, ServeRequest
from repro.serve.loadgen import (
    ARRIVAL_PROCESSES,
    LoadGenerator,
    LoadReport,
    bursty_arrivals,
    poisson_arrivals,
)
from repro.serve.server import InferenceServer
from repro.serve.telemetry import ServeTelemetry, latency_summary
from repro.serve.workers import (
    DEFAULT_REPLICAS,
    EngineReplicaSpec,
    EngineWorkerPool,
    ExecutorSpec,
    merge_functional_statistics,
    parse_executor_spec,
    subtract_functional_statistics,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "DEFAULT_REPLICAS",
    "EngineReplicaSpec",
    "EngineWorkerPool",
    "ExecutorSpec",
    "InferenceServer",
    "LoadGenerator",
    "LoadReport",
    "MicroBatcher",
    "ServeRequest",
    "ServeTelemetry",
    "bursty_arrivals",
    "latency_summary",
    "merge_functional_statistics",
    "parse_executor_spec",
    "poisson_arrivals",
    "subtract_functional_statistics",
]
