"""The online inference server.

:class:`InferenceServer` glues the serving pipeline together::

    submit(image) ──▶ MicroBatcher ──▶ dispatch loop ──▶ EngineWorkerPool
         ▲                (bounded      (flush policy,     (serial /
         │                 queue,        in-flight bound)    thread:N /
      Future ◀── in-order delivery ◀── batch completion      process:N)

Guarantees
----------
* **In-order delivery**: response futures resolve in submission order even
  when later micro-batches finish first on a parallel executor (a re-order
  buffer holds early completions).  Head-of-line blocking is therefore
  *included* in the reported latency, which is what an SLO cares about.
* **Determinism**: with no noise model, served outputs are bitwise identical
  to a direct :meth:`FunctionalInferenceEngine.run_batch` of the same images,
  regardless of executor kind, batch boundaries or completion order.
* **Backpressure**: the admission queue is bounded (blocking or fail-fast
  submits), and at most ``2 × replicas`` micro-batches are in flight, so a
  slow executor pushes delay back into the queue instead of accumulating
  unbounded in-flight work.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.config.chip import ChipConfig
from repro.crossbar.noise import CrossbarNoiseModel
from repro.errors import ServeError
from repro.nn.network import Network
from repro.serve.batcher import (
    AnalyticalCostModel,
    FlushPolicy,
    MicroBatcher,
    ServeRequest,
    make_flush_policy,
)
from repro.serve.telemetry import ServeTelemetry
from repro.serve.workers import (
    EngineReplicaSpec,
    EngineWorkerPool,
    ExecutorSpec,
    parse_executor_spec,
)


class InferenceServer:
    """Online serving front-end over a pool of functional-engine replicas.

    Parameters
    ----------
    network, weights, config, noise_model, seed:
        Forwarded into every engine replica (see
        :class:`~repro.serve.workers.EngineReplicaSpec`).
    executor:
        Replica-pool executor spelling: ``"serial"``, ``"thread[:N]"`` or
        ``"process[:N]"`` (see :func:`~repro.serve.workers.parse_executor_spec`).
    intra_execution:
        Tile-sharding spec inside each replica (accelerator ``execution``).
    max_batch, max_wait_s, queue_capacity:
        Dynamic micro-batching policy; see :class:`~repro.serve.batcher.MicroBatcher`.
    policy:
        Flush-policy spelling (``"fixed"`` or ``"adaptive"``) or a built
        :class:`~repro.serve.batcher.FlushPolicy`.  ``"adaptive"`` budgets
        ``slo_s`` per request, caps its auto-tuned batches at ``max_batch``
        and seeds its cost model from the workload's analytical schedule.
    slo_s:
        Per-request latency budget for the adaptive policy (ignored by
        ``"fixed"``).
    warmup:
        Run one zero image through every replica at :meth:`start` so the
        one-time PCM tile programming does not land on the first request.
    on_response:
        Optional ``callback(seq, output)`` invoked in submission order as
        responses are delivered.
    """

    def __init__(
        self,
        network: Network,
        weights: Dict[str, np.ndarray],
        config: Optional[ChipConfig] = None,
        *,
        noise_model: Optional[CrossbarNoiseModel] = None,
        seed: int = 0,
        executor: Union[str, int, ExecutorSpec] = "serial",
        intra_execution: Union[str, int] = "serial",
        max_batch: int = 8,
        max_wait_s: float = 0.002,
        queue_capacity: int = 128,
        policy: Union[str, FlushPolicy] = "fixed",
        slo_s: float = 0.05,
        warmup: bool = True,
        on_response: Optional[Callable[[int, np.ndarray], None]] = None,
    ) -> None:
        self.network = network
        self.executor = parse_executor_spec(executor)
        self._input_shape = network.input_shape.as_tuple()
        warmup_image = np.zeros(self._input_shape) if warmup else None
        self._replica = EngineReplicaSpec(
            network=network,
            weights=dict(weights),
            config=config,
            noise_model=noise_model,
            seed=seed,
            execution=intra_execution,
            warmup_image=warmup_image,
        )
        cost_model = None
        if policy == "adaptive":
            cost_model = AnalyticalCostModel.from_workload(network, weights, config)
        self.policy = make_flush_policy(
            policy,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            slo_s=slo_s,
            cost_model=cost_model,
        )
        self.telemetry = ServeTelemetry()
        self._batcher = MicroBatcher(
            capacity=queue_capacity,
            policy=self.policy,
            on_flush=self.telemetry.record_flush,
        )
        self._on_response = on_response
        self._pool: Optional[EngineWorkerPool] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._inflight: Optional[threading.BoundedSemaphore] = None
        self._delivery_lock = threading.Lock()
        self._next_delivery_seq = 0
        self._completed: Dict[int, Tuple[ServeRequest, object]] = {}
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "InferenceServer":
        """Build the replica pool (programming tiles) and start dispatching."""
        if self._started:
            raise ServeError("server already started")
        self._pool = EngineWorkerPool(self._replica, self.executor)
        self._inflight = threading.BoundedSemaphore(2 * self._pool.count)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True
        )
        self._started = True
        self._dispatcher.start()
        return self

    def stop(self) -> None:
        """Drain queued requests, resolve their futures, shut the pool down."""
        if not self._started or self._stopped:
            return
        self._stopped = True
        self._batcher.close()
        assert self._dispatcher is not None and self._pool is not None
        self._dispatcher.join()
        self._pool.close()

    def __enter__(self) -> "InferenceServer":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ producer API
    def submit(
        self,
        image: np.ndarray,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> "Future[np.ndarray]":
        """Admit one single-image request; returns its response future.

        Raises :class:`~repro.errors.QueueOverflowError` on a full queue when
        ``block=False`` (or after ``timeout``), and :class:`ServeError` for
        wrong image shapes or a stopped server.
        """
        if not self._started or self._stopped:
            raise ServeError("server is not running (call start() before submit())")
        image = np.asarray(image, dtype=float)
        if image.shape != self._input_shape:
            raise ServeError(
                f"request image must have shape {self._input_shape}, got {image.shape}"
            )
        try:
            request = self._batcher.submit(image, block=block, timeout=timeout)
        except Exception:
            self.telemetry.record_rejection()
            raise
        self.telemetry.record_admission(self._batcher.depth)
        return request.future

    def serve_batch(self, images: np.ndarray) -> np.ndarray:
        """Submit every image of ``images`` and gather responses in order.

        Convenience for verification: the result is directly comparable with
        ``FunctionalInferenceEngine.run_batch(images)``.
        """
        futures = [self.submit(image) for image in np.asarray(images, dtype=float)]
        return np.stack([future.result() for future in futures])

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet dispatched to a replica."""
        return self._batcher.depth

    def stats(self) -> Dict[str, object]:
        """SLO telemetry snapshot plus aggregated replica-pool statistics."""
        pool_stats = self._pool.statistics() if self._pool is not None else {}
        return {
            "executor": str(self.executor),
            "max_batch": self._batcher.max_batch,
            "max_wait_s": self._batcher.max_wait_s,
            "queue_capacity": self._batcher.capacity,
            "policy": self.policy.snapshot(),
            "telemetry": self.telemetry.snapshot(),
            "pool": pool_stats,
        }

    # ------------------------------------------------------------------ dispatch
    def _dispatch_loop(self) -> None:
        assert self._pool is not None and self._inflight is not None
        while True:
            batch = self._batcher.next_batch(poll_timeout_s=0.05)
            if batch is None:
                if self._batcher.closed and self._batcher.depth == 0:
                    return
                continue
            images = np.stack([request.image for request in batch])
            self._inflight.acquire()
            dispatch_ts = time.monotonic()
            try:
                future = self._pool.submit(images)
            except BaseException as error:
                self._inflight.release()
                self._complete_batch(batch, error, dispatch_ts)
                continue
            future.add_done_callback(
                lambda done, batch=batch, ts=dispatch_ts: self._on_batch_done(
                    batch, ts, done
                )
            )

    def _on_batch_done(
        self, batch: List[ServeRequest], dispatch_ts: float, future: Future
    ) -> None:
        assert self._inflight is not None
        self._inflight.release()
        error = future.exception()
        outcome = error if error is not None else future.result()
        self._complete_batch(batch, outcome, dispatch_ts)

    def _complete_batch(
        self, batch: List[ServeRequest], outcome: object, dispatch_ts: float
    ) -> None:
        now = time.monotonic()
        self.telemetry.record_batch(len(batch), now - dispatch_ts)
        if not isinstance(outcome, BaseException):
            # Feed the flush policy so adaptive batching can calibrate its
            # wall-clock service-time scale from real dispatches.
            self._batcher.observe_batch(len(batch), now - dispatch_ts)
        with self._delivery_lock:
            if isinstance(outcome, BaseException):
                for request in batch:
                    self._completed[request.seq] = (request, outcome)
            else:
                outputs = np.asarray(outcome)
                for request, output in zip(batch, outputs):
                    self._completed[request.seq] = (request, output)
            self._deliver_ready_locked()

    def _deliver_ready_locked(self) -> None:
        """Release contiguous completed responses in submission order."""
        while self._next_delivery_seq in self._completed:
            request, outcome = self._completed.pop(self._next_delivery_seq)
            self._next_delivery_seq += 1
            delivery_ts = time.monotonic()
            if isinstance(outcome, BaseException):
                request.future.set_exception(outcome)
            else:
                self.telemetry.record_response(delivery_ts - request.enqueue_time)
                request.future.set_result(outcome)
                if self._on_response is not None:
                    try:
                        self._on_response(request.seq, outcome)
                    except Exception:
                        # A raising callback must not stall delivery of the
                        # responses still buffered behind it.
                        pass
