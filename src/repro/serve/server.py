"""The online inference server.

:class:`InferenceServer` glues the serving pipeline together, once per
hosted model::

    submit(image, model=...) ─▶ router ─▶ MicroBatcher ─▶ dispatch ─▶ EngineWorkerPool
         ▲                    (ModelRegistry) (bounded      loop        (serial /
         │                                     queue,      (per model)   thread:N /
      Future ◀──── in-order delivery ◀──────── batch completion          process:N)

A server hosts one or many named models (see
:class:`~repro.serve.registry.ModelRegistry`); every model owns its own
micro-batcher, flush policy, telemetry sink, worker pool and dispatch
thread, so one hot workload cannot head-of-line-block another.  Requests
that do not name a model route to the *default* (first registered) model,
which keeps the single-model constructor API — and its outputs — bitwise
unchanged.

Guarantees
----------
* **In-order delivery**: response futures resolve in submission order *per
  model* even when later micro-batches finish first on a parallel executor
  (a re-order buffer holds early completions).  Head-of-line blocking is
  therefore *included* in the reported latency, which is what an SLO cares
  about.
* **Determinism**: with no noise model, served outputs are bitwise identical
  to a direct :meth:`FunctionalInferenceEngine.run_batch` of the same images
  on the same model, regardless of executor kind, batch boundaries,
  completion order or how many other models the server hosts.
* **Backpressure**: each model's admission queue is bounded (blocking or
  fail-fast submits), and at most ``2 × max replicas`` micro-batches are in
  flight per model, so a slow executor pushes delay back into its own queue
  instead of accumulating unbounded in-flight work.
* **Elasticity**: with an :class:`~repro.serve.autoscaler.AutoscalerPolicy`,
  a per-server control loop grows each model's replica pool under sustained
  queue depth and shrinks it back after an idle cooldown, draining replicas
  (in-flight batches complete) before retiring them.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.concurrency import make_lock
from repro.config.chip import ChipConfig
from repro.crossbar.noise import CrossbarNoiseModel
from repro.errors import CircuitOpenError, ServeError
from repro.nn.network import Network
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowRequestLog
from repro.obs.tracing import DispatchTraceRecorder, Tracer
from repro.serve.autoscaler import Autoscaler, AutoscalerPolicy
from repro.serve.batcher import FlushPolicy, MicroBatcher, ServeRequest
from repro.serve.faults import BREAKER_CLOSED, BREAKER_OPEN, CircuitBreaker
from repro.serve.registry import ModelDefinition, ModelRegistry
from repro.serve.telemetry import ServeTelemetry
from repro.serve.workers import EngineWorkerPool, ExecutorSpec


class _ModelRuntime:
    """Everything one hosted model owns while the server runs."""

    def __init__(
        self,
        definition: ModelDefinition,
        autoscaler_policy: Optional[AutoscalerPolicy],
        on_response: Optional[Callable[[int, np.ndarray], None]],
        tracer: Optional[Tracer] = None,
        slow_log: Optional[SlowRequestLog] = None,
    ) -> None:
        self.definition = definition
        self.name = definition.name
        self.input_shape = definition.input_shape
        self.policy: FlushPolicy = definition.build_policy()
        self.telemetry = ServeTelemetry()
        self.tracer = tracer
        self.slow_log = slow_log
        self.batcher = MicroBatcher(
            capacity=definition.queue_capacity,
            policy=self.policy,
            on_flush=self.telemetry.record_flush,
        )
        self._on_response = on_response
        self.breaker: Optional[CircuitBreaker] = definition.build_breaker()

        # Replica range: per-model bounds override the autoscaler defaults;
        # without an autoscaler the executor's count is simply fixed.
        executor: ExecutorSpec = definition.executor
        if autoscaler_policy is not None:
            self.min_replicas = (
                autoscaler_policy.min_replicas
                if definition.min_replicas is None
                else int(definition.min_replicas)
            )
            self.max_replicas = (
                autoscaler_policy.max_replicas
                if definition.max_replicas is None
                else int(definition.max_replicas)
            )
            self.max_replicas = max(self.max_replicas, self.min_replicas)
        else:
            self.min_replicas = self.max_replicas = executor.resolved_count()

        self.pool: Optional[EngineWorkerPool] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._inflight: Optional[threading.BoundedSemaphore] = None
        self._delivery_lock = make_lock("_ModelRuntime._delivery_lock")
        self._next_delivery_seq = 0
        # seq -> (request, outcome-or-output, completion timestamp); the
        # completion timestamp bounds the request's reorder span.
        self._completed: Dict[int, Tuple[ServeRequest, object, float]] = {}

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        executor: ExecutorSpec = self.definition.executor
        if self.pool is not None:
            raise ServeError(f"model {self.name!r} already started")
        initial = executor.resolved_count()
        if executor.kind != "serial":
            initial = max(self.min_replicas, min(initial, self.max_replicas))
            executor = ExecutorSpec(executor.kind, initial)
        self.pool = EngineWorkerPool(
            self.definition.replica_spec(),
            executor,
            max_count=self.max_replicas,
            dispatch_timeout_s=self.definition.dispatch_timeout_s,
            max_attempts=self.definition.max_attempts,
            backoff_base_s=self.definition.backoff_base_s,
            backoff_max_s=self.definition.backoff_max_s,
            fault_injector=self.definition.build_fault_injector(),
            ipc=self.definition.ipc,
            # Size arena slots to the batcher's ceiling: every micro-batch
            # this model can ever form fits one slot, so the shm path never
            # needs its pickle fallback.
            slot_batch=self.definition.max_batch,
        )
        self._inflight = threading.BoundedSemaphore(2 * self.max_replicas)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name=f"serve-dispatch-{self.name}", daemon=True
        )
        self._dispatcher.start()

    def stop(self, drain: bool = True) -> None:
        """Stop this model: close admission, run down the dispatch loop.

        ``drain=True`` (graceful) finishes every queued request first;
        ``drain=False`` fails the still-queued requests immediately
        (in-flight batches complete either way — replicas are not killed).
        """
        self.batcher.close(drain=drain)
        if self._dispatcher is not None:
            self._dispatcher.join()
        if self.pool is not None:
            self.pool.close()

    # ------------------------------------------------------------------ health
    def health(self) -> str:
        """This model's health level: ``ok`` / ``degraded`` / ``down``.

        ``down`` means the breaker is open (admissions are shed);
        ``degraded`` means recovery is in progress — a replica restart, a
        run of consecutive dispatch failures, or a half-open breaker still
        probing.  Both resolve back to ``ok`` on clean traffic.
        """
        if self.breaker is not None and self.breaker.state == BREAKER_OPEN:
            return "down"
        if self.breaker is not None and self.breaker.state != BREAKER_CLOSED:
            return "degraded"
        if self.pool is not None:
            faults = self.pool.fault_statistics()
            if faults["restarting"] or faults["consecutive_failures"]:
                return "degraded"
        return "ok"

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, object]:
        """This model's SLO telemetry plus pool and scaling state."""
        pool_stats = self.pool.statistics() if self.pool is not None else {}
        return {
            "health": self.health(),
            "breaker": self.breaker.snapshot() if self.breaker is not None else None,
            "model": self.name,
            "network": self.definition.network.name,
            "executor": str(self.definition.executor),
            "max_batch": self.batcher.max_batch,
            "max_wait_s": self.batcher.max_wait_s,
            "queue_capacity": self.batcher.capacity,
            "queue_depth": self.batcher.depth,
            "replicas": self.pool.count if self.pool is not None else 0,
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "policy": self.policy.snapshot(),
            "telemetry": self.telemetry.snapshot(),
            "tracer": self.tracer.snapshot() if self.tracer is not None else None,
            "pool": pool_stats,
        }

    def describe(self, default: bool) -> Dict[str, object]:
        """The ``/v1/models`` listing entry for this model."""
        return {
            "name": self.name,
            "network": self.definition.network.name,
            "input_shape": list(self.input_shape),
            "executor": str(self.definition.executor),
            "policy": self.policy.kind,
            "replicas": self.pool.count if self.pool is not None else 0,
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "default": bool(default),
        }

    # ------------------------------------------------------------------ dispatch
    def _dispatch_loop(self) -> None:
        assert self.pool is not None and self._inflight is not None
        while True:
            batch = self.batcher.next_batch(poll_timeout_s=0.05)
            if batch is None:
                if self.batcher.closed and self.batcher.depth == 0:
                    return
                continue
            images = np.stack([request.image for request in batch])
            self._inflight.acquire()
            dispatch_ts = time.monotonic()
            # Record the queued stages for every traced request in the batch
            # and reserve each one's replica_execute span id; the id travels
            # to the replica as the parent for its own child spans and is
            # closed in _complete_batch.  The flush timestamp stamped by the
            # batcher splits queue_wait (waiting in line) from batch_assemble
            # (popped but not yet dispatched).
            traced = [request for request in batch if request.trace is not None]
            recorder: Optional[DispatchTraceRecorder] = None
            if traced:
                contexts = []
                for request in traced:
                    trace = request.trace
                    flush_ts = (
                        request.flush_time
                        if request.flush_time is not None
                        else dispatch_ts
                    )
                    trace.add_span(
                        "queue_wait",
                        request.enqueue_time,
                        flush_ts,
                        reason=request.flush_reason,
                    )
                    trace.add_span("batch_assemble", flush_ts, dispatch_ts, batch=len(batch))
                    contexts.append((trace.trace_id, trace.reserve_span_id()))
                recorder = DispatchTraceRecorder(contexts)
            try:
                future = self.pool.submit(images, trace=recorder)
            except BaseException as error:
                self._inflight.release()
                self._complete_batch(batch, error, dispatch_ts, dispatch_ts, recorder)
                continue
            submitted_ts = time.monotonic()
            for request in traced:
                request.trace.add_span(
                    "dispatch", dispatch_ts, submitted_ts, ipc=self.pool.ipc
                )
            future.add_done_callback(
                lambda done,
                batch=batch,
                ts=dispatch_ts,
                sub=submitted_ts,
                rec=recorder: self._on_batch_done(batch, ts, sub, rec, done)
            )

    def _on_batch_done(
        self,
        batch: List[ServeRequest],
        dispatch_ts: float,
        submitted_ts: float,
        recorder: Optional[DispatchTraceRecorder],
        future: Future,
    ) -> None:
        assert self._inflight is not None
        self._inflight.release()
        error = future.exception()
        outcome = error if error is not None else future.result()
        self._complete_batch(batch, outcome, dispatch_ts, submitted_ts, recorder)

    def _complete_batch(
        self,
        batch: List[ServeRequest],
        outcome: object,
        dispatch_ts: float,
        submitted_ts: Optional[float] = None,
        recorder: Optional[DispatchTraceRecorder] = None,
    ) -> None:
        now = time.monotonic()
        self.telemetry.record_batch(len(batch), now - dispatch_ts)
        if isinstance(outcome, BaseException):
            self.telemetry.record_batch_failure(len(batch))
            if self.breaker is not None:
                self.breaker.record_failure()
        else:
            if self.breaker is not None:
                self.breaker.record_success()
            # Feed the flush policy so adaptive batching can calibrate its
            # wall-clock service-time scale from real dispatches.
            self.batcher.observe_batch(len(batch), now - dispatch_ts)
        if recorder is not None:
            self._record_execution_spans(batch, outcome, submitted_ts or dispatch_ts, now, recorder)
        slow_entries: List[Dict[str, object]] = []
        with self._delivery_lock:
            if isinstance(outcome, BaseException):
                for request in batch:
                    self._completed[request.seq] = (request, outcome, now)
            else:
                outputs = np.asarray(outcome)
                for request, output in zip(batch, outputs):
                    self._completed[request.seq] = (request, output, now)
            slow_entries = self._deliver_ready_locked()
        # Exemplar I/O happens outside the delivery lock so a slow sink
        # cannot stall in-order delivery.
        if self.slow_log is not None:
            for entry in slow_entries:
                self.slow_log.observe(**entry)

    def _record_execution_spans(
        self,
        batch: List[ServeRequest],
        outcome: object,
        start_ts: float,
        end_ts: float,
        recorder: DispatchTraceRecorder,
    ) -> None:
        """Close every traced request's ``replica_execute`` span and splice in
        the pool's retry/restart events plus replica-side child spans."""
        records_by_trace: Dict[str, List[Dict[str, object]]] = {}
        for record in recorder.replica_records:
            records_by_trace.setdefault(str(record["trace_id"]), []).append(record)
        traced = [request for request in batch if request.trace is not None]
        failed = isinstance(outcome, BaseException)
        for request, (trace_id, span_id) in zip(traced, recorder.contexts):
            trace = request.trace
            meta: Dict[str, object] = {"batch": len(batch)}
            if failed:
                meta["error"] = type(outcome).__name__
            trace.add_span("replica_execute", start_ts, end_ts, span_id=span_id, **meta)
            for event in recorder.events:
                trace.add_span(
                    str(event["name"]),
                    float(event["start_s"]),
                    float(event["end_s"]),
                    parent_id=span_id,
                    **dict(event["meta"]),
                )
            for record in records_by_trace.get(trace_id, ()):
                trace.add_span(
                    str(record["name"]),
                    float(record["start_s"]),
                    float(record["end_s"]),
                    parent_id=str(record["parent_id"]),
                    span_id=str(record["span_id"]),
                    **dict(record["meta"]),
                )

    def _deliver_ready_locked(self) -> List[Dict[str, object]]:
        """Release contiguous completed responses in submission order.

        Returns slow-request exemplar entries for the caller to log *after*
        the delivery lock is released.
        """
        slow_entries: List[Dict[str, object]] = []
        while self._next_delivery_seq in self._completed:
            request, outcome, complete_ts = self._completed.pop(self._next_delivery_seq)
            self._next_delivery_seq += 1
            delivery_ts = time.monotonic()
            trace = request.trace
            if isinstance(outcome, BaseException):
                request.future.set_exception(outcome)
                if trace is not None:
                    trace.add_span("reorder", complete_ts, delivery_ts)
                    trace.finish(
                        delivery_ts, outcome="error", error=type(outcome).__name__
                    )
            else:
                latency_s = delivery_ts - request.enqueue_time
                self.telemetry.record_response(latency_s)
                request.future.set_result(outcome)
                if self._on_response is not None:
                    try:
                        self._on_response(request.seq, outcome)
                    except Exception:  # repro: noqa[RPR105] - a raising
                        # observer callback must not stall delivery of the
                        # responses still buffered behind it.
                        pass
                if trace is not None:
                    trace.add_span("reorder", complete_ts, delivery_ts)
                    done_ts = time.monotonic()
                    trace.add_span("deliver", delivery_ts, done_ts)
                    trace.finish(done_ts, outcome="ok", model=self.name, seq=request.seq)
                    stages = trace.stage_durations()
                    self.telemetry.record_stages(stages)
                    if (
                        self.slow_log is not None
                        and stages.get("e2e", latency_s) >= self.slow_log.threshold_s
                    ):
                        slow_entries.append(
                            {
                                "model": self.name,
                                "seq": request.seq,
                                "latency_s": stages.get("e2e", latency_s),
                                "trace_id": trace.trace_id,
                                "stages_s": stages,
                            }
                        )
        return slow_entries


class InferenceServer:
    """Online serving front-end over pools of functional-engine replicas.

    Two construction styles share one implementation:

    * **Single model** (the original API): pass ``network``/``weights`` plus
      the serving knobs; the server hosts one model named after the network.
    * **Multi-workload**: pass a :class:`~repro.serve.registry.ModelRegistry`
      via :meth:`hosting` (or ``registry=``); each
      :class:`~repro.serve.registry.ModelDefinition` carries its own knobs,
      and requests route by model name (default = first registered).

    Parameters
    ----------
    network, weights, config, noise_model, seed:
        Forwarded into every engine replica (see
        :class:`~repro.serve.workers.EngineReplicaSpec`).  Ignored (must be
        omitted) when ``registry`` is given.
    executor:
        Replica-pool executor spelling: ``"serial"``, ``"thread[:N]"`` or
        ``"process[:N]"`` (see :func:`~repro.serve.workers.parse_executor_spec`).
    intra_execution:
        Tile-sharding spec inside each replica (accelerator ``execution``).
    max_batch, max_wait_s, queue_capacity:
        Dynamic micro-batching policy; see :class:`~repro.serve.batcher.MicroBatcher`.
    policy:
        Flush-policy spelling (``"fixed"`` or ``"adaptive"``) or a built
        :class:`~repro.serve.batcher.FlushPolicy`.
    slo_s:
        Per-request latency budget for the adaptive policy.
    warmup:
        Run one zero image through every replica at :meth:`start` so the
        one-time PCM tile programming does not land on the first request.
    ipc:
        Tensor transport for ``process`` executors: ``"pickle"`` (default)
        or ``"shm"`` — the zero-copy shared-memory arena of
        :mod:`repro.serve.shm`.  Outputs are bitwise identical either way.
    registry:
        A pre-built :class:`ModelRegistry` hosting one model per definition.
    autoscaler:
        An :class:`~repro.serve.autoscaler.AutoscalerPolicy` enabling the
        queue-depth-driven replica scaling loop (``thread``/``process``
        executors only; ``serial`` models are left at one replica).
    on_response:
        Optional ``callback(seq, output)`` invoked in per-model submission
        order as responses are delivered.
    tracing:
        Per-request tracing (see :mod:`repro.obs.tracing`): ``True`` (the
        default) builds a :class:`~repro.obs.Tracer` sampling at
        ``trace_sample``, ``False`` disables tracing entirely, and a
        pre-built :class:`~repro.obs.Tracer` passes through.  The tracer is
        shared by every hosted model; export with :meth:`export_trace` or
        read single traces back via ``GET /v1/trace/{id}``.
    trace_sample:
        Fraction of requests traced in ``[0, 1]``; ``0`` disables tracing.
    slow_ms:
        Latency threshold (milliseconds) above which a delivered request is
        logged as a JSON-lines exemplar (see :class:`~repro.obs.SlowRequestLog`);
        ``None`` (the default) disables the slow log.
    slow_stream:
        Stream the slow log writes to (defaults to stderr).
    """

    def __init__(
        self,
        network: Optional[Network] = None,
        weights: Optional[Dict[str, np.ndarray]] = None,
        config: Optional[ChipConfig] = None,
        *,
        noise_model: Optional[CrossbarNoiseModel] = None,
        seed: int = 0,
        executor: Union[str, int, ExecutorSpec] = "serial",
        intra_execution: Union[str, int] = "serial",
        max_batch: int = 8,
        max_wait_s: float = 0.002,
        queue_capacity: int = 128,
        policy: Union[str, FlushPolicy] = "fixed",
        slo_s: float = 0.05,
        warmup: bool = True,
        ipc: str = "pickle",
        registry: Optional[ModelRegistry] = None,
        autoscaler: Optional[AutoscalerPolicy] = None,
        on_response: Optional[Callable[[int, np.ndarray], None]] = None,
        tracing: Union[bool, Tracer] = True,
        trace_sample: float = 1.0,
        slow_ms: Optional[float] = None,
        slow_stream=None,
    ) -> None:
        if registry is None:
            if network is None or weights is None:
                raise ServeError(
                    "InferenceServer needs either (network, weights) or a registry"
                )
            registry = ModelRegistry(
                [
                    ModelDefinition(
                        name=network.name,
                        network=network,
                        weights=dict(weights),
                        config=config,
                        noise_model=noise_model,
                        seed=seed,
                        executor=executor,
                        intra_execution=intra_execution,
                        max_batch=max_batch,
                        max_wait_s=max_wait_s,
                        queue_capacity=queue_capacity,
                        policy=policy,
                        slo_s=slo_s,
                        warmup=warmup,
                        ipc=ipc,
                    )
                ]
            )
        elif network is not None or weights is not None:
            raise ServeError(
                "pass either (network, weights) or registry=, not both"
            )
        if len(registry) == 0:
            raise ServeError("model registry is empty: register a model first")
        self.registry = registry
        self.autoscaler_policy = autoscaler
        if isinstance(tracing, Tracer):
            self.tracer: Optional[Tracer] = tracing
        elif tracing and trace_sample > 0:
            self.tracer = Tracer(sample_rate=float(trace_sample))
        else:
            self.tracer = None
        self.slow_log: Optional[SlowRequestLog] = (
            SlowRequestLog(float(slow_ms) / 1e3, stream=slow_stream)
            if slow_ms is not None
            else None
        )
        self.metrics = MetricsRegistry()
        self._runtimes: Dict[str, _ModelRuntime] = {
            definition.name: _ModelRuntime(
                definition,
                autoscaler,
                on_response,
                tracer=self.tracer,
                slow_log=self.slow_log,
            )
            for definition in registry
        }
        self._autoscaler: Optional[Autoscaler] = None
        self._started = False
        self._stopped = False
        self._metrics_registered = False

    @classmethod
    def hosting(
        cls,
        registry: ModelRegistry,
        autoscaler: Optional[AutoscalerPolicy] = None,
        on_response: Optional[Callable[[int, np.ndarray], None]] = None,
    ) -> "InferenceServer":
        """Build a multi-workload server over a :class:`ModelRegistry`."""
        return cls(registry=registry, autoscaler=autoscaler, on_response=on_response)

    # ------------------------------------------------------------------ routing
    @property
    def default_model(self) -> str:
        """The model requests route to when they do not name one."""
        return self.registry.default_name

    def model_names(self) -> List[str]:
        return self.registry.names()

    def _runtime(self, model: Optional[str]) -> _ModelRuntime:
        definition = self.registry.resolve(model)
        return self._runtimes[definition.name]

    def input_shape(self, model: Optional[str] = None) -> tuple:
        """The input-image shape of ``model`` (default model when ``None``)."""
        return self._runtime(model).input_shape

    # Single-model back-compat surface: these delegate to the default model.
    @property
    def network(self) -> Network:
        return self._runtime(None).definition.network

    @property
    def executor(self) -> ExecutorSpec:
        return self._runtime(None).definition.executor

    @property
    def policy(self) -> FlushPolicy:
        return self._runtime(None).policy

    @property
    def telemetry(self) -> ServeTelemetry:
        return self._runtime(None).telemetry

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "InferenceServer":
        """Build every model's replica pool and start dispatching."""
        if self._started:
            raise ServeError("server already started")
        started = []
        try:
            for runtime in self._runtimes.values():
                runtime.start()
                started.append(runtime)
        except BaseException:
            # A later model failing to start must not leak the earlier
            # models' dispatch threads and replica pools (process replicas
            # would otherwise outlive the failed constructor call).
            for runtime in started:
                try:
                    runtime.stop()
                except Exception:  # repro: noqa[RPR105] - rollback cleanup;
                    pass  # the original startup failure re-raises below
            raise
        self._started = True
        self._register_metrics()
        if self.autoscaler_policy is not None:
            self._autoscaler = Autoscaler(self._runtimes, self.autoscaler_policy)
            self._autoscaler.start()
            self._autoscaler.register_metrics(self.metrics)
        return self

    def _register_metrics(self) -> None:
        """Wire every subsystem into the unified metrics registry (once)."""
        if self._metrics_registered:
            return
        self._metrics_registered = True
        for name, runtime in self._runtimes.items():
            labels = {"model": name}
            runtime.telemetry.register_metrics(self.metrics, labels)
            if runtime.breaker is not None:
                runtime.breaker.register_metrics(self.metrics, labels)
            if runtime.pool is not None:
                runtime.pool.register_metrics(self.metrics, labels)
        if self.tracer is not None:
            tracer = self.tracer

            def _tracer_families():
                snap = tracer.snapshot()
                return [
                    {
                        "name": "repro_traces_started_total",
                        "type": "counter",
                        "help": "Requests seen by the tracer (traced + sampled out).",
                        "samples": [({}, float(snap["started"]))],
                    },
                    {
                        "name": "repro_traces_sampled_out_total",
                        "type": "counter",
                        "help": "Requests skipped by trace sampling.",
                        "samples": [({}, float(snap["sampled_out"]))],
                    },
                    {
                        "name": "repro_traces_retained",
                        "type": "gauge",
                        "help": "Finished traces held in the in-memory ring.",
                        "samples": [({}, float(snap["finished"]))],
                    },
                ]

            self.metrics.register_collector(_tracer_families)

    def export_trace(self, path: str) -> int:
        """Write retained traces as Chrome trace-event JSON; returns the count.

        The file loads directly in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``.  Raises :class:`ServeError` with tracing off.
        """
        if self.tracer is None:
            raise ServeError("tracing is disabled: no traces to export")
        return self.tracer.export_chrome(path)

    def stop(self, drain: bool = True) -> None:
        """Stop serving and shut the pools down.

        ``drain=True`` (the default, and the graceful path) finishes every
        queued request and resolves its future before tearing anything down;
        ``drain=False`` fails still-queued requests immediately (in-flight
        batches complete either way).  The autoscaler loop joins first, so
        no resize races the teardown.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        if self._autoscaler is not None:
            self._autoscaler.stop()
        for runtime in self._runtimes.values():
            runtime.stop(drain=drain)

    def __enter__(self) -> "InferenceServer":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ producer API
    def submit(
        self,
        image: np.ndarray,
        block: bool = True,
        timeout: Optional[float] = None,
        model: Optional[str] = None,
    ) -> "Future[np.ndarray]":
        """Admit one single-image request; returns its response future.

        ``model`` routes to a hosted model by name (``None`` = default).
        Raises :class:`~repro.errors.UnknownModelError` for unknown names,
        :class:`~repro.errors.QueueOverflowError` on a full queue when
        ``block=False`` (or after ``timeout``), and :class:`ServeError` for
        wrong image shapes or a stopped server.
        """
        if not self._started or self._stopped:
            raise ServeError("server is not running (call start() before submit())")
        runtime = self._runtime(model)
        if runtime.breaker is not None and not runtime.breaker.allow():
            runtime.telemetry.record_shed()
            raise CircuitOpenError(
                f"model {runtime.name!r} is shedding load: circuit breaker is "
                "open after repeated batch failures",
                retry_after_s=max(1.0, runtime.breaker.retry_after_s()),
                model=runtime.name,
            )
        image = np.asarray(image, dtype=float)
        if image.shape != runtime.input_shape:
            raise ServeError(
                f"request image for model {runtime.name!r} must have shape "
                f"{runtime.input_shape}, got {image.shape}"
            )
        trace = (
            runtime.tracer.start_trace(model=runtime.name)
            if runtime.tracer is not None
            else None
        )
        try:
            request = runtime.batcher.submit(
                image, block=block, timeout=timeout, trace=trace
            )
        except Exception as error:
            runtime.telemetry.record_rejection()
            if trace is not None:
                trace.finish(outcome="rejected", error=type(error).__name__)
            raise
        runtime.telemetry.record_admission(runtime.batcher.depth)
        return request.future

    def serve_batch(
        self, images: np.ndarray, model: Optional[str] = None
    ) -> np.ndarray:
        """Submit every image of ``images`` and gather responses in order.

        Convenience for verification: the result is directly comparable with
        ``FunctionalInferenceEngine.run_batch(images)`` on the same model.
        """
        futures = [
            self.submit(image, model=model)
            for image in np.asarray(images, dtype=float)
        ]
        return np.stack([future.result() for future in futures])

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet dispatched, summed over all models."""
        return sum(runtime.batcher.depth for runtime in self._runtimes.values())

    def replica_count(self, model: Optional[str] = None) -> int:
        """Current replica count of ``model`` (default model when ``None``)."""
        runtime = self._runtime(model)
        return runtime.pool.count if runtime.pool is not None else 0

    def admission_retry_after_s(self, model: Optional[str] = None) -> float:
        """Backpressure hint: seconds until ``model``'s queue likely has room.

        The HTTP front-ends attach this as the ``Retry-After`` header on
        429 (queue overflow) responses, so shedding surfaces as actionable
        backpressure instead of a bare rejection.  See
        :meth:`MicroBatcher.retry_after_hint_s` for the estimate.
        """
        return self._runtime(model).batcher.retry_after_hint_s()

    # ------------------------------------------------------------------ health
    def health_levels(self) -> Dict[str, object]:
        """Kubernetes-style live / ready / degraded health summary.

        * **live** — the server process is up (started and not stopped).
        * **ready** — live and at least one hosted model is admitting
          requests (its breaker is not open), i.e. traffic can be served.
        * **degraded** — some model is not ``ok``: a breaker open or
          half-open, a replica restarting, or a failure streak in progress.
        """
        live = self._started and not self._stopped
        models = {name: runtime.health() for name, runtime in self._runtimes.items()}
        ready = live and any(level != "down" for level in models.values())
        degraded = live and any(level != "ok" for level in models.values())
        return {
            "live": bool(live),
            "ready": bool(ready),
            "degraded": bool(degraded),
            "models": models,
        }

    # ------------------------------------------------------------------ stats
    def models(self) -> List[Dict[str, object]]:
        """The ``/v1/models`` listing: one descriptor per hosted model."""
        default = self.default_model
        return [
            runtime.describe(default=(name == default))
            for name, runtime in self._runtimes.items()
        ]

    def stats(self, model: Optional[str] = None) -> Dict[str, object]:
        """Telemetry snapshot: one model's, or the whole server's.

        With ``model=None`` the top-level keys keep the original single-model
        shape (they describe the *default* model), and a ``"models"`` section
        carries every hosted model's full snapshot.
        """
        if model is not None:
            return self._runtime(model).stats()
        default_name = self.default_model
        models = {name: runtime.stats() for name, runtime in self._runtimes.items()}
        # Reuse the default model's snapshot for the legacy top-level keys
        # instead of computing it twice (each stats() pass walks every
        # replica's functional counters under the pool lock).
        snapshot = dict(models[default_name])
        snapshot["default_model"] = default_name
        snapshot["autoscaler_enabled"] = self.autoscaler_policy is not None
        snapshot["models"] = models
        snapshot["metrics"] = self.metrics.render_json()
        return snapshot
